//! Offline vendored stand-in for `proptest`: generates deterministic random
//! cases for `proptest!`-style tests. Supports the strategy combinators this
//! workspace uses (numeric ranges, tuples, `prop_map`, `collection::vec`).
//!
//! Differences from upstream: no shrinking (a failing case reports its seed
//! and case number instead of a minimized input), and case generation is
//! seeded from the test name so runs are reproducible.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each `name in strategy` binding is sampled
/// per-case; the body runs as a `Result<(), TestCaseError>` closure so
/// `prop_assert!` can early-return and `return Ok(())` works.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config); $($rest)*);
    };
    (@munch ($config:expr);) => {};
    (@munch ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                )*
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(__e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e
                    );
                }
            }
        }
        $crate::proptest!(@munch ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @munch ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) so the harness can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_map(v in (1u8..5, 2usize..=4).prop_map(|(a, b)| a as usize + b)) {
            prop_assert!((3..=8).contains(&v));
            if v == 3 {
                return Ok(());
            }
            prop_assert_ne!(v, 2);
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(1u64..6, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            for item in &v {
                prop_assert!((1..6).contains(item), "item {} out of range", item);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let sample = |name: &str| {
            let mut rng = TestRng::deterministic(name);
            (0..8)
                .map(|_| (0u64..1000).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample("a"), sample("a"));
        assert_ne!(sample("a"), sample("b"));
    }
}
