//! Test-run configuration, the deterministic RNG, and case failure type.

use rand::{RngCore, SeedableRng};
use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed case. Carries only a message; the harness adds the case number.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG driving case generation: a ChaCha-free small PRNG seeded from the
/// test name (FNV-1a), so every run of a given test sees the same cases.
pub struct TestRng {
    inner: rand::rngs::SmallRng,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: rand::rngs::SmallRng::seed_from_u64(hash),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}
