//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Anything usable as a vec-length specification: a fixed size or a range.
pub trait IntoSizeRange {
    /// Inclusive bounds `(min, max)`.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// A strategy producing `Vec`s whose length falls in `size` and whose
/// elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

/// Builds a [`VecStrategy`]; `size` may be a `usize`, `a..b`, or `a..=b`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
