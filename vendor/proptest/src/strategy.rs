//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::distributions::uniform::SampleUniform;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one (bounded, to
    /// keep pathological filters from hanging the test).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.source.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.whence
        );
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + PartialOrd + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
