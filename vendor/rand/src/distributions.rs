//! Distributions: the `Standard` distribution and uniform range sampling.

use crate::{unit_f32, unit_f64, RngCore};

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: full-domain uniform for integers and `bool`,
/// uniform `[0, 1)` for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f32(rng.next_u32())
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

pub mod uniform {
    //! Uniform sampling over ranges (the `gen_range` machinery).

    use crate::{unit_f64, RngCore};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized + PartialOrd {
        /// Uniform in `[lo, hi)`.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        /// Uniform in `[lo, hi]`.
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    }

    /// Range types usable with `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    // Uniform u64 in [0, span) by rejection from the top 2^64 multiple of
    // span — unbiased and deterministic.
    pub(crate) fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return rng.next_u64() & (span - 1);
        }
        let zone = u64::MAX - (u64::MAX % span) - 1; // last acceptable value
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }

    fn below_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
        debug_assert!(span > 0);
        if span <= u64::MAX as u128 {
            return below(rng, span as u64) as u128;
        }
        let zone = u128::MAX - (u128::MAX % span) - 1;
        loop {
            let v = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
            if v <= zone {
                return v % span;
            }
        }
    }

    macro_rules! uniform_uint {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    lo + below(rng, (hi - lo) as u64) as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + below(rng, span + 1) as $t
                }
            }
        )*};
    }

    uniform_uint!(u8, u16, u32, u64, usize);

    impl SampleUniform for u128 {
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
            lo + below_u128(rng, hi - lo)
        }
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
            let span = hi - lo;
            if span == u128::MAX {
                return (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
            }
            lo + below_u128(rng, span + 1)
        }
    }

    macro_rules! uniform_int {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                    lo.wrapping_add(below(rng, span) as $t)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(below(rng, span + 1) as $t)
                }
            }
        )*};
    }

    uniform_int!(i8, i16, i32, i64, isize);

    macro_rules! uniform_float {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    let u = unit_f64(rng.next_u64()) as $t;
                    let v = lo + u * (hi - lo);
                    // Floating rounding may land exactly on hi; fold back.
                    if v >= hi { lo } else { v }
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    let u = unit_f64(rng.next_u64()) as $t;
                    lo + u * (hi - lo)
                }
            }
        )*};
    }

    uniform_float!(f32, f64);
}
