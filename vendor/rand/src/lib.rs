//! Offline vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no access to a crates.io registry, so the
//! workspace vendors the exact API surface it uses: [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`], and uniform sampling
//! over half-open and inclusive ranges. Streams are deterministic and
//! self-consistent but are **not** bit-compatible with upstream `rand`;
//! nothing in this workspace depends on upstream streams.

use std::ops::{Range, RangeInclusive};

pub mod distributions;

pub use distributions::uniform::{SampleRange, SampleUniform};
pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A random value from the standard distribution of `T` (uniform over
    /// the full domain for integers, uniform in `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniform value in `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64 (the same
    /// convention upstream rand uses, though the resulting stream differs).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 32 random bits to a uniform `f32` in `[0, 1)`.
pub(crate) fn unit_f32(bits: u32) -> f32 {
    (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

// Keep the module paths `rand::rngs` present for future code; a small
// default generator lives here so the crate is usable without rand_chacha.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64) — not
    /// cryptographic, intended for tests and simulations.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

/// Blanket helpers for ranges; kept in the crate root so callers can
/// `use rand::Rng` alone, as with upstream rand.
impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&a));
            let b: usize = rng.gen_range(0..=4);
            assert!(b <= 4);
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _: u64 = rng.gen_range(5..5);
    }
}
