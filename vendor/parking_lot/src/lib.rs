//! Offline vendored stand-in for `parking_lot`: wraps the std sync
//! primitives with parking_lot's poison-free API (`lock()` returns the
//! guard directly; a poisoned std lock is recovered transparently, since
//! parking_lot has no poisoning concept).

use std::sync;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Condition variable matching parking_lot's poison-free `Condvar` API.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified. parking_lot mutates the guard in place rather
    /// than consuming and returning it, hence the unsafe dance over std.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: we replace the guard with the one returned by std's wait,
        // never leaving a dangling guard observable.
        take_mut(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        });
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_mut(guard, |g| match self.inner.wait_timeout(g, timeout) {
            Ok((g, result)) => {
                timed_out = result.timed_out();
                g
            }
            Err(poisoned) => {
                let (g, result) = poisoned.into_inner();
                timed_out = result.timed_out();
                g
            }
        });
        WaitTimeoutResult { timed_out }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Replaces `*dest` through a by-value closure. Aborts the process if the
/// closure panics (it cannot, in our callers: `wait` only forwards).
fn take_mut<T>(dest: &mut T, f: impl FnOnce(T) -> T) {
    unsafe {
        let old = std::ptr::read(dest);
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(dest, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            *lock.lock() = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            let res = cvar.wait_for(&mut started, Duration::from_secs(5));
            assert!(!res.timed_out());
        }
        t.join().unwrap();
    }
}
