//! Offline vendored stand-in for `criterion`: runs each benchmark for the
//! configured warm-up + measurement windows and prints mean/min time per
//! iteration. No statistics, plots, or baselines — just enough to keep
//! `cargo bench` targets compiling and producing usable numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the std black box under criterion's historical name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle, one per `criterion_group!` function.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Upstream parses CLI args here; benches run under the default test
    /// harness flags offline, so this is a no-op that keeps callers compiling.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (warm_up_time, measurement_time, sample_size) =
            (self.warm_up_time, self.measurement_time, self.sample_size);
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            warm_up_time,
            measurement_time,
            sample_size,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let group_cfg = (self.warm_up_time, self.measurement_time, self.sample_size);
        run_benchmark(name, group_cfg, f);
        self
    }
}

/// A named group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            (self.warm_up_time, self.measurement_time, self.sample_size),
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            (self.warm_up_time, self.measurement_time, self.sample_size),
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, optionally with a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (func, Some(p)) => write!(f, "{func}/{p}"),
            (func, None) => write!(f, "{func}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    mode: BencherMode,
    /// Total time and iteration count accumulated by `iter` in measure mode.
    elapsed: Duration,
    iterations: u64,
    batch: u64,
}

enum BencherMode {
    WarmUp,
    Measure,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        if matches!(self.mode, BencherMode::Measure) {
            self.elapsed += elapsed;
            self.iterations += self.batch;
        }
    }
}

fn run_benchmark(name: &str, cfg: (Duration, Duration, usize), mut f: impl FnMut(&mut Bencher)) {
    let (warm_up, measure, sample_size) = cfg;

    // Warm-up while calibrating a batch size that keeps per-sample overhead low.
    let mut batch = 1u64;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            mode: BencherMode::WarmUp,
            elapsed: Duration::ZERO,
            iterations: 0,
            batch,
        };
        let t = Instant::now();
        f(&mut b);
        let per_call = t.elapsed();
        if warm_start.elapsed() >= warm_up {
            break;
        }
        if per_call < Duration::from_micros(200) {
            batch = (batch * 2).min(1 << 20);
        }
    }

    // Measurement: run samples until the measurement window closes.
    let mut total = Duration::ZERO;
    let mut iterations = 0u64;
    let mut min_sample = Duration::MAX;
    let measure_start = Instant::now();
    let mut samples = 0usize;
    while samples < sample_size && measure_start.elapsed() < measure {
        let mut b = Bencher {
            mode: BencherMode::Measure,
            elapsed: Duration::ZERO,
            iterations: 0,
            batch,
        };
        f(&mut b);
        if b.iterations > 0 {
            let per_iter = b.elapsed / (b.iterations as u32).max(1);
            min_sample = min_sample.min(per_iter);
            total += b.elapsed;
            iterations += b.iterations;
        }
        samples += 1;
    }

    if iterations == 0 {
        println!("{name}: no iterations recorded");
        return;
    }
    let mean = total / (iterations as u32).max(1);
    println!(
        "{name}: mean {} / iter, min {} / iter ({} iters, {} samples)",
        fmt_duration(mean),
        fmt_duration(min_sample),
        iterations,
        samples
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares the group function list, mirroring upstream's macro shapes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(5);
        g.warm_up_time(Duration::from_millis(10));
        g.measurement_time(Duration::from_millis(30));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
