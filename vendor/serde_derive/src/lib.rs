//! Offline vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! `serde` crate.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`
//! available offline). Supported shapes:
//!
//! * structs with named fields;
//! * enums whose variants are unit or newtype;
//! * field attributes `#[serde(default)]`, `#[serde(default = "path")]`,
//!   `#[serde(rename = "name")]`;
//! * container attributes `#[serde(tag = "...", content = "...")]`
//!   (adjacent tagging) and `#[serde(rename = "...")]`.
//!
//! Missing fields of type `Option<...>` deserialize to `None` (detected
//! syntactically from the field's type tokens, as real serde does
//! semantically). Unknown fields are ignored, unknown serde attributes are
//! compile errors so unsupported upstream features fail loudly instead of
//! silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match (&item.kind, mode) {
        (ItemKind::Struct(fields), Mode::Serialize) => gen_struct_serialize(&item, fields),
        (ItemKind::Struct(fields), Mode::Deserialize) => gen_struct_deserialize(&item, fields),
        (ItemKind::Enum(variants), Mode::Serialize) => gen_enum_serialize(&item, variants),
        (ItemKind::Enum(variants), Mode::Deserialize) => gen_enum_deserialize(&item, variants),
    };
    match code.parse() {
        Ok(ts) => ts,
        Err(e) => compile_error(&format!("serde_derive internal error: {e}")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsed representation
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    /// Adjacent tagging: `#[serde(tag = "...", content = "...")]`.
    tag: Option<String>,
    content: Option<String>,
    kind: ItemKind,
}

enum ItemKind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    rename: Option<String>,
    default: DefaultKind,
    is_option: bool,
}

impl Field {
    fn key(&self) -> &str {
        self.rename.as_deref().unwrap_or(&self.name)
    }
}

enum DefaultKind {
    None,
    /// `#[serde(default)]` — `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

struct Variant {
    name: String,
    rename: Option<String>,
    newtype: bool,
}

impl Variant {
    fn key(&self) -> &str {
        self.rename.as_deref().unwrap_or(&self.name)
    }
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

/// One parsed `name` or `name = "literal"` argument of a `#[serde(...)]`
/// attribute.
struct SerdeArg {
    name: String,
    value: Option<String>,
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let container_args = parse_attrs(&tokens, &mut i)?;
    skip_visibility(&tokens, &mut i);

    let kind_word = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    if kind_word != "struct" && kind_word != "enum" {
        return Err(format!(
            "#[derive(Serialize/Deserialize)] supports only structs and enums, found `{kind_word}`"
        ));
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            return Err(format!("unit struct `{name}` is not supported"))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!("tuple struct `{name}` is not supported"))
        }
        other => return Err(format!("expected `{{ ... }}` body, found {other:?}")),
    };

    let mut tag = None;
    let mut content = None;
    for arg in container_args {
        match (arg.name.as_str(), arg.value) {
            ("tag", Some(v)) => tag = Some(v),
            ("content", Some(v)) => content = Some(v),
            ("rename", Some(_)) => {} // container rename does not affect JSON shape here
            (other, _) => {
                return Err(format!(
                    "unsupported container attribute `#[serde({other})]` on `{name}`"
                ))
            }
        }
    }

    let kind = if kind_word == "struct" {
        ItemKind::Struct(parse_fields(body)?)
    } else {
        ItemKind::Enum(parse_variants(body)?)
    };

    Ok(Item {
        name,
        tag,
        content,
        kind,
    })
}

/// Parses leading `#[...]` attributes, returning all `serde(...)` arguments.
fn parse_attrs(tokens: &[TokenTree], i: &mut usize) -> Result<Vec<SerdeArg>, String> {
    let mut args = Vec::new();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        let group = match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g.stream(),
            other => return Err(format!("expected `[...]` after `#`, found {other:?}")),
        };
        *i += 1;
        let inner: Vec<TokenTree> = group.into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                let list = match inner.get(1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        g.stream()
                    }
                    other => {
                        return Err(format!("expected `(...)` after `serde`, found {other:?}"))
                    }
                };
                args.extend(parse_serde_args(list)?);
            }
        }
    }
    Ok(args)
}

fn parse_serde_args(list: TokenStream) -> Result<Vec<SerdeArg>, String> {
    let tokens: Vec<TokenTree> = list.into_iter().collect();
    let mut args = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected serde attribute name, found {other:?}")),
        };
        i += 1;
        let mut value = None;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            value = match tokens.get(i) {
                Some(TokenTree::Literal(lit)) => Some(unquote(&lit.to_string())?),
                other => return Err(format!("expected string literal, found {other:?}")),
            };
            i += 1;
        }
        args.push(SerdeArg { name, value });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(args)
}

/// Strips the quotes of a `"..."` literal token (no escape support — serde
/// attribute values in this workspace are plain identifiers/paths).
fn unquote(lit: &str) -> Result<String, String> {
    let s = lit.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        Ok(s[1..s.len() - 1].to_string())
    } else {
        Err(format!("expected string literal, found `{lit}`"))
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let args = parse_attrs(&tokens, &mut i)?;
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        if !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        // Consume the type: everything until a top-level `,` (tracking angle
        // brackets so `Map<K, V>` stays one type).
        let mut angle_depth = 0i32;
        let mut first_type_token: Option<String> = None;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Ident(id) if first_type_token.is_none() => {
                    first_type_token = Some(id.to_string());
                }
                _ => {}
            }
            i += 1;
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }

        let mut rename = None;
        let mut default = DefaultKind::None;
        for arg in args {
            match (arg.name.as_str(), arg.value) {
                ("default", None) => default = DefaultKind::Trait,
                ("default", Some(path)) => default = DefaultKind::Path(path),
                ("rename", Some(v)) => rename = Some(v),
                (other, _) => {
                    return Err(format!(
                        "unsupported field attribute `#[serde({other})]` on `{name}`"
                    ))
                }
            }
        }
        fields.push(Field {
            is_option: first_type_token.as_deref() == Some("Option"),
            name,
            rename,
            default,
        });
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let args = parse_attrs(&tokens, &mut i)?;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let newtype = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Reject multi-field tuple variants: a top-level comma with
                // trailing content means more than one field.
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut depth = 0i32;
                for (idx, tt) in inner.iter().enumerate() {
                    if let TokenTree::Punct(p) = tt {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 && idx + 1 < inner.len() => {
                                return Err(format!(
                                    "multi-field tuple variant `{name}` is not supported"
                                ))
                            }
                            _ => {}
                        }
                    }
                }
                i += 1;
                true
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!("struct variant `{name}` is not supported"))
            }
            _ => false,
        };
        // Skip an explicit discriminant (`= expr`).
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while let Some(tt) = tokens.get(i) {
                if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }

        let mut rename = None;
        for arg in args {
            match (arg.name.as_str(), arg.value) {
                ("rename", Some(v)) => rename = Some(v),
                (other, _) => {
                    return Err(format!(
                        "unsupported variant attribute `#[serde({other})]` on `{name}`"
                    ))
                }
            }
        }
        variants.push(Variant {
            name,
            rename,
            newtype,
        });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_struct_serialize(item: &Item, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields {
        pushes.push_str(&format!(
            "__fields.push(({key:?}.to_string(), ::serde::Serialize::to_value(&self.{name})));\n",
            key = f.key(),
            name = f.name,
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
         {pushes}\
         ::serde::Value::Object(__fields)\n\
         }}\n}}\n",
        name = item.name,
    )
}

fn gen_struct_deserialize(item: &Item, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let missing = match &f.default {
            DefaultKind::Trait => "::std::default::Default::default()".to_string(),
            DefaultKind::Path(path) => format!("{path}()"),
            DefaultKind::None if f.is_option => "::std::option::Option::None".to_string(),
            DefaultKind::None => format!(
                "return ::std::result::Result::Err(::serde::de::Error::missing_field({:?}, {:?}))",
                item.name,
                f.key()
            ),
        };
        inits.push_str(&format!(
            "{name}: match __v.get({key:?}) {{\n\
             ::std::option::Option::Some(__f) => ::serde::Deserialize::from_value(__f)\
             .map_err(|__e| __e.context({key:?}))?,\n\
             ::std::option::Option::None => {missing},\n\
             }},\n",
            name = f.name,
            key = f.key(),
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
         if !matches!(__v, ::serde::Value::Object(_)) {{\n\
         return ::std::result::Result::Err(::serde::de::Error::type_mismatch(\"object\", __v));\n\
         }}\n\
         ::std::result::Result::Ok({name} {{\n\
         {inits}\
         }})\n\
         }}\n}}\n",
        name = item.name,
    )
}

fn gen_enum_serialize(item: &Item, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        match (&item.tag, v.newtype) {
            (Some(tag), false) => arms.push_str(&format!(
                "{ty}::{var} => ::serde::Value::Object(::std::vec![({tag:?}.to_string(), \
                 ::serde::Value::String({key:?}.to_string()))]),\n",
                ty = item.name,
                var = v.name,
                key = v.key(),
            )),
            (Some(tag), true) => {
                let content = item.content.as_deref().unwrap_or("value");
                arms.push_str(&format!(
                    "{ty}::{var}(__x) => ::serde::Value::Object(::std::vec![\
                     ({tag:?}.to_string(), ::serde::Value::String({key:?}.to_string())),\
                     ({content:?}.to_string(), ::serde::Serialize::to_value(__x))]),\n",
                    ty = item.name,
                    var = v.name,
                    key = v.key(),
                ))
            }
            (None, false) => arms.push_str(&format!(
                "{ty}::{var} => ::serde::Value::String({key:?}.to_string()),\n",
                ty = item.name,
                var = v.name,
                key = v.key(),
            )),
            (None, true) => arms.push_str(&format!(
                "{ty}::{var}(__x) => ::serde::Value::Object(::std::vec![({key:?}.to_string(), \
                 ::serde::Serialize::to_value(__x))]),\n",
                ty = item.name,
                var = v.name,
                key = v.key(),
            )),
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{arms}}}\n\
         }}\n}}\n",
        name = item.name,
    )
}

fn gen_enum_deserialize(item: &Item, variants: &[Variant]) -> String {
    if let Some(tag) = &item.tag {
        let content = item.content.as_deref().unwrap_or("value");
        let mut arms = String::new();
        for v in variants {
            if v.newtype {
                arms.push_str(&format!(
                    "{key:?} => {{\n\
                     let __c = __v.get({content:?}).ok_or_else(|| \
                     ::serde::de::Error::missing_field({ty:?}, {content:?}))?;\n\
                     ::std::result::Result::Ok({ty}::{var}(\
                     ::serde::Deserialize::from_value(__c)\
                     .map_err(|__e| __e.context({content:?}))?))\n\
                     }}\n",
                    key = v.key(),
                    ty = item.name,
                    var = v.name,
                ));
            } else {
                arms.push_str(&format!(
                    "{key:?} => ::std::result::Result::Ok({ty}::{var}),\n",
                    key = v.key(),
                    ty = item.name,
                    var = v.name,
                ));
            }
        }
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
             let __t = __v.get({tag:?}).ok_or_else(|| \
             ::serde::de::Error::missing_field({name:?}, {tag:?}))?;\n\
             let __t = __t.as_str().ok_or_else(|| \
             ::serde::de::Error::type_mismatch(\"string\", __t))?;\n\
             match __t {{\n{arms}\
             __other => ::std::result::Result::Err(::serde::de::Error::custom(\
             format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
             }}\n\
             }}\n}}\n",
            name = item.name,
        );
    }

    // Externally tagged: `"Unit"` or `{"Newtype": value}`.
    let mut unit_arms = String::new();
    let mut newtype_arms = String::new();
    for v in variants {
        if v.newtype {
            newtype_arms.push_str(&format!(
                "{key:?} => ::std::result::Result::Ok({ty}::{var}(\
                 ::serde::Deserialize::from_value(__val)\
                 .map_err(|__e| __e.context({key:?}))?)),\n",
                key = v.key(),
                ty = item.name,
                var = v.name,
            ));
        } else {
            unit_arms.push_str(&format!(
                "{key:?} => ::std::result::Result::Ok({ty}::{var}),\n",
                key = v.key(),
                ty = item.name,
                var = v.name,
            ));
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
         match __v {{\n\
         ::serde::Value::String(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => ::std::result::Result::Err(::serde::de::Error::custom(\
         format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
         }},\n\
         ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
         let (__k, __val) = &__pairs[0];\n\
         match __k.as_str() {{\n\
         {newtype_arms}\
         __other => ::std::result::Result::Err(::serde::de::Error::custom(\
         format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
         }}\n\
         }},\n\
         __other => ::std::result::Result::Err(::serde::de::Error::type_mismatch(\
         \"string or single-key object\", __other)),\n\
         }}\n\
         }}\n}}\n",
        name = item.name,
    )
}
