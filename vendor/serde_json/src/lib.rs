//! Offline vendored stand-in for `serde_json`: a hand-rolled JSON parser
//! and writer over the vendored `serde` crate's [`Value`] data model.
//!
//! Supports the full JSON grammar (strings with escapes incl. `\uXXXX`
//! surrogate pairs, integer/float numbers, nested arrays/objects) with a
//! recursion-depth limit so untrusted wire input cannot overflow the stack.

pub use serde::{Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum nesting depth accepted by the parser (service input is
/// untrusted; a deep bomb must error, not overflow the stack).
const MAX_DEPTH: usize = 128;

/// A JSON error (parse or data-shape mismatch), with the byte offset for
/// parse errors.
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
    /// Byte offset of a parse error in the input, when known.
    offset: Option<usize>,
}

impl Error {
    fn parse(message: impl fmt::Display, offset: usize) -> Self {
        Error {
            message: message.to_string(),
            offset: Some(offset),
        }
    }

    fn data(e: serde::de::Error) -> Self {
        Error {
            message: e.to_string(),
            offset: None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at byte {off}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for Error {}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::data)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters after JSON value", p.pos));
    }
    Ok(v)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reads a typed value back out of a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::data)
}

/// Renders compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_json_text()),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::parse("nesting too deep", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::parse(
                format!("unexpected character `{}`", c as char),
                self.pos,
            )),
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::parse(format!("expected `{word}`"), self.pos))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            // Last-key-wins on duplicates, as real serde_json does.
            if let Some(existing) = pairs.iter_mut().find(|kv| kv.0 == key) {
                existing.1 = value;
            } else {
                pairs.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(Error::parse(
                                            "invalid low surrogate",
                                            self.pos,
                                        ));
                                    }
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(Error::parse("invalid unicode escape", self.pos))
                                }
                            }
                            continue; // hex4 advanced pos already
                        }
                        other => {
                            return Err(Error::parse(format!("invalid escape {other:?}"), self.pos))
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::parse("unescaped control character", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::parse("invalid utf-8", self.pos))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::parse("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(parse_value("-3").unwrap().as_i64(), Some(-3));
        assert_eq!(parse_value("2.5e2").unwrap().as_f64(), Some(250.0));
        assert_eq!(
            parse_value(r#""a\nbA😀""#).unwrap().as_str(),
            Some("a\nbA😀")
        );
    }

    #[test]
    fn containers_round_trip() {
        let text = r#"{"name":"saxpy","params":[1,2,4],"nested":{"ok":true},"cost":3.25}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("saxpy"));
        assert_eq!(v.get("params").unwrap().as_array().unwrap().len(), 3);
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn errors_report_position() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value(r#"{"a": }"#).is_err());
        let e = parse_value("nul").unwrap_err();
        assert!(e.to_string().contains("null"));
    }

    #[test]
    fn depth_limit_holds() {
        let bomb = "[".repeat(100_000);
        assert!(parse_value(&bomb).is_err()); // errors, must not overflow
    }

    #[test]
    fn float_integers_keep_their_point() {
        let v = to_string(&Value::Number(Number::from_f64(4.0))).unwrap();
        assert_eq!(v, "4.0");
        assert_eq!(to_string(&Value::Number(Number::from_u64(4))).unwrap(), "4");
    }

    #[test]
    fn typed_entry_points() {
        let v: Vec<u64> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let s = to_string(&vec![1u64, 2, 3]).unwrap();
        assert_eq!(s, "[1,2,3]");
        let err = from_str::<Vec<u64>>("[1,-2]").unwrap_err();
        assert!(err.to_string().contains("[1]"), "{err}");
    }
}
