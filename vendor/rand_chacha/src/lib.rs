//! Offline vendored stand-in for `rand_chacha`: a genuine ChaCha8 stream
//! cipher used as a deterministic RNG, implementing the vendored `rand`
//! traits. Streams are self-consistent and stable across platforms but not
//! bit-compatible with upstream `rand_chacha` (seeding via SplitMix64
//! expansion differs); nothing in this workspace depends on upstream
//! streams, only on determinism.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// The ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha generator with `R` double-rounds (R = 4 → ChaCha8).
#[derive(Clone, Debug)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    /// Key (8 words) + stream id (2 words) as seeded.
    key: [u32; 8],
    stream: [u32; 2],
    counter: u64,
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` means exhausted.
    idx: usize,
}

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        let mut s: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream[0],
            self.stream[1],
        ];
        let input = s;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.buf = s;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        hi << 32 | lo
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaChaRng {
            key,
            stream: [0, 0],
            counter: 0,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
        }
    }
}

/// ChaCha with 8 rounds — the fast variant used throughout the workspace.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let mut b = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chacha20_rfc7539_block() {
        // RFC 7539 §2.3.2 test vector: key 00..1f, counter 1, nonce
        // 00:00:00:09:00:00:00:4a:00:00:00:00. Our layout puts a 64-bit
        // counter in words 12..13 and the stream id in words 14..15, so the
        // vector's (counter=1, nonce word 0x09000000) maps onto counter =
        // 1 | 0x09000000 << 32 and stream = [0x4a000000, 0].
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng = ChaCha20Rng::from_seed(seed);
        rng.counter = 1 | (0x0900_0000u64 << 32);
        rng.stream = [0x4a00_0000, 0];
        rng.refill();
        assert_eq!(rng.buf[0], 0xe4e7_f110);
        assert_eq!(rng.buf[15], 0x4e3c_50a2);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
    }
}
