//! Deserialization errors.

use std::fmt;

/// A deserialization error: a message plus a path of contexts (field names,
/// array indices) accumulated as the error propagates outward.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    path: Vec<String>,
    message: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            path: Vec::new(),
            message: message.to_string(),
        }
    }

    /// A "expected X, found Y" error.
    pub fn type_mismatch(expected: &str, found: &crate::Value) -> Self {
        Error::custom(format!("expected {expected}, found {}", found.kind()))
    }

    /// A "missing field" error.
    pub fn missing_field(type_name: &str, field: &str) -> Self {
        Error::custom(format!("missing field `{field}` of {type_name}"))
    }

    /// Prefixes the error's path with an enclosing context (a field name or
    /// index), building `a.b[2]`-style paths outside-in.
    pub fn context(mut self, segment: &str) -> Self {
        self.path.insert(0, segment.to_string());
        self
    }

    /// The bare message without the path.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            return write!(f, "{}", self.message);
        }
        let mut path = String::new();
        for seg in &self.path {
            if seg.starts_with('[') {
                path.push_str(seg);
            } else {
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(seg);
            }
        }
        write!(f, "{path}: {}", self.message)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_render_outside_in() {
        let e = Error::custom("boom")
            .context("[3]")
            .context("items")
            .context("spec");
        assert_eq!(e.to_string(), "spec.items[3]: boom");
    }
}
