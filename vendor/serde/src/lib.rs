//! Offline vendored stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal serialization framework under the same crate name. Unlike real
//! serde's zero-copy visitor architecture, this implementation routes
//! everything through an owned JSON-like [`Value`] tree: [`Serialize`]
//! renders a value *to* a [`Value`], [`Deserialize`] reads one *from* a
//! [`Value`]. The `serde_json` vendored crate supplies the text format on
//! top. The `#[derive(Serialize, Deserialize)]` macros (re-exported from
//! the vendored `serde_derive`) support structs with named fields and enums
//! with unit/newtype variants, plus the `#[serde(default)]`,
//! `#[serde(default = "path")]`, `#[serde(rename = "...")]` and
//! `#[serde(tag = "...", content = "...")]` attributes used in this
//! workspace.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};

pub use serde_derive::{Deserialize, Serialize};

pub mod de;

/// An owned JSON-like tree — the data model every type serializes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Stored as an insertion-ordered pair list so output is
    /// stable and round-trips preserve author ordering.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|kv| kv.0 == key).map(|kv| &kv.1),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric content as `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric content as `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric content as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug)]
pub struct Number {
    n: N,
}

#[derive(Clone, Copy, Debug)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// A number from an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Number { n: N::PosInt(v) }
    }

    /// A number from a signed integer (normalized to `PosInt` when ≥ 0).
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number {
                n: N::PosInt(v as u64),
            }
        } else {
            Number { n: N::NegInt(v) }
        }
    }

    /// A number from a float. Non-finite floats are not representable in
    /// JSON; they are stored and rendered as `null` by the writer.
    pub fn from_f64(v: f64) -> Self {
        Number { n: N::Float(v) }
    }

    /// As `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::PosInt(v) => Some(v),
            N::NegInt(_) => None,
            N::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            N::Float(_) => None,
        }
    }

    /// As `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            N::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            N::Float(_) => None,
        }
    }

    /// As `f64` (always representable, possibly with rounding).
    pub fn as_f64(&self) -> f64 {
        match self.n {
            N::PosInt(v) => v as f64,
            N::NegInt(v) => v as f64,
            N::Float(f) => f,
        }
    }

    /// `true` when the number is a float (not an integer variant).
    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::Float(_))
    }

    /// Renders the number in JSON syntax.
    pub fn to_json_text(&self) -> String {
        match self.n {
            N::PosInt(v) => v.to_string(),
            N::NegInt(v) => v.to_string(),
            N::Float(f) if f.is_finite() => {
                // Keep floats recognizably floats: integral values get a
                // trailing ".0" so round-trips preserve the variant.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{f:.1}")
                } else {
                    format!("{f}")
                }
            }
            N::Float(_) => "null".to_string(), // NaN/inf are not JSON
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (&self.n, &other.n) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reads `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

// ---------------------------------------------------------------------------
// Serialize implementations for std types.
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // JSON numbers cap at u64 precision here; larger values degrade to
        // strings, mirroring how the workspace stores `space_size`.
        match u64::try_from(*self) {
            Ok(v) => Value::Number(Number::from_u64(v)),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for PathBuf {
    fn to_value(&self) -> Value {
        Value::String(self.to_string_lossy().into_owned())
    }
}

impl Serialize for Path {
    fn to_value(&self) -> Value {
        Value::String(self.to_string_lossy().into_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N_: usize> Serialize for [T; N_] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic output
        Value::Object(pairs)
    }
}

// ---------------------------------------------------------------------------
// Deserialize implementations for std types.
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_bool()
            .ok_or_else(|| de::Error::type_mismatch("boolean", v))
    }
}

macro_rules! deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| de::Error::type_mismatch("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| {
                    de::Error::custom(format!(
                        "number {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| de::Error::type_mismatch("integer", v))?;
                <$t>::try_from(n).map_err(|_| {
                    de::Error::custom(format!(
                        "number {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        if let Some(n) = v.as_u64() {
            return Ok(n as u128);
        }
        if let Some(s) = v.as_str() {
            return s
                .parse()
                .map_err(|_| de::Error::custom(format!("invalid u128 string `{s}`")));
        }
        Err(de::Error::type_mismatch("unsigned integer or string", v))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64()
            .ok_or_else(|| de::Error::type_mismatch("number", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| de::Error::type_mismatch("string", v))
    }
}

impl Deserialize for PathBuf {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(PathBuf::from(String::from_value(v)?))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| de::Error::type_mismatch("array", v))?;
        arr.iter()
            .enumerate()
            .map(|(i, e)| T::from_value(e).map_err(|err| err.context(&format!("[{i}]"))))
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v.as_array() {
            Some([a, b]) => Ok((
                A::from_value(a).map_err(|e| e.context("[0]"))?,
                B::from_value(b).map_err(|e| e.context("[1]"))?,
            )),
            _ => Err(de::Error::type_mismatch("2-element array", v)),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v.as_array() {
            Some([a, b, c]) => Ok((
                A::from_value(a).map_err(|e| e.context("[0]"))?,
                B::from_value(b).map_err(|e| e.context("[1]"))?,
                C::from_value(c).map_err(|e| e.context("[2]"))?,
            )),
            _ => Err(de::Error::type_mismatch("3-element array", v)),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let pairs = v
            .as_object()
            .ok_or_else(|| de::Error::type_mismatch("object", v))?;
        pairs
            .iter()
            .map(|(k, val)| {
                V::from_value(val)
                    .map(|parsed| (k.clone(), parsed))
                    .map_err(|e| e.context(k))
            })
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(BTreeMap::from_value(v)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_variants() {
        assert_eq!(Number::from_u64(7).as_u64(), Some(7));
        assert_eq!(Number::from_i64(-3).as_i64(), Some(-3));
        assert_eq!(Number::from_i64(-3).as_u64(), None);
        assert_eq!(Number::from_f64(2.5).as_u64(), None);
        assert_eq!(Number::from_f64(4.0).as_u64(), Some(4));
        assert_eq!(Number::from_u64(7).as_f64(), 7.0);
    }

    #[test]
    fn value_round_trip_std_types() {
        let v = vec![(String::from("a"), 1.5f64), (String::from("b"), 2.0)];
        let val = v.to_value();
        let back: Vec<(String, f64)> = Deserialize::from_value(&val).unwrap();
        assert_eq!(back, v);

        let m: BTreeMap<String, u64> = [("x".to_string(), 9u64)].into_iter().collect();
        let back: BTreeMap<String, u64> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);

        let o: Option<u32> = None;
        assert!(o.to_value().is_null());
        let r: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(r, None);
    }

    #[test]
    fn wrong_types_error() {
        assert!(u64::from_value(&Value::String("x".into())).is_err());
        assert!(String::from_value(&Value::Bool(true)).is_err());
        assert!(<(u64, u64)>::from_value(&Value::Array(vec![])).is_err());
    }
}
