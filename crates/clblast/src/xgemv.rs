//! CLBlast's `Xgemv` matrix-vector kernel (`y = alpha·A·x + beta·y`) for the
//! simulator — additional BLAS breadth beyond the paper's two evaluation
//! kernels, with CLBlast's tuning parameters:
//!
//! * `WGS` — work-group size;
//! * `WPT` — rows of `A` computed per work-item;
//! * `UNROLL` — inner (column) loop unroll factor, must divide `n`.

use atf_core::constraint::{divides, less_than};
use atf_core::expr::cst;
use atf_core::param::{tp_c, ParamGroup};
use atf_core::range::Range;
use ocl_sim::{ClError, ExecMode, KernelCall, KernelProfile, SimKernel};

/// Abridged OpenCL source (macro identifiers for the preprocessor).
pub const XGEMV_SOURCE: &str = r#"
// Xgemv: y (m) = alpha * A (m x n) * x (n) + beta * y
// Tuning parameters: WGS WPT UNROLL
__kernel __attribute__((reqd_work_group_size(WGS, 1, 1)))
void Xgemv(const int m, const int n, const float alpha, const float beta,
           const __global float* restrict agm,
           const __global float* restrict xgm,
           __global float* ygm)
{
  // Each work-item accumulates WPT rows, unrolling the column loop by
  // UNROLL. (Control flow reproduced by the functional executor.)
}
"#;

/// The simulated Xgemv kernel.
pub struct XgemvKernel;

impl SimKernel for XgemvKernel {
    fn name(&self) -> &str {
        "Xgemv"
    }

    fn source(&self) -> &str {
        XGEMV_SOURCE
    }

    fn required_defines(&self) -> &[&str] {
        &["WGS", "WPT", "UNROLL"]
    }

    fn execute(&self, call: &KernelCall<'_>) -> Result<KernelProfile, ClError> {
        let wgs = call.define_u64("WGS")?;
        let wpt = call.define_u64("WPT")?;
        let unroll = call.define_u64("UNROLL")?;
        if wgs == 0 || wpt == 0 || unroll == 0 {
            return Err(ClError::BuildProgramFailure(
                "Xgemv parameters must be ≥ 1".into(),
            ));
        }
        let m = call
            .scalar(0)?
            .as_u64()
            .ok_or_else(|| ClError::InvalidKernelArgs("m must be an integer".into()))?;
        let n = call
            .scalar(1)?
            .as_u64()
            .ok_or_else(|| ClError::InvalidKernelArgs("n must be an integer".into()))?;
        if n % unroll != 0 {
            return Err(ClError::BuildProgramFailure(format!(
                "Xgemv: UNROLL {unroll} must divide n = {n}"
            )));
        }
        let alpha = call.scalar(2)?.as_f32();
        let beta = call.scalar(3)?.as_f32();
        let a = call.buffer(4)?;
        let x = call.buffer(5)?;
        let y = call.buffer(6)?;
        if a.len() < (m * n) as usize || x.len() < n as usize || y.len() < m as usize {
            return Err(ClError::InvalidBuffer("Xgemv buffers too small".into()));
        }

        // Launch coverage: ceil(m / WPT) threads, padded to WGS.
        let needed_threads = m.div_ceil(wpt);
        if call.launch.local_size() != wgs {
            return Err(ClError::InvalidKernelArgs(format!(
                "local size {} must equal WGS {wgs}",
                call.launch.local_size()
            )));
        }
        if call.launch.global_size() < needed_threads {
            return Err(ClError::InvalidKernelArgs(format!(
                "global size {} covers fewer than ceil(m/WPT) = {needed_threads} threads",
                call.launch.global_size()
            )));
        }

        if call.mode == ExecMode::Functional {
            let am = a.borrow_f32();
            let xv = x.borrow_f32();
            let mut yv = y.borrow_f32_mut();
            for row in 0..m as usize {
                let mut acc = 0.0f32;
                for col in 0..n as usize {
                    acc += am[row * n as usize + col] * xv[col];
                }
                yv[row] = alpha * acc + beta * yv[row];
            }
        }

        // Work profile. Row-per-thread GEMV: each thread streams one (or
        // WPT) full rows of A — unit-stride *within* a thread but strided
        // *across* the warp, so GPU coalescing is poor unless rows are
        // interleaved; WPT-row blocking amortizes x reloads and loop
        // bookkeeping; UNROLL trims per-column bookkeeping.
        let padded_threads = call.launch.global_size() as f64;
        let rows_computed = (padded_threads * wpt as f64).max(m as f64);
        let flops = 2.0 * rows_computed * n as f64;
        let window = (call.device.cache_line_bytes / 4).max(1) as f64;
        let coalescing = (wpt as f64 / window).clamp(1.0 / window, 1.0);
        let x_reloads = (call.launch.work_groups() as f64).max(1.0);
        Ok(KernelProfile {
            flops,
            overhead_instructions: rows_computed * (n as f64 / unroll as f64) * 3.0
                + padded_threads * 10.0,
            global_bytes_read: rows_computed * n as f64 * 4.0
                + x_reloads * n as f64 * 4.0
                + if beta != 0.0 { m as f64 * 4.0 } else { 0.0 },
            global_bytes_written: m as f64 * 4.0,
            coalescing_efficiency: coalescing,
            ..Default::default()
        })
    }
}

/// The ATF tuning space for Xgemv on an `m×n` matrix: all three parameters
/// are interdependent with the sizes, one group.
pub fn xgemv_space(m: u64, n: u64) -> Vec<ParamGroup> {
    vec![ParamGroup::new(vec![
        tp_c(
            "WPT",
            Range::interval(1, 64.min(m.max(1))),
            less_than(cst(m) + 1u64),
        ),
        tp_c(
            "WGS",
            Range::interval_gen(0, 8, |i| 1u64 << i),
            less_than(cst(1025u64)),
        ),
        tp_c("UNROLL", Range::interval(1, n.min(64)), divides(cst(n))),
    ])]
}

/// CLBlast-style padded launch for a configuration.
pub fn xgemv_launch(config: &atf_core::config::Config, m: u64) -> ocl_sim::Launch {
    let wgs = config.get_u64("WGS");
    let wpt = config.get_u64("WPT");
    let threads = m.div_ceil(wpt);
    ocl_sim::Launch::one_d(threads.div_ceil(wgs) * wgs, wgs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use atf_core::config::Config;
    use atf_core::space::SearchSpace;
    use ocl_sim::{Context, DefineMap, DeviceModel, Scalar};
    use rand::{Rng, SeedableRng};

    fn run(
        m: u64,
        n: u64,
        wgs: u64,
        wpt: u64,
        unroll: u64,
        mode: ExecMode,
    ) -> Result<(Vec<f32>, f64), ClError> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let a: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f32> = (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut ctx = Context::new(DeviceModel::tesla_k20m()).with_noise(0.0);
        let ab = ctx.create_buffer_f32(a);
        let xb = ctx.create_buffer_f32(x);
        let yb = ctx.create_buffer_f32(y);
        let cfg = Config::from_pairs([("WGS", wgs), ("WPT", wpt), ("UNROLL", unroll)]);
        let defines = DefineMap::new()
            .with("WGS", wgs.to_string())
            .with("WPT", wpt.to_string())
            .with("UNROLL", unroll.to_string());
        let ev = ctx.enqueue_kernel(
            &XgemvKernel,
            &[
                Scalar::U64(m).into(),
                Scalar::U64(n).into(),
                Scalar::F32(1.5).into(),
                Scalar::F32(0.5).into(),
                ab.into(),
                xb.into(),
                yb.into(),
            ],
            &xgemv_launch(&cfg, m),
            &defines,
            mode,
        )?;
        let out = ctx.buffer(yb).borrow_f32().clone();
        Ok((out, ev.duration_ns()))
    }

    fn expected(m: u64, n: u64) -> Vec<f32> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let a: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y: Vec<f32> = (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // y = 1.5 * A x + 0.5 * y via the GEMM reference (n = 1 column).
        let mut ax = vec![0.0f32; m as usize];
        reference::gemm(m as usize, 1, n as usize, 1.0, &a, &x, 0.0, &mut ax);
        for i in 0..m as usize {
            y[i] = 1.5 * ax[i] + 0.5 * y[i];
        }
        y
    }

    #[test]
    fn functional_matches_reference() {
        for (m, n, wgs, wpt, unroll) in [(64, 32, 32, 1, 4), (50, 24, 16, 4, 3), (7, 8, 64, 2, 8)] {
            let (got, _) = run(m, n, wgs, wpt, unroll, ExecMode::Functional).unwrap();
            assert!(
                reference::approx_eq(&got, &expected(m, n), n as usize),
                "mismatch at m={m}, n={n}, WGS={wgs}, WPT={wpt}, UNROLL={unroll}"
            );
        }
    }

    #[test]
    fn unroll_must_divide_n() {
        let err = run(16, 30, 32, 1, 4, ExecMode::ModelOnly);
        assert!(matches!(err, Err(ClError::BuildProgramFailure(m)) if m.contains("UNROLL")));
    }

    #[test]
    fn space_configs_all_launch() {
        let (m, n) = (100u64, 48u64);
        let space = SearchSpace::generate(&xgemv_space(m, n));
        assert!(space.len() > 10);
        for i in (0..space.len()).step_by(7) {
            let cfg = space.get(i);
            let wgs = cfg.get_u64("WGS");
            let wpt = cfg.get_u64("WPT");
            let unroll = cfg.get_u64("UNROLL");
            run(m, n, wgs, wpt, unroll, ExecMode::ModelOnly)
                .unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
        }
    }

    #[test]
    fn wpt_trades_parallelism_for_amortization() {
        // Tall matrix: WPT=1 gives many threads (good GPU utilization);
        // WPT=32 starves the device.
        let (m, n) = (8192u64, 64);
        let (_, t1) = run(m, n, 128, 1, 4, ExecMode::ModelOnly).unwrap();
        let (_, t32) = run(m, n, 128, 32, 4, ExecMode::ModelOnly).unwrap();
        assert!(t1 < t32, "t1={t1} t32={t32}");
    }

    #[test]
    fn end_to_end_tuning() {
        use atf_core::prelude::*;
        let (m, n) = (2048u64, 64);
        // Context and buffers are created once (as the real cost function
        // does at initialization); evaluations only enqueue.
        let mut ctx = Context::new(DeviceModel::tesla_k20m()).with_noise(0.0);
        let ab = ctx.create_buffer_f32(vec![0.5; (m * n) as usize]);
        let xb = ctx.create_buffer_f32(vec![0.25; n as usize]);
        let yb = ctx.create_buffer_f32(vec![0.0; m as usize]);
        let measure = move |ctx: &mut Context, cfg: &Config| {
            let defines = DefineMap::new()
                .with("WGS", cfg.get_u64("WGS").to_string())
                .with("WPT", cfg.get_u64("WPT").to_string())
                .with("UNROLL", cfg.get_u64("UNROLL").to_string());
            ctx.enqueue_kernel(
                &XgemvKernel,
                &[
                    Scalar::U64(m).into(),
                    Scalar::U64(n).into(),
                    Scalar::F32(1.0).into(),
                    Scalar::F32(0.0).into(),
                    ab.into(),
                    xb.into(),
                    yb.into(),
                ],
                &xgemv_launch(cfg, m),
                &defines,
                ExecMode::ModelOnly,
            )
            .map(|ev| ev.duration_ns())
        };
        let mut cf = atf_core::cost::try_cost_fn(|cfg: &Config| {
            measure(&mut ctx, cfg).map_err(|e| CostError::InvalidConfiguration(e.to_string()))
        });
        let r = Tuner::new()
            .technique(Ensemble::opentuner_default(3))
            .abort_condition(abort::evaluations(300))
            .tune(&xgemv_space(m, n), &mut cf)
            .unwrap();
        assert!(r.best_cost.is_finite());
        // The tuned configuration must beat a deliberately bad one.
        let (_, bad) = run(m, n, 1, 64, 1, ExecMode::ModelOnly).unwrap();
        assert!(r.best_cost < bad);
    }
}
