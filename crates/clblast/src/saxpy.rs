//! The CLBlast saxpy kernel of the paper's Listing 1, as a simulator kernel,
//! plus its ATF tuning-space definition (Listing 2).
//!
//! Tuning parameters:
//! * `WPT` (work-per-thread): each work-item computes a chunk of WPT
//!   elements; must divide the input size `N`;
//! * `LS` (local size): work-items per work-group; must divide the global
//!   size `N / WPT` (OpenCL requirement).

use atf_core::constraint::divides;
use atf_core::expr::{cst, param};
use atf_core::param::{tp_c, ParamGroup};
use atf_core::range::Range;
use ocl_sim::{ClError, ExecMode, KernelCall, KernelProfile, SimKernel};

/// The saxpy kernel source (paper, Listing 1).
pub const SAXPY_SOURCE: &str = r#"
__kernel void saxpy( const int N, const float a,
                     const __global float* x, __global float* y )
{
  for( int w = 0; w < WPT; ++w )
  {
    const int index = w + get_global_id(0) * WPT;
    y[ index ] += a * x[ index ];
  }
}
"#;

/// Simulator implementation of the saxpy kernel.
pub struct SaxpyKernel;

impl SimKernel for SaxpyKernel {
    fn name(&self) -> &str {
        "saxpy"
    }

    fn source(&self) -> &str {
        SAXPY_SOURCE
    }

    fn required_defines(&self) -> &[&str] {
        &["WPT"]
    }

    fn execute(&self, call: &KernelCall<'_>) -> Result<KernelProfile, ClError> {
        let wpt = call.define_u64("WPT")?;
        if wpt == 0 {
            return Err(ClError::BuildProgramFailure("WPT must be ≥ 1".into()));
        }
        let n = call
            .scalar(0)?
            .as_u64()
            .ok_or_else(|| ClError::InvalidKernelArgs("N must be a non-negative integer".into()))?;
        let a = call.scalar(1)?.as_f32();
        let x = call.buffer(2)?;
        let y = call.buffer(3)?;

        // Kernel correctness requirement from the paper: WPT divides N so
        // each work-item processes an equal-sized chunk. A launch violating
        // it would read out of bounds — the simulator reports it as an
        // invalid-buffer fault, like a real device would (at best).
        let global = call.launch.global_size();
        if global * wpt != n {
            return Err(ClError::InvalidBuffer(format!(
                "global size {global} × WPT {wpt} != N {n} (out-of-bounds access)"
            )));
        }
        if x.len() < n as usize || y.len() < n as usize {
            return Err(ClError::InvalidBuffer(format!(
                "vector buffers smaller than N = {n}"
            )));
        }

        if call.mode == ExecMode::Functional {
            let xs = x.borrow_f32();
            let mut ys = y.borrow_f32_mut();
            // Chunked indexing exactly as in the source above.
            for gid in 0..global {
                for w in 0..wpt {
                    let index = (w + gid * wpt) as usize;
                    ys[index] += a * xs[index];
                }
            }
        }

        // Work profile. Chunked access strides the warp's accesses by WPT
        // elements, so GPU coalescing degrades as 1/WPT (down to one useful
        // element per transaction); larger WPT amortizes loop/index
        // bookkeeping across fewer work-items.
        let cache_line_elems = (call.device.cache_line_bytes / 4).max(1) as f64;
        let coalescing = (1.0 / wpt as f64).max(1.0 / cache_line_elems);
        Ok(KernelProfile {
            flops: 2.0 * n as f64,
            overhead_instructions: n as f64 * 2.0 + global as f64 * 8.0,
            global_bytes_read: 8.0 * n as f64, // x and y
            global_bytes_written: 4.0 * n as f64,
            coalescing_efficiency: coalescing,
            ..Default::default()
        })
    }
}

/// The ATF tuning-space definition of the paper's Listing 2:
/// `WPT ∈ [1, N]` dividing `N`; `LS ∈ [1, N]` dividing `N / WPT`.
///
/// Both parameters are interdependent, hence one group.
pub fn saxpy_space(n: u64) -> Vec<ParamGroup> {
    vec![ParamGroup::new(vec![
        tp_c("WPT", Range::interval(1, n), divides(cst(n))),
        tp_c("LS", Range::interval(1, n), divides(cst(n) / param("WPT"))),
    ])]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use atf_core::space::SearchSpace;
    use ocl_sim::{Context, DefineMap, DeviceModel, Launch};
    use rand::{Rng, SeedableRng};

    fn run_saxpy(
        device: DeviceModel,
        n: u64,
        wpt: u64,
        ls: u64,
        mode: ExecMode,
    ) -> Result<(Vec<f32>, f64), ClError> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let a = 1.5f32;
        let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let y: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut ctx = Context::new(device).with_noise(0.0);
        let xb = ctx.create_buffer_f32(x);
        let yb = ctx.create_buffer_f32(y.clone());
        let defines = DefineMap::new().with("WPT", wpt.to_string());
        let ev = ctx.enqueue_kernel(
            &SaxpyKernel,
            &[
                ocl_sim::Scalar::U64(n).into(),
                ocl_sim::Scalar::F32(a).into(),
                xb.into(),
                yb.into(),
            ],
            &Launch::one_d(n / wpt, ls),
            &defines,
            mode,
        )?;
        let result = ctx.buffer(yb).borrow_f32().clone();
        Ok((result, ev.duration_ns()))
    }

    #[test]
    fn functional_matches_reference() {
        let n = 1024u64;
        for (wpt, ls) in [(1, 64), (4, 32), (8, 128), (1024, 1)] {
            let (got, _) =
                run_saxpy(DeviceModel::tesla_k20m(), n, wpt, ls, ExecMode::Functional).unwrap();
            // Rebuild the expected result.
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
            let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let mut y: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            reference::saxpy(1.5, &x, &mut y);
            assert!(
                reference::approx_eq(&got, &y, 1),
                "mismatch for WPT={wpt}, LS={ls}"
            );
        }
    }

    #[test]
    fn invalid_wpt_detected() {
        // N=1000, WPT=3: global*WPT != N → out-of-bounds fault.
        let err = run_saxpy(DeviceModel::tesla_k20m(), 1000, 3, 1, ExecMode::ModelOnly);
        assert!(err.is_err());
    }

    #[test]
    fn invalid_local_size_detected() {
        // LS=7 does not divide N/WPT=256.
        let err = run_saxpy(DeviceModel::tesla_k20m(), 1024, 4, 7, ExecMode::ModelOnly);
        assert!(matches!(err, Err(ClError::InvalidWorkGroupSize(_))));
    }

    #[test]
    fn space_definition_counts() {
        let space = SearchSpace::generate(&saxpy_space(16));
        // WPT ∈ {1,2,4,8,16}; LS | 16/WPT: 5+4+3+2+1 = 15.
        assert_eq!(space.len(), 15);
        for cfg in space.iter() {
            let wpt = cfg.get_u64("WPT");
            let ls = cfg.get_u64("LS");
            assert_eq!(16 % wpt, 0);
            assert_eq!((16 / wpt) % ls, 0);
        }
    }

    #[test]
    fn every_valid_config_runs() {
        let n = 64u64;
        let space = SearchSpace::generate(&saxpy_space(n));
        for cfg in space.iter() {
            let wpt = cfg.get_u64("WPT");
            let ls = cfg.get_u64("LS");
            if ls > DeviceModel::tesla_k20m().max_work_group_size {
                continue; // device limit, not a space error
            }
            run_saxpy(DeviceModel::tesla_k20m(), n, wpt, ls, ExecMode::Functional)
                .unwrap_or_else(|e| panic!("WPT={wpt}, LS={ls}: {e}"));
        }
    }

    #[test]
    fn gpu_prefers_small_wpt() {
        // Coalescing: WPT=1 should beat WPT=64 clearly on the GPU model for a
        // large memory-bound vector.
        let n = 1u64 << 20;
        let (_, t1) = run_saxpy(DeviceModel::tesla_k20m(), n, 1, 128, ExecMode::ModelOnly).unwrap();
        let (_, t64) =
            run_saxpy(DeviceModel::tesla_k20m(), n, 64, 128, ExecMode::ModelOnly).unwrap();
        assert!(t64 > 2.0 * t1, "t1={t1}, t64={t64}");
    }

    #[test]
    fn cpu_tolerates_large_wpt() {
        // On the CPU model the coalescing penalty is mild; large WPT reduces
        // scheduling overhead, so WPT=64 should not be dramatically worse
        // (and often better) than WPT=1 with small work-groups.
        let n = 1u64 << 20;
        let (_, t1) = run_saxpy(
            DeviceModel::xeon_e5_2640v2_dual(),
            n,
            1,
            1,
            ExecMode::ModelOnly,
        )
        .unwrap();
        let (_, t64) = run_saxpy(
            DeviceModel::xeon_e5_2640v2_dual(),
            n,
            64,
            1,
            ExecMode::ModelOnly,
        )
        .unwrap();
        assert!(t64 < t1, "CPU should reward chunking: t1={t1}, t64={t64}");
    }
}
