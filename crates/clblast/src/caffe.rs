//! The Caffe deep-learning matrix sizes of the paper's evaluation
//! (Section VI, Figure 2): "four pairs of matrix input sizes (IS) that are
//! heavily used in Caffe, e.g., in Caffe's sample siamese".

/// One GEMM workload: `(m, n, k)` for `C(m×n) = A(m×k) · B(k×n)`.
pub type GemmShape = (u64, u64, u64);

/// IS 1: (20×1) · (1×576).
pub const IS1: GemmShape = (20, 576, 1);
/// IS 2: (20×25) · (25×576).
pub const IS2: GemmShape = (20, 576, 25);
/// IS 3: (50×1) · (1×64).
pub const IS3: GemmShape = (50, 64, 1);
/// IS 4: (10×64) · (64×500).
pub const IS4: GemmShape = (10, 500, 64);

/// All four input sizes with their paper labels.
pub const INPUT_SIZES: [GemmShape; 4] = [IS1, IS2, IS3, IS4];

/// Paper labels aligned with [`INPUT_SIZES`].
pub const LABELS: [&str; 4] = ["IS1", "IS2", "IS3", "IS4"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        // (20×1)·(1×576) → m=20, k=1, n=576, etc.
        assert_eq!(IS1, (20, 576, 1));
        assert_eq!(IS2, (20, 576, 25));
        assert_eq!(IS3, (50, 64, 1));
        assert_eq!(IS4, (10, 500, 64));
        assert_eq!(INPUT_SIZES.len(), LABELS.len());
    }

    #[test]
    fn no_caffe_size_is_wgd_multiple() {
        // The root cause of the empty CLTune space: neither the row nor the
        // column counts are multiples of 8 in at least one dimension.
        for (m, n, _) in INPUT_SIZES {
            assert!(
                m % 8 != 0 || n % 8 != 0,
                "paper's premise violated for {m}×{n}"
            );
        }
    }
}
