//! # clblast — the paper's tunable kernels on the simulated OpenCL platform
//!
//! A faithful functional port of the two CLBlast kernels the ATF paper uses:
//!
//! * [`saxpy`] — the introductory example (Listings 1-2): parameters `WPT`
//!   and `LS` with the divisibility dependencies of Section II;
//! * [`xgemm_direct`] — the evaluation workload (Section VI): the
//!   `XgemmDirect` GEMM kernel with its 10 tuning parameters and
//!   interdependencies, plus a functional executor verified against the
//!   naive [`reference`] BLAS;
//! * [`xgemm_space`] — the tuning-space definitions: the native ATF space,
//!   the CLTune-constrained variants, CLBlast's artificially limited ranges
//!   (empty for the Caffe sizes!), and the unconstrained OpenTuner ranges;
//! * [`caffe`] — the four deep-learning input sizes of Figure 2;
//! * [`xgemv`], [`xdot`] — further CLBlast kernels (matrix-vector product
//!   and two-stage dot reduction) extending the library beyond the paper's
//!   two evaluation workloads.

pub mod caffe;
pub mod reference;
pub mod saxpy;
pub mod xdot;
pub mod xgemm_direct;
pub mod xgemm_space;
pub mod xgemv;

pub use saxpy::{saxpy_space, SaxpyKernel, SAXPY_SOURCE};
pub use xdot::{xdot_launch, xdot_space, XdotKernel, XDOT_SOURCE};
pub use xgemm_direct::{XgemmDirectKernel, XgemmParams, XGEMM_DIRECT_SOURCE, XGEMM_PARAMS};
pub use xgemm_space::{
    atf_space, atf_space_cltune_constraints, atf_space_wgd_max, clblast_launch,
    clblast_limited_space, cltune_launch, config_is_valid, default_config, defines_from_config,
    params_from_config, unconstrained_params, WGD_MAX,
};
pub use xgemv::{xgemv_launch, xgemv_space, XgemvKernel, XGEMV_SOURCE};
