//! Tuning-space definitions for XgemmDirect: the native ATF space, the
//! CLTune-style constrained variants, the artificially range-limited space
//! CLBlast actually ships (Section VI-A), and the unconstrained ranges the
//! OpenTuner baseline searches (Section VI-B) — plus the host-side launch
//! geometry in both its CLBlast (padded) and CLTune (divisibility-
//! constrained) forms.

use crate::xgemm_direct::XgemmParams;
use atf_core::config::Config;
use atf_core::constraint::{divides, is_multiple_of, predicate};
use atf_core::expr::{cst, param};
use atf_core::param::{tp, tp_c, Param, ParamGroup};
use atf_core::range::Range;
use ocl_sim::{DefineMap, Launch};

/// Default cap on the tile size WGD. Bounded by local memory:
/// two `WGD × (WGD+1)` float tiles must fit in 48 KiB
/// (`8·WGD·(WGD+1) ≤ 49152` → `WGD ≤ 77`); 64 is the largest "round" tile.
pub const WGD_MAX: u64 = 64;

/// Builds the ten XgemmDirect tuning parameters with ATF constraints
/// (parameters may reference previously declared ones). All ten are
/// interdependent, so they form a single [`ParamGroup`].
///
/// `extra_wgd` is an additional constraint on WGD — the CLTune-style
/// variants require WGD to divide the result matrix's rows/columns; the
/// ATF-native space does not, because CLBlast pads the global size
/// (arithmetic CLTune cannot express; Section VI-A).
fn xgemm_params(wgd_max: u64, extra_wgd: Option<atf_core::constraint::Constraint>) -> Vec<Param> {
    let wgd_range = Range::interval(1, wgd_max);
    let dim_range = Range::interval(1, wgd_max);
    let vw_range = Range::set([1u64, 2, 4, 8]);

    // Local-memory feasibility: 8·WGD·(WGD+1) ≤ 48 KiB (worst case padded).
    let fits_local = predicate("8*WGD*(WGD+1) <= 48 KiB", |v, _| {
        v.as_u64().is_some_and(|w| 8 * w * (w + 1) <= 48 * 1024)
    });
    let wgd_constraint = match extra_wgd {
        Some(c) => fits_local & c,
        None => fits_local,
    };

    vec![
        tp_c("WGD", wgd_range, wgd_constraint),
        tp_c("MDIMCD", dim_range.clone(), divides(param("WGD"))),
        tp_c(
            "NDIMCD",
            dim_range.clone(),
            divides(param("WGD"))
                & predicate("MDIMCD*NDIMCD <= 1024", |v, c| {
                    v.as_u64().is_some_and(|n| n * c.get_u64("MDIMCD") <= 1024)
                }),
        ),
        tp_c(
            "MDIMAD",
            dim_range.clone(),
            divides(param("WGD")) & divides(param("MDIMCD") * param("NDIMCD")),
        ),
        tp_c(
            "NDIMBD",
            dim_range,
            divides(param("WGD")) & divides(param("MDIMCD") * param("NDIMCD")),
        ),
        tp_c("KWID", Range::interval(1, wgd_max), divides(param("WGD"))),
        tp_c(
            "VWMD",
            vw_range.clone(),
            divides(param("WGD") / param("MDIMCD")) & divides(param("WGD") / param("MDIMAD")),
        ),
        tp_c(
            "VWND",
            vw_range,
            divides(param("WGD") / param("NDIMCD")) & divides(param("WGD") / param("NDIMBD")),
        ),
        tp("PADA", Range::boolean()),
        tp("PADB", Range::boolean()),
    ]
}

/// The native ATF search space for an `m×k · k×n` multiplication: full
/// parameter ranges, no divisibility requirements on the matrix sizes
/// (CLBlast's padded global size handles arbitrary edges).
pub fn atf_space(_m: u64, _n: u64, _k: u64) -> Vec<ParamGroup> {
    vec![ParamGroup::new(xgemm_params(WGD_MAX, None))]
}

/// [`atf_space`] with a custom cap on the WGD range — for tests and scaling
/// experiments (the space size grows steeply with the cap).
pub fn atf_space_wgd_max(wgd_max: u64) -> Vec<ParamGroup> {
    vec![ParamGroup::new(xgemm_params(wgd_max, None))]
}

/// ATF restricted by the constraints CLTune's program needs: WGD must divide
/// both the result matrix's rows and columns (because CLTune cannot express
/// the padded global size). Used by the constraint-relaxation experiment
/// (Section VI-A: IS4 speedup 12.85× → 17.60× on the CPU when dropping
/// these).
pub fn atf_space_cltune_constraints(m: u64, n: u64, _k: u64) -> Vec<ParamGroup> {
    let c = divides(cst(m)) & divides(cst(n));
    vec![ParamGroup::new(xgemm_params(WGD_MAX, Some(c)))]
}

/// The artificially range-limited space CLBlast ships for CLTune
/// (Section VI-A): WGD ∈ {8, 16, 32} (and the other dimensions similarly
/// restricted), *plus* the divide-rows/columns constraint — which makes the
/// space **empty** for the Caffe matrix sizes, forcing CLBlast to fall back
/// to device defaults tuned for 256×256.
pub fn clblast_limited_space(m: u64, n: u64, _k: u64) -> Vec<ParamGroup> {
    let pow2 = Range::set([8u64, 16, 32]);
    vec![ParamGroup::new(vec![
        tp_c("WGD", pow2.clone(), divides(cst(m)) & divides(cst(n))),
        tp_c("MDIMCD", pow2.clone(), divides(param("WGD"))),
        tp_c("NDIMCD", pow2.clone(), divides(param("WGD"))),
        tp_c(
            "MDIMAD",
            pow2.clone(),
            divides(param("WGD")) & divides(param("MDIMCD") * param("NDIMCD")),
        ),
        tp_c(
            "NDIMBD",
            pow2,
            divides(param("WGD")) & divides(param("MDIMCD") * param("NDIMCD")),
        ),
        tp_c("KWID", Range::set([2u64, 8, 16]), divides(param("WGD"))),
        tp_c(
            "VWMD",
            Range::set([1u64, 2, 4, 8]),
            divides(param("WGD") / param("MDIMCD")) & divides(param("WGD") / param("MDIMAD")),
        ),
        tp_c(
            "VWND",
            Range::set([1u64, 2, 4, 8]),
            divides(param("WGD") / param("NDIMCD")) & divides(param("WGD") / param("NDIMBD")),
        ),
        tp("PADA", Range::boolean()),
        tp("PADB", Range::boolean()),
    ])]
}

/// The **unconstrained** parameter ranges the OpenTuner baseline searches
/// (Section VI-B): every integer parameter independently in `{1, ..., N}`,
/// vector widths in {1,2,4,8}, booleans free — dependencies cannot be
/// expressed, so invalid combinations are only discovered at (penalized)
/// evaluation time. One parameter per group: no interdependencies declared.
pub fn unconstrained_params(n_range: u64) -> Vec<(String, Vec<u64>)> {
    let full: Vec<u64> = (1..=n_range).collect();
    let vw = vec![1u64, 2, 4, 8];
    let flag = vec![0u64, 1];
    vec![
        ("WGD".to_string(), full.clone()),
        ("MDIMCD".to_string(), full.clone()),
        ("NDIMCD".to_string(), full.clone()),
        ("MDIMAD".to_string(), full.clone()),
        ("NDIMBD".to_string(), full.clone()),
        ("KWID".to_string(), full),
        ("VWMD".to_string(), vw.clone()),
        ("VWND".to_string(), vw),
        ("PADA".to_string(), flag.clone()),
        ("PADB".to_string(), flag),
    ]
}

/// CLBlast's compiled-in default configuration — "small" values chosen to
/// perform acceptably everywhere (paper: WGD=8, KWID=1 etc., Section VI-B).
pub fn default_config() -> Config {
    Config::from_pairs([
        ("WGD", atf_core::value::Value::UInt(8)),
        ("MDIMCD", atf_core::value::Value::UInt(8)),
        ("NDIMCD", atf_core::value::Value::UInt(8)),
        ("MDIMAD", atf_core::value::Value::UInt(8)),
        ("NDIMBD", atf_core::value::Value::UInt(8)),
        ("KWID", atf_core::value::Value::UInt(1)),
        ("VWMD", atf_core::value::Value::UInt(1)),
        ("VWND", atf_core::value::Value::UInt(1)),
        ("PADA", atf_core::value::Value::Bool(true)),
        ("PADB", atf_core::value::Value::Bool(true)),
    ])
}

/// Decodes a configuration into [`XgemmParams`].
pub fn params_from_config(c: &Config) -> XgemmParams {
    XgemmParams {
        wgd: c.get_u64("WGD"),
        mdimcd: c.get_u64("MDIMCD"),
        ndimcd: c.get_u64("NDIMCD"),
        mdimad: c.get_u64("MDIMAD"),
        ndimbd: c.get_u64("NDIMBD"),
        kwid: c.get_u64("KWID"),
        vwmd: c.get_u64("VWMD"),
        vwnd: c.get_u64("VWND"),
        pada: c.get_bool("PADA"),
        padb: c.get_bool("PADB"),
    }
}

/// Renders a configuration as kernel macro definitions.
pub fn defines_from_config(c: &Config) -> DefineMap {
    let mut d = DefineMap::new();
    for (name, value) in c.iter() {
        d.define(name, value.to_source_token());
    }
    d
}

/// CLBlast's host-side launch geometry: the global size is *padded* to full
/// tiles — "in CLBlast, the global size is automatically adapted to a
/// multiple of the local size ... by performing arithmetic operations
/// between tuning parameters and constants which cannot be expressed in
/// CLTune" (Section VI-A). Expressible in ATF as
/// `ceil(M / WGD) · MDIMCD` per dimension.
pub fn clblast_launch(c: &Config, m: u64, n: u64) -> Launch {
    let wgd = c.get_u64("WGD");
    let mdimcd = c.get_u64("MDIMCD");
    let ndimcd = c.get_u64("NDIMCD");
    Launch::two_d(
        (m.div_ceil(wgd) * mdimcd, n.div_ceil(wgd) * ndimcd),
        (mdimcd, ndimcd),
    )
}

/// CLTune's host-side launch geometry: the *unpadded* base global size
/// `(m, n)` divided by WGD and multiplied by the thread-grid dimensions
/// (`DivGlobalSize` / `MulLocalSize`). Correct only when WGD divides `m`
/// and `n` — hence CLTune's extra constraints.
pub fn cltune_launch(c: &Config, m: u64, n: u64) -> Launch {
    let wgd = c.get_u64("WGD");
    let mdimcd = c.get_u64("MDIMCD");
    let ndimcd = c.get_u64("NDIMCD");
    Launch::two_d(((m / wgd) * mdimcd, (n / wgd) * ndimcd), (mdimcd, ndimcd))
}

/// A convenience: checks whether `c` satisfies all kernel interdependencies
/// (used to measure valid fractions for the OpenTuner experiment).
pub fn config_is_valid(c: &Config) -> bool {
    params_from_config(c).validate().is_ok()
        && 8 * c.get_u64("WGD") * (c.get_u64("WGD") + 1) <= 48 * 1024
}

/// Asserts that the declared constraints in [`atf_space`] match the kernel's
/// own validation — kept `pub` so integration tests and benches can assert
/// space soundness.
pub fn space_is_sound(groups: &[ParamGroup], sample_limit: usize) -> bool {
    let space = atf_core::space::SearchSpace::generate(groups);
    let n = space.len().min(sample_limit as u128);
    let step = (space.len() / n.max(1)).max(1);
    let mut i = 0u128;
    while i < space.len() {
        let cfg = space.get(i);
        if params_from_config(&cfg).validate().is_err() {
            return false;
        }
        i += step;
    }
    true
}

/// `is_multiple_of` is re-exported here so the doc-link in DESIGN.md has a
/// stable target; it is the inverse alias used when dependencies are
/// declared in the other direction.
pub use atf_core::constraint::is_multiple_of as _is_multiple_of_alias;
#[allow(unused_imports)]
use is_multiple_of as _keep_alias_import;

#[cfg(test)]
mod tests {
    use super::*;
    use atf_core::space::SearchSpace;

    #[test]
    fn atf_space_is_large_and_size_independent() {
        // The native ATF space does not depend on the matrix sizes (no
        // divides-M/N constraints), so one count covers all Caffe sizes.
        let space = SearchSpace::count(&atf_space_wgd_max(24)).unwrap();
        assert!(space > 10_000, "ATF space too small: {space}");
        let again = SearchSpace::count(&atf_space_wgd_max(24)).unwrap();
        assert_eq!(space, again);
    }

    #[test]
    fn clblast_limited_space_empty_for_caffe_sizes() {
        // The paper's key observation: the range-limited WGD ∈ {8,16,32}
        // with the divides-rows/columns constraint yields an EMPTY space for
        // every deep-learning input size (none of 20, 50, 10 rows is a
        // multiple of 8).
        for &(m, n, k) in &crate::caffe::INPUT_SIZES {
            let space = SearchSpace::count(&clblast_limited_space(m, n, k)).unwrap();
            assert_eq!(space, 0, "expected empty CLTune space for {m}×{n}×{k}");
        }
    }

    #[test]
    fn clblast_limited_space_nonempty_for_256() {
        // ... but non-empty for the 256×256 size CLBlast tuned on.
        let space = SearchSpace::count(&clblast_limited_space(256, 256, 256)).unwrap();
        assert!(space > 100, "{space}");
    }

    #[test]
    fn all_generated_configs_valid_for_kernel() {
        // A capped space keeps the debug-mode test fast; the constraint set
        // is identical at every cap.
        assert!(space_is_sound(&atf_space_wgd_max(24), 2000));
    }

    #[test]
    fn cltune_constrained_space_is_subset() {
        let full = SearchSpace::count(&atf_space(24, 48, 8)).unwrap();
        let constrained = SearchSpace::count(&atf_space_cltune_constraints(24, 48, 8)).unwrap();
        assert!(constrained < full, "{constrained} !< {full}");
        assert!(constrained > 0);
        // Every constrained config has WGD dividing 24 and 48.
        let space = SearchSpace::generate(&atf_space_cltune_constraints(24, 48, 8));
        for i in (0..space.len()).step_by(101) {
            let wgd = space.get(i).get_u64("WGD");
            assert_eq!(24 % wgd, 0);
            assert_eq!(48 % wgd, 0);
        }
    }

    #[test]
    fn default_config_is_valid() {
        assert!(config_is_valid(&default_config()));
    }

    #[test]
    fn launch_geometries() {
        let c = default_config(); // WGD=8, MDIMCD=NDIMCD=8
        let padded = clblast_launch(&c, 20, 576);
        // ceil(20/8)=3 tiles → 24 rows → 3*8=24 work-items in m.
        assert_eq!(padded.global(), &[24, 576]);
        assert_eq!(padded.local(), &[8, 8]);

        let unpadded = cltune_launch(&c, 24, 576);
        assert_eq!(unpadded.global(), &[24, 576]);
        // For non-multiples the unpadded geometry under-covers:
        let under = cltune_launch(&c, 20, 576);
        assert_eq!(under.global()[0], 16); // 2 tiles only — kernel rejects
    }

    #[test]
    fn unconstrained_ranges_shape() {
        let ps = unconstrained_params(64);
        assert_eq!(ps.len(), 10);
        assert_eq!(ps[0].1.len(), 64);
        assert_eq!(ps[6].1, vec![1, 2, 4, 8]);
        assert_eq!(ps[8].1, vec![0, 1]);
    }

    #[test]
    fn valid_fraction_is_tiny() {
        // Sample the unconstrained cross product uniformly: the valid
        // fraction must be ≪ 1% (paper: ~10⁻⁷ for the full ranges at IS4;
        // smaller ranges here, so less extreme but still tiny).
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let ps = unconstrained_params(64);
        let mut valid = 0u32;
        let trials = 20_000;
        for _ in 0..trials {
            let cfg = Config::from_pairs(ps.iter().map(|(name, range)| {
                let v = range[rng.gen_range(0..range.len())];
                if name == "PADA" || name == "PADB" {
                    (name.as_str(), atf_core::value::Value::Bool(v != 0))
                } else {
                    (name.as_str(), atf_core::value::Value::UInt(v))
                }
            }));
            if config_is_valid(&cfg) {
                valid += 1;
            }
        }
        let fraction = valid as f64 / trials as f64;
        assert!(fraction < 0.01, "valid fraction {fraction}");
    }

    #[test]
    fn defines_round_trip() {
        let c = default_config();
        let d = defines_from_config(&c);
        assert_eq!(d.get_u64("WGD"), Some(8));
        assert_eq!(d.get_bool("PADA"), Some(true));
        assert_eq!(d.get_u64("KWID"), Some(1));
    }
}
