//! CLBlast's `Xdot` two-stage reduction (`r = Σ x[i]·y[i]`) for the
//! simulator. Its tuning parameters exhibit a *different* interdependency
//! pattern than GEMM's divisibility chains — an inequality across stages:
//!
//! * `WGS1` — stage-1 work-group size (power of two, for the tree reduce);
//! * `NWG` — number of stage-1 work-groups (each produces one partial sum);
//! * `WGS2` — stage-2 work-group size (power of two) that reduces the
//!   partials; must satisfy `WGS2 ≥ NWG` so one work-group covers them.

use atf_core::constraint::{predicate, Constraint};
use atf_core::param::{tp_c, ParamGroup};
use atf_core::range::Range;
use ocl_sim::{ClError, ExecMode, KernelCall, KernelProfile, SimKernel};

/// Abridged OpenCL source (macro identifiers for the preprocessor).
pub const XDOT_SOURCE: &str = r#"
// Xdot: two-stage dot product. Stage 1: NWG work-groups of WGS1 work-items
// produce one partial sum each (tree reduction in local memory). Stage 2:
// one work-group of WGS2 work-items reduces the partials.
// Tuning parameters: WGS1 NWG WGS2
__kernel void XdotStage1(const int n, const __global float* xgm,
                         const __global float* ygm, __global float* partial)
{ /* WGS1, NWG */ }
__kernel void XdotStage2(__global float* partial, __global float* result)
{ /* WGS2 */ }
"#;

/// The simulated two-stage dot kernel (both stages modelled in one launch;
/// the profile sums their work and the stage-2 serialization shows up as a
/// second launch overhead).
pub struct XdotKernel;

fn is_pow2(v: u64) -> bool {
    v != 0 && v.is_power_of_two()
}

impl SimKernel for XdotKernel {
    fn name(&self) -> &str {
        "Xdot"
    }

    fn source(&self) -> &str {
        XDOT_SOURCE
    }

    fn required_defines(&self) -> &[&str] {
        &["WGS1", "NWG", "WGS2"]
    }

    fn execute(&self, call: &KernelCall<'_>) -> Result<KernelProfile, ClError> {
        let wgs1 = call.define_u64("WGS1")?;
        let nwg = call.define_u64("NWG")?;
        let wgs2 = call.define_u64("WGS2")?;
        if !is_pow2(wgs1) || !is_pow2(wgs2) {
            return Err(ClError::BuildProgramFailure(
                "Xdot: WGS1 and WGS2 must be powers of two (tree reduction)".into(),
            ));
        }
        if nwg == 0 || wgs2 < nwg {
            return Err(ClError::BuildProgramFailure(format!(
                "Xdot: WGS2 ({wgs2}) must be ≥ NWG ({nwg}) to reduce all partial sums"
            )));
        }
        let n = call
            .scalar(0)?
            .as_u64()
            .ok_or_else(|| ClError::InvalidKernelArgs("n must be an integer".into()))?;
        let x = call.buffer(1)?;
        let y = call.buffer(2)?;
        let r = call.buffer(3)?;
        if x.len() < n as usize || y.len() < n as usize || r.is_empty() {
            return Err(ClError::InvalidBuffer("Xdot buffers too small".into()));
        }
        if call.launch.global_size() != wgs1 * nwg || call.launch.local_size() != wgs1 {
            return Err(ClError::InvalidKernelArgs(format!(
                "Xdot stage-1 launch must be ({} x {}), got global {} local {}",
                nwg,
                wgs1,
                call.launch.global_size(),
                call.launch.local_size()
            )));
        }

        if call.mode == ExecMode::Functional {
            // Stage semantics: grid-strided partial sums per work-group,
            // then a final reduce — numerically we reproduce the grouped
            // summation order (f32).
            let xv = x.borrow_f32();
            let yv = y.borrow_f32();
            let mut partials = vec![0.0f32; nwg as usize];
            for (g, p) in partials.iter_mut().enumerate() {
                let mut i = g as u64 * wgs1;
                while i < n {
                    for j in i..(i + wgs1).min(n) {
                        *p += xv[j as usize] * yv[j as usize];
                    }
                    i += wgs1 * nwg;
                }
            }
            let total: f32 = partials.iter().sum();
            r.borrow_f32_mut()[0] = total;
        }

        // Work: stage 1 streams 8n bytes and does 2n flops plus a
        // log2(WGS1)-deep tree per group; stage 2 is negligible work but a
        // full second launch (modelled as extra overhead instructions and
        // the partial-sum traffic).
        let tree1 = (nwg * wgs1) as f64 * (wgs1 as f64).log2().max(1.0);
        let tree2 = wgs2 as f64 * (wgs2 as f64).log2().max(1.0);
        Ok(KernelProfile {
            flops: 2.0 * n as f64 + tree1 + tree2,
            overhead_instructions: (n as f64 / (wgs1 * nwg) as f64).ceil()
                * (nwg * wgs1) as f64
                * 2.0
                + tree1
                + tree2 * 4.0,
            global_bytes_read: 8.0 * n as f64 + nwg as f64 * 4.0,
            global_bytes_written: nwg as f64 * 4.0 + 4.0,
            local_bytes_accessed: tree1 * 4.0 + tree2 * 4.0,
            local_mem_per_wg: wgs1.max(wgs2) * 4,
            ..Default::default()
        })
    }
}

/// The ATF tuning space for Xdot on an `n`-element input. Demonstrates a
/// non-divisibility interdependency: `WGS2 ≥ NWG`.
pub fn xdot_space(n: u64) -> Vec<ParamGroup> {
    let pow2 = |max_exp: u64| Range::interval_gen(0, max_exp, |i| 1u64 << i);
    let positive: Constraint = predicate("≥ 1", |v, _| v.as_u64().is_some_and(|x| x >= 1));
    vec![ParamGroup::new(vec![
        tp_c("WGS1", pow2(10), positive.clone()),
        tp_c(
            "NWG",
            Range::interval(1, 512.min(n.max(1))),
            predicate("NWG*WGS1 <= 4n (no empty groups)", move |v, c| {
                v.as_u64()
                    .is_some_and(|nwg| nwg * c.get_u64("WGS1") <= 4 * n.max(1))
            }),
        ),
        tp_c(
            "WGS2",
            pow2(10),
            predicate("WGS2 >= NWG", |v, c| {
                v.as_u64().is_some_and(|w| w >= c.get_u64("NWG"))
            })
            .with_references(["NWG"]),
        ),
    ])]
}

/// Stage-1 launch for a configuration.
pub fn xdot_launch(config: &atf_core::config::Config) -> ocl_sim::Launch {
    let wgs1 = config.get_u64("WGS1");
    let nwg = config.get_u64("NWG");
    ocl_sim::Launch::one_d(wgs1 * nwg, wgs1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atf_core::config::Config;
    use atf_core::space::SearchSpace;
    use ocl_sim::{Context, DefineMap, DeviceModel, Scalar};
    use rand::{Rng, SeedableRng};

    fn run(n: u64, wgs1: u64, nwg: u64, wgs2: u64, mode: ExecMode) -> Result<(f32, f64), ClError> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut ctx = Context::new(DeviceModel::tesla_k20m()).with_noise(0.0);
        let xb = ctx.create_buffer_f32(x);
        let yb = ctx.create_buffer_f32(y);
        let rb = ctx.create_buffer_f32(vec![0.0]);
        let cfg = Config::from_pairs([("WGS1", wgs1), ("NWG", nwg), ("WGS2", wgs2)]);
        let defines = DefineMap::new()
            .with("WGS1", wgs1.to_string())
            .with("NWG", nwg.to_string())
            .with("WGS2", wgs2.to_string());
        let ev = ctx.enqueue_kernel(
            &XdotKernel,
            &[Scalar::U64(n).into(), xb.into(), yb.into(), rb.into()],
            &xdot_launch(&cfg),
            &defines,
            mode,
        )?;
        let result = ctx.buffer(rb).borrow_f32()[0];
        Ok((result, ev.duration_ns()))
    }

    fn expected(n: u64) -> f32 {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        x.iter().zip(&y).map(|(a, b)| (a * b) as f64).sum::<f64>() as f32
    }

    #[test]
    fn functional_matches_reference() {
        for (n, wgs1, nwg, wgs2) in [(1024u64, 64, 8, 8), (1000, 32, 4, 16), (17, 8, 2, 2)] {
            let (got, _) = run(n, wgs1, nwg, wgs2, ExecMode::Functional).unwrap();
            let want = expected(n);
            assert!(
                (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                "n={n}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn power_of_two_enforced() {
        let err = run(1024, 48, 4, 64, ExecMode::ModelOnly);
        assert!(matches!(err, Err(ClError::BuildProgramFailure(m)) if m.contains("powers of two")));
    }

    #[test]
    fn stage2_must_cover_partials() {
        let err = run(1024, 64, 32, 16, ExecMode::ModelOnly);
        assert!(matches!(err, Err(ClError::BuildProgramFailure(m)) if m.contains("WGS2")));
    }

    #[test]
    fn space_respects_cross_stage_inequality() {
        let space = SearchSpace::generate(&xdot_space(1 << 16));
        assert!(space.len() > 100);
        for i in (0..space.len()).step_by(11) {
            let cfg = space.get(i);
            assert!(cfg.get_u64("WGS2") >= cfg.get_u64("NWG"), "{cfg:?}");
            assert!(cfg.get_u64("WGS1").is_power_of_two());
            assert!(cfg.get_u64("WGS2").is_power_of_two());
        }
    }

    #[test]
    fn every_space_config_launches() {
        let n = 1u64 << 14;
        let space = SearchSpace::generate(&xdot_space(n));
        for i in (0..space.len()).step_by(13) {
            let cfg = space.get(i);
            run(
                n,
                cfg.get_u64("WGS1"),
                cfg.get_u64("NWG"),
                cfg.get_u64("WGS2"),
                ExecMode::ModelOnly,
            )
            .unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
        }
    }

    #[test]
    fn parallelism_matters() {
        // One work-group cannot saturate the device; 64 groups can.
        let n = 1u64 << 18;
        let (_, t1) = run(n, 256, 1, 2, ExecMode::ModelOnly).unwrap();
        let (_, t64) = run(n, 256, 64, 64, ExecMode::ModelOnly).unwrap();
        assert!(t64 < t1 / 2.0, "t1={t1} t64={t64}");
    }

    #[test]
    fn end_to_end_tuning_with_auto_grouping() {
        use atf_core::prelude::*;
        let n = 1u64 << 18;
        // The three parameters are interdependent → auto_group must put
        // them into a single group (WGS2→NWG exact ref; NWG→WGS1 opaque).
        let params = xdot_space(n).remove(0);
        let groups = atf_core::param::auto_group(params.params().to_vec());
        assert_eq!(groups.len(), 1, "Xdot parameters are all linked");
        // Context and buffers created once; evaluations only enqueue.
        let mut ctx = Context::new(DeviceModel::tesla_k20m()).with_noise(0.0);
        let xb = ctx.create_buffer_f32(vec![0.5; n as usize]);
        let yb = ctx.create_buffer_f32(vec![0.25; n as usize]);
        let rb = ctx.create_buffer_f32(vec![0.0]);
        let mut cf = atf_core::cost::try_cost_fn(move |cfg: &Config| {
            let defines = DefineMap::new()
                .with("WGS1", cfg.get_u64("WGS1").to_string())
                .with("NWG", cfg.get_u64("NWG").to_string())
                .with("WGS2", cfg.get_u64("WGS2").to_string());
            ctx.enqueue_kernel(
                &XdotKernel,
                &[Scalar::U64(n).into(), xb.into(), yb.into(), rb.into()],
                &xdot_launch(cfg),
                &defines,
                ExecMode::ModelOnly,
            )
            .map(|ev| ev.duration_ns())
            .map_err(|e| CostError::InvalidConfiguration(e.to_string()))
        });
        let r = Tuner::new()
            .technique(Ensemble::opentuner_default(4))
            .abort_condition(abort::evaluations(300))
            .tune(&groups, &mut cf)
            .unwrap();
        let (_, bad) = run(n, 1, 1, 1, ExecMode::ModelOnly).unwrap();
        assert!(r.best_cost < bad);
    }
}
