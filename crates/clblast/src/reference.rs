//! Naive reference implementations used as correctness oracles for the
//! tunable kernels (the error-checking mode of ATF's OpenCL cost function).

/// `y[i] = a * x[i] + y[i]` (BLAS saxpy), sequential reference.
pub fn saxpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "saxpy operand length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `C = alpha * A · B + beta * C` with row-major dense matrices:
/// `A` is `m×k`, `B` is `k×n`, `C` is `m×n`. Naive triple loop.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS sgemm signature
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    assert_eq!(c.len(), m * n, "C must be m×n");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

/// Element-wise approximate equality with a tolerance scaled to the
/// accumulation length (float summation order differs between the tiled
/// kernel and the naive loop).
pub fn approx_eq(a: &[f32], b: &[f32], k: usize) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let tol = 1e-4f32 * (k.max(1) as f32).sqrt();
    a.iter().zip(b).all(|(x, y)| {
        let scale = x.abs().max(y.abs()).max(1.0);
        (x - y).abs() <= tol * scale
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saxpy_reference() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        saxpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn saxpy_length_mismatch() {
        saxpy(1.0, &[1.0], &mut [1.0, 2.0]);
    }

    #[test]
    fn gemm_identity() {
        // A = I (2×2), B arbitrary.
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        gemm(2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = vec![1.0, 2.0]; // 1×2
        let b = vec![3.0, 4.0]; // 2×1
        let mut c = vec![10.0]; // 1×1
        gemm(1, 1, 2, 2.0, &a, &b, 0.5, &mut c);
        // 2*(1*3 + 2*4) + 0.5*10 = 22 + 5 = 27
        assert_eq!(c, vec![27.0]);
    }

    #[test]
    fn gemm_rectangular() {
        // 2×3 · 3×1
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = vec![1.0, 1.0, 1.0];
        let mut c = vec![0.0; 2];
        gemm(2, 1, 3, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c, vec![6.0, 15.0]);
    }

    #[test]
    fn gemm_k_zero_scales_c() {
        let mut c = vec![3.0, 4.0];
        gemm(1, 2, 0, 1.0, &[], &[], 2.0, &mut c);
        assert_eq!(c, vec![6.0, 8.0]);
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(approx_eq(&[1.0], &[1.0 + 1e-6], 1));
        assert!(!approx_eq(&[1.0], &[1.1], 1));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1));
        // Larger k widens tolerance.
        assert!(approx_eq(&[100.0], &[100.02], 10_000));
    }
}
