//! CLBlast's `XgemmDirect` kernel — the paper's evaluation workload
//! (Section VI): a single-kernel GEMM "optimized for small matrix sizes of
//! up to 2¹⁰ × 2¹⁰" with 10 tuning parameters and a web of
//! interdependencies.
//!
//! Tuning parameters (CLBlast naming):
//! * `WGD` — the work-group's C tile is `WGD × WGD`;
//! * `MDIMCD`, `NDIMCD` — work-group thread grid (local size);
//! * `MDIMAD`, `NDIMBD` — thread re-arrangements for loading the A/B tiles;
//! * `KWID` — k-loop unroll factor;
//! * `VWMD`, `VWND` — per-thread vector widths for A/B accesses;
//! * `PADA`, `PADB` — local-memory padding switches (bank conflicts).
//!
//! The functional executor computes `C = alpha·A·B + beta·C` (row-major) for
//! any launch that covers the matrix, using the same tile decomposition as
//! the OpenCL kernel, so results can be verified against the naive
//! reference for *every* valid configuration.

use ocl_sim::{ClError, ExecMode, KernelCall, KernelProfile, SimKernel};

/// Abridged OpenCL source of XgemmDirect. The macro identifiers are what the
/// preprocessor-based cost function substitutes; the full control flow lives
/// in the functional executor below.
pub const XGEMM_DIRECT_SOURCE: &str = r#"
// XgemmDirect: C (m x n) = alpha * A (m x k) * B (k x n) + beta * C
// Tuning parameters: WGD MDIMCD NDIMCD MDIMAD NDIMBD KWID VWMD VWND PADA PADB
__kernel __attribute__((reqd_work_group_size(MDIMCD, NDIMCD, 1)))
void XgemmDirect(const int kSizeM, const int kSizeN, const int kSizeK,
                 const float alpha, const float beta,
                 const __global float* restrict agm,
                 const __global float* restrict bgm,
                 __global float* cgm)
{
  __local float alm[WGD * (WGD + PADA)];
  __local float blm[WGD * (WGD + PADB)];
  float cpd[(WGD/MDIMCD) * (WGD/NDIMCD)];
  // Tiled multiply: the work-group streams WGD-wide k-blocks of A and B
  // through local memory (loaded by MDIMAD/NDIMBD thread arrangements with
  // VWMD/VWND-wide vector accesses), unrolling the inner k-loop by KWID.
  // ... (control flow reproduced by the simulator's functional executor)
}
"#;

/// The ten tuning-parameter macro names, in declaration order.
pub const XGEMM_PARAMS: [&str; 10] = [
    "WGD", "MDIMCD", "NDIMCD", "MDIMAD", "NDIMBD", "KWID", "VWMD", "VWND", "PADA", "PADB",
];

/// Decoded parameter values of one configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XgemmParams {
    /// C tile edge (the work-group computes a `WGD × WGD` tile).
    pub wgd: u64,
    /// Work-group threads along m.
    pub mdimcd: u64,
    /// Work-group threads along n.
    pub ndimcd: u64,
    /// A-load thread arrangement along m.
    pub mdimad: u64,
    /// B-load thread arrangement along n.
    pub ndimbd: u64,
    /// k-loop unroll factor.
    pub kwid: u64,
    /// Vector width for A-side accesses.
    pub vwmd: u64,
    /// Vector width for B-side accesses.
    pub vwnd: u64,
    /// Pad the A tile in local memory.
    pub pada: bool,
    /// Pad the B tile in local memory.
    pub padb: bool,
}

impl XgemmParams {
    /// Reads the parameters from the macro definitions of a kernel call.
    pub fn from_call(call: &KernelCall<'_>) -> Result<Self, ClError> {
        Ok(XgemmParams {
            wgd: call.define_u64("WGD")?,
            mdimcd: call.define_u64("MDIMCD")?,
            ndimcd: call.define_u64("NDIMCD")?,
            mdimad: call.define_u64("MDIMAD")?,
            ndimbd: call.define_u64("NDIMBD")?,
            kwid: call.define_u64("KWID")?,
            vwmd: call.define_u64("VWMD")?,
            vwnd: call.define_u64("VWND")?,
            pada: call.define_bool("PADA")?,
            padb: call.define_bool("PADB")?,
        })
    }

    /// Work-items per work-group.
    pub fn threads_per_wg(&self) -> u64 {
        self.mdimcd * self.ndimcd
    }

    /// Local-memory bytes per work-group: the A and B tiles
    /// (`WGD × (WGD + pad)` floats each).
    pub fn local_mem_bytes(&self) -> u64 {
        let pa = self.pada as u64;
        let pb = self.padb as u64;
        4 * (self.wgd * (self.wgd + pa) + self.wgd * (self.wgd + pb))
    }

    /// Validates the interdependency relations the kernel requires.
    /// Returns the description of the first violated relation.
    ///
    /// These are the relations an unconstrained tuner (the OpenTuner
    /// baseline) keeps violating — each failure costs one evaluation
    /// (Section VI-B).
    pub fn validate(&self) -> Result<(), String> {
        let p = self;
        if p.wgd == 0
            || p.mdimcd == 0
            || p.ndimcd == 0
            || p.mdimad == 0
            || p.ndimbd == 0
            || p.kwid == 0
            || p.vwmd == 0
            || p.vwnd == 0
        {
            return Err("all integer parameters must be ≥ 1".to_string());
        }
        let rel = |ok: bool, desc: &str| if ok { Ok(()) } else { Err(desc.to_string()) };
        rel(p.wgd.is_multiple_of(p.mdimcd), "MDIMCD must divide WGD")?;
        rel(p.wgd.is_multiple_of(p.ndimcd), "NDIMCD must divide WGD")?;
        rel(p.wgd.is_multiple_of(p.mdimad), "MDIMAD must divide WGD")?;
        rel(p.wgd.is_multiple_of(p.ndimbd), "NDIMBD must divide WGD")?;
        rel(p.wgd.is_multiple_of(p.kwid), "KWID must divide WGD")?;
        rel(
            p.threads_per_wg().is_multiple_of(p.mdimad),
            "MDIMAD must divide MDIMCD*NDIMCD",
        )?;
        rel(
            p.threads_per_wg().is_multiple_of(p.ndimbd),
            "NDIMBD must divide MDIMCD*NDIMCD",
        )?;
        rel(
            (p.wgd / p.mdimcd).is_multiple_of(p.vwmd),
            "VWMD must divide WGD/MDIMCD",
        )?;
        rel(
            (p.wgd / p.mdimad).is_multiple_of(p.vwmd),
            "VWMD must divide WGD/MDIMAD",
        )?;
        rel(
            (p.wgd / p.ndimcd).is_multiple_of(p.vwnd),
            "VWND must divide WGD/NDIMCD",
        )?;
        rel(
            (p.wgd / p.ndimbd).is_multiple_of(p.vwnd),
            "VWND must divide WGD/NDIMBD",
        )?;
        rel(
            p.threads_per_wg() <= 1024,
            "MDIMCD*NDIMCD must not exceed 1024 work-items",
        )?;
        Ok(())
    }
}

/// The simulated XgemmDirect kernel.
pub struct XgemmDirectKernel;

impl XgemmDirectKernel {
    /// Decodes the scalar arguments `(m, n, k, alpha, beta)`.
    fn sizes(call: &KernelCall<'_>) -> Result<(u64, u64, u64, f32, f32), ClError> {
        let get = |i: usize, what: &str| {
            call.scalar(i)?.as_u64().ok_or_else(|| {
                ClError::InvalidKernelArgs(format!("{what} must be a non-negative integer"))
            })
        };
        let m = get(0, "kSizeM")?;
        let n = get(1, "kSizeN")?;
        let k = get(2, "kSizeK")?;
        let alpha = call.scalar(3)?.as_f32();
        let beta = call.scalar(4)?.as_f32();
        Ok((m, n, k, alpha, beta))
    }
}

impl SimKernel for XgemmDirectKernel {
    fn name(&self) -> &str {
        "XgemmDirect"
    }

    fn source(&self) -> &str {
        XGEMM_DIRECT_SOURCE
    }

    fn required_defines(&self) -> &[&str] {
        &XGEMM_PARAMS
    }

    fn execute(&self, call: &KernelCall<'_>) -> Result<KernelProfile, ClError> {
        let p = XgemmParams::from_call(call)?;
        p.validate()
            .map_err(|m| ClError::BuildProgramFailure(format!("XgemmDirect: {m}")))?;

        let (m, n, k, alpha, beta) = Self::sizes(call)?;
        let a = call.buffer(5)?;
        let b = call.buffer(6)?;
        let c = call.buffer(7)?;
        if a.len() < (m * k) as usize || b.len() < (k * n) as usize || c.len() < (m * n) as usize {
            return Err(ClError::InvalidBuffer(
                "A/B/C buffers smaller than the matrix sizes".to_string(),
            ));
        }

        // The launch must use the work-group's thread grid as local size and
        // cover the whole C matrix with WGD tiles.
        let launch = call.launch;
        if launch.local() != [p.mdimcd, p.ndimcd] {
            return Err(ClError::InvalidKernelArgs(format!(
                "local size {:?} must equal (MDIMCD, NDIMCD) = ({}, {})",
                launch.local(),
                p.mdimcd,
                p.ndimcd
            )));
        }
        let tiles_m = launch.global()[0] / p.mdimcd;
        let tiles_n = launch.global()[1] / p.ndimcd;
        if tiles_m * p.wgd < m || tiles_n * p.wgd < n {
            return Err(ClError::InvalidKernelArgs(format!(
                "global size covers only {}×{} of the {}×{} result matrix",
                tiles_m * p.wgd,
                tiles_n * p.wgd,
                m,
                n
            )));
        }

        if call.mode == ExecMode::Functional {
            let am = a.borrow_f32();
            let bm = b.borrow_f32();
            let mut cm = c.borrow_f32_mut();
            execute_tiled(&p, m, n, k, alpha, beta, &am, &bm, &mut cm);
        }

        Ok(profile(&p, call, m, n, k, tiles_m, tiles_n, beta))
    }
}

/// Functional tiled execution (row-major), mirroring the kernel's tile
/// decomposition: each work-group computes one `WGD × WGD` tile with bounds
/// checks at the matrix edges (the "direct" kernel's defining feature).
#[allow(clippy::too_many_arguments)] // mirrors the kernel argument list
fn execute_tiled(
    p: &XgemmParams,
    m: u64,
    n: u64,
    k: u64,
    alpha: f32,
    beta: f32,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let (m, n, k) = (m as usize, n as usize, k as usize);
    let wgd = p.wgd as usize;
    let kwid = p.kwid as usize;
    for tile_i in (0..m).step_by(wgd) {
        for tile_j in (0..n).step_by(wgd) {
            for i in tile_i..(tile_i + wgd).min(m) {
                for j in tile_j..(tile_j + wgd).min(n) {
                    // k-loop in KWID-unrolled blocks, accumulation order as
                    // in the kernel.
                    let mut acc = 0.0f32;
                    let mut kk = 0;
                    while kk < k {
                        let end = (kk + kwid).min(k);
                        let mut block = 0.0f32;
                        for kp in kk..end {
                            block += a[i * k + kp] * b[kp * n + j];
                        }
                        acc += block;
                        kk = end;
                    }
                    c[i * n + j] = alpha * acc + beta * c[i * n + j];
                }
            }
        }
    }
}

/// Builds the work profile — this encodes the tuning landscape (see the
/// module docs of `ocl_sim::perf` for how the device translates it).
#[allow(clippy::too_many_arguments)]
fn profile(
    p: &XgemmParams,
    call: &KernelCall<'_>,
    m: u64,
    n: u64,
    k: u64,
    tiles_m: u64,
    tiles_n: u64,
    beta: f32,
) -> KernelProfile {
    let padded_m = (tiles_m * p.wgd) as f64;
    let padded_n = (tiles_n * p.wgd) as f64;
    let kf = k as f64;
    let wgs = (tiles_m * tiles_n) as f64;
    let threads = p.threads_per_wg() as f64;

    // Register tile per thread.
    let rtile_m = (p.wgd / p.mdimcd) as f64;
    let rtile_n = (p.wgd / p.ndimcd) as f64;

    // Work (padding included — edge tiles compute the full WGD tile and
    // mask the stores).
    let macs = padded_m * padded_n * kf;
    let flops = 2.0 * macs;

    // Global traffic: each work-group streams its WGD-row strip of A and
    // WGD-column strip of B once; C is written (and read when beta ≠ 0).
    let a_bytes = wgs * (p.wgd as f64) * kf * 4.0;
    let b_bytes = wgs * kf * (p.wgd as f64) * 4.0;
    let c_read = if beta != 0.0 { (m * n * 4) as f64 } else { 0.0 };
    let c_write = (m * n * 4) as f64;

    // Coalescing: contiguous run length of each access pattern vs the
    // device's transaction window.
    let window = (call.device.cache_line_bytes / 4).max(1) as f64;
    let coal = |run: f64| (run.min(window) / window).max(1.0 / window);
    let coal_a = coal((p.mdimad * p.vwmd) as f64);
    let coal_b = coal((p.ndimbd * p.vwnd) as f64);
    let coal_c = coal((p.ndimcd * p.vwnd) as f64);
    let total_bytes = a_bytes + b_bytes + c_read + c_write;
    let coalescing = if total_bytes > 0.0 {
        (a_bytes * coal_a + b_bytes * coal_b + (c_read + c_write) * coal_c) / total_bytes
    } else {
        1.0
    };

    // Local-memory traffic: per MAC, A-values amortize over the register
    // tile's n extent and B-values over its m extent.
    let local_bytes = 4.0 * macs * (1.0 / rtile_n.max(1.0) + 1.0 / rtile_m.max(1.0));

    // Bank conflicts: power-of-two tile strides conflict unless padded
    // (GPU effect — wavefront-wide local accesses).
    let bank = |padded: bool| {
        if call.device.wavefront > 1 && !padded && p.wgd.is_multiple_of(16) {
            2.0
        } else {
            1.0
        }
    };
    let bank_conflict_factor = (bank(p.pada) + bank(p.padb)) / 2.0;

    // Instruction overhead per thread: unrolled k-loop bookkeeping plus tile
    // load instructions (vector loads amortize).
    let k_tiles = (kf / p.wgd as f64).ceil();
    let loop_overhead = 4.0 * (kf / p.kwid as f64).ceil() + 2.0 * k_tiles;
    let tile_elems_per_thread = (p.wgd * p.wgd) as f64 / threads;
    let load_overhead =
        k_tiles * tile_elems_per_thread * (1.0 / p.vwmd as f64 + 1.0 / p.vwnd as f64);
    let index_overhead = rtile_m * rtile_n * k_tiles * 2.0;
    let overhead_instructions = wgs * threads * (loop_overhead + load_overhead + index_overhead);

    // Effective per-thread vector width (geometric mean of the two sides).
    let vector_width = ((p.vwmd * p.vwnd) as f64).sqrt().round().max(1.0) as u32;

    KernelProfile {
        flops,
        overhead_instructions,
        global_bytes_read: a_bytes + b_bytes + c_read,
        global_bytes_written: c_write,
        local_bytes_accessed: local_bytes,
        local_mem_per_wg: p.local_mem_bytes(),
        vector_width,
        coalescing_efficiency: coalescing.clamp(1.0 / window, 1.0),
        bank_conflict_factor,
        useful_fraction: 1.0, // padding already counted in flops/bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use ocl_sim::{Context, DefineMap, DeviceModel, Launch, Scalar};
    use rand::{Rng, SeedableRng};

    #[allow(clippy::too_many_arguments)] // one value per tuning parameter
    fn params(
        wgd: u64,
        mdimcd: u64,
        ndimcd: u64,
        mdimad: u64,
        ndimbd: u64,
        kwid: u64,
        vwmd: u64,
        vwnd: u64,
    ) -> XgemmParams {
        XgemmParams {
            wgd,
            mdimcd,
            ndimcd,
            mdimad,
            ndimbd,
            kwid,
            vwmd,
            vwnd,
            pada: true,
            padb: true,
        }
    }

    fn defines(p: &XgemmParams) -> DefineMap {
        DefineMap::new()
            .with("WGD", p.wgd.to_string())
            .with("MDIMCD", p.mdimcd.to_string())
            .with("NDIMCD", p.ndimcd.to_string())
            .with("MDIMAD", p.mdimad.to_string())
            .with("NDIMBD", p.ndimbd.to_string())
            .with("KWID", p.kwid.to_string())
            .with("VWMD", p.vwmd.to_string())
            .with("VWND", p.vwnd.to_string())
            .with("PADA", if p.pada { "1" } else { "0" })
            .with("PADB", if p.padb { "1" } else { "0" })
    }

    /// Launch with CLBlast's padded global size.
    fn padded_launch(p: &XgemmParams, m: u64, n: u64) -> Launch {
        let tiles_m = m.div_ceil(p.wgd);
        let tiles_n = n.div_ceil(p.wgd);
        Launch::two_d(
            (tiles_m * p.mdimcd, tiles_n * p.ndimcd),
            (p.mdimcd, p.ndimcd),
        )
    }

    fn run(
        device: DeviceModel,
        p: &XgemmParams,
        m: u64,
        n: u64,
        k: u64,
        mode: ExecMode,
    ) -> Result<(Vec<f32>, f64), ClError> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let c: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut ctx = Context::new(device).with_noise(0.0);
        let ab = ctx.create_buffer_f32(a);
        let bb = ctx.create_buffer_f32(b);
        let cb = ctx.create_buffer_f32(c);
        let ev = ctx.enqueue_kernel(
            &XgemmDirectKernel,
            &[
                Scalar::U64(m).into(),
                Scalar::U64(n).into(),
                Scalar::U64(k).into(),
                Scalar::F32(2.0).into(),
                Scalar::F32(0.5).into(),
                ab.into(),
                bb.into(),
                cb.into(),
            ],
            &padded_launch(p, m, n),
            &defines(p),
            mode,
        )?;
        let result = ctx.buffer(cb).borrow_f32().clone();
        Ok((result, ev.duration_ns()))
    }

    fn run_event(
        device: DeviceModel,
        p: &XgemmParams,
        m: u64,
        n: u64,
        k: u64,
    ) -> Result<ocl_sim::ProfilingEvent, ClError> {
        let mut ctx = Context::new(device).with_noise(0.0);
        let ab = ctx.create_buffer_f32(vec![0.0; (m * k) as usize]);
        let bb = ctx.create_buffer_f32(vec![0.0; (k * n) as usize]);
        let cb = ctx.create_buffer_f32(vec![0.0; (m * n) as usize]);
        ctx.enqueue_kernel(
            &XgemmDirectKernel,
            &[
                Scalar::U64(m).into(),
                Scalar::U64(n).into(),
                Scalar::U64(k).into(),
                Scalar::F32(1.0).into(),
                Scalar::F32(0.0).into(),
                ab.into(),
                bb.into(),
                cb.into(),
            ],
            &padded_launch(p, m, n),
            &defines(p),
            ExecMode::ModelOnly,
        )
    }

    fn expected(m: u64, n: u64, k: u64) -> Vec<f32> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut c: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        reference::gemm(m as usize, n as usize, k as usize, 2.0, &a, &b, 0.5, &mut c);
        c
    }

    #[test]
    fn functional_matches_reference_square() {
        let p = params(16, 8, 8, 8, 8, 2, 1, 1);
        let (got, _) = run(
            DeviceModel::tesla_k20m(),
            &p,
            32,
            32,
            32,
            ExecMode::Functional,
        )
        .unwrap();
        assert!(reference::approx_eq(&got, &expected(32, 32, 32), 32));
    }

    #[test]
    fn functional_matches_reference_edge_tiles() {
        // 20×576 with WGD=16: tiles overhang both dimensions.
        let p = params(16, 8, 8, 8, 8, 4, 2, 2);
        let (m, n, k) = (20, 576, 25);
        let (got, _) = run(DeviceModel::tesla_k20m(), &p, m, n, k, ExecMode::Functional).unwrap();
        assert!(reference::approx_eq(&got, &expected(m, n, k), k as usize));
    }

    #[test]
    fn functional_matches_reference_k1() {
        // IS1/IS3 shape: rank-1 update (k = 1).
        let p = params(8, 4, 8, 8, 4, 1, 1, 1);
        let (m, n, k) = (50, 64, 1);
        let (got, _) = run(DeviceModel::tesla_k20m(), &p, m, n, k, ExecMode::Functional).unwrap();
        assert!(reference::approx_eq(&got, &expected(m, n, k), 1));
    }

    #[test]
    fn all_interdependencies_enforced() {
        let ok = params(16, 8, 8, 8, 8, 2, 1, 1);
        assert!(ok.validate().is_ok());
        let cases = [
            (params(16, 3, 8, 8, 8, 2, 1, 1), "MDIMCD"),
            (params(16, 8, 5, 8, 8, 2, 1, 1), "NDIMCD"),
            (params(16, 8, 8, 3, 8, 2, 1, 1), "MDIMAD"),
            (params(16, 8, 8, 8, 7, 2, 1, 1), "NDIMBD"),
            (params(16, 8, 8, 8, 8, 3, 1, 1), "KWID"),
            (params(16, 8, 8, 8, 8, 2, 4, 1), "VWMD"), // WGD/MDIMCD = 2, VWMD = 4
            (params(16, 8, 8, 8, 8, 2, 1, 4), "VWND"),
        ];
        for (p, needle) in cases {
            let err = p.validate().unwrap_err();
            assert!(err.contains(needle), "{p:?}: {err}");
        }
        // MDIMAD must divide the thread count: 16 threads, MDIMAD=16 divides
        // WGD=16 and 16 | 16 — make a failing case: threads=4*4=16, MDIMAD=16
        // divides 16: ok. Use MDIMAD=8 with threads 4*2=8? 8|8 ok. threads
        // 2*2=4, MDIMAD=8: 4 % 8 != 0.
        let p = params(16, 2, 2, 8, 2, 2, 1, 1);
        assert!(p
            .validate()
            .unwrap_err()
            .contains("MDIMAD must divide MDIMCD*NDIMCD"));
    }

    #[test]
    fn invalid_config_fails_as_build_error() {
        let p = params(16, 3, 8, 8, 8, 2, 1, 1); // MDIMCD does not divide WGD
        let err = run(
            DeviceModel::tesla_k20m(),
            &p,
            32,
            32,
            8,
            ExecMode::ModelOnly,
        );
        assert!(matches!(err, Err(ClError::BuildProgramFailure(_))));
    }

    #[test]
    fn local_memory_bound_enforced() {
        // WGD=128: 4*(128*129*2) ≈ 132 KiB > 48 KiB.
        let p = params(128, 8, 8, 8, 8, 2, 1, 1);
        let err = run(
            DeviceModel::tesla_k20m(),
            &p,
            128,
            128,
            8,
            ExecMode::ModelOnly,
        );
        assert!(matches!(err, Err(ClError::OutOfResources(_))));
    }

    #[test]
    fn uncovered_matrix_rejected() {
        // Unpadded (CLTune-style) global size with WGD ∤ m leaves rows
        // uncomputed → the kernel rejects the launch.
        let p = params(16, 8, 8, 8, 8, 2, 1, 1);
        let mut ctx = Context::new(DeviceModel::tesla_k20m());
        let (m, n, k) = (20u64, 32u64, 4u64);
        let ab = ctx.create_buffer_f32(vec![0.0; (m * k) as usize]);
        let bb = ctx.create_buffer_f32(vec![0.0; (k * n) as usize]);
        let cb = ctx.create_buffer_f32(vec![0.0; (m * n) as usize]);
        // m/WGD = 1 tile (truncated) → covers only 16 of 20 rows.
        let launch = Launch::two_d(
            ((m / p.wgd) * p.mdimcd, (n / p.wgd) * p.ndimcd),
            (p.mdimcd, p.ndimcd),
        );
        let err = ctx.enqueue_kernel(
            &XgemmDirectKernel,
            &[
                Scalar::U64(m).into(),
                Scalar::U64(n).into(),
                Scalar::U64(k).into(),
                Scalar::F32(1.0).into(),
                Scalar::F32(0.0).into(),
                ab.into(),
                bb.into(),
                cb.into(),
            ],
            &launch,
            &defines(&p),
            ExecMode::ModelOnly,
        );
        assert!(matches!(err, Err(ClError::InvalidKernelArgs(m)) if m.contains("covers only")));
    }

    #[test]
    fn padding_waste_visible_in_time() {
        // 10×500 with WGD=64 pads to 64×512 — ~6.5× the useful work of
        // WGD=8 (16×504 padding).
        let p_small = params(8, 8, 8, 8, 8, 1, 1, 1);
        let p_big = params(64, 8, 8, 8, 8, 1, 1, 1);
        let (_, t_small) = run(
            DeviceModel::tesla_k20m(),
            &p_small,
            10,
            500,
            64,
            ExecMode::ModelOnly,
        )
        .unwrap();
        let (_, t_big) = run(
            DeviceModel::tesla_k20m(),
            &p_big,
            10,
            500,
            64,
            ExecMode::ModelOnly,
        )
        .unwrap();
        assert!(t_big > 1.5 * t_small, "t_small={t_small}, t_big={t_big}");
    }

    #[test]
    fn unrolling_helps_where_compute_bound() {
        // KWID amortizes k-loop bookkeeping. The kernel is memory/local
        // bound at most sizes, so assert the effect on the compute component
        // of the model's breakdown, and that the total never regresses.
        let p1 = params(32, 8, 8, 8, 8, 1, 1, 1);
        let p8 = params(32, 8, 8, 8, 8, 8, 1, 1);
        for device in [
            DeviceModel::tesla_k20m(),
            DeviceModel::xeon_e5_2640v2_dual(),
        ] {
            let e1 = run_event(device.clone(), &p1, 256, 256, 256).unwrap();
            let e8 = run_event(device, &p8, 256, 256, 256).unwrap();
            assert!(
                e8.breakdown.compute_ns < 0.8 * e1.breakdown.compute_ns,
                "compute: {} vs {}",
                e8.breakdown.compute_ns,
                e1.breakdown.compute_ns
            );
            assert!(e8.duration_ns() <= e1.duration_ns() * 1.001);
        }
    }

    #[test]
    fn padding_flags_matter_on_gpu_only() {
        let mk = |pad| XgemmParams {
            pada: pad,
            padb: pad,
            ..params(32, 8, 8, 8, 8, 2, 1, 1)
        };
        let gpu = DeviceModel::tesla_k20m();
        let cpu = DeviceModel::xeon_e5_2640v2_dual();
        let (_, g_pad) = run(gpu.clone(), &mk(true), 256, 256, 256, ExecMode::ModelOnly).unwrap();
        let (_, g_nopad) = run(gpu, &mk(false), 256, 256, 256, ExecMode::ModelOnly).unwrap();
        assert!(
            g_nopad > 1.2 * g_pad,
            "bank conflicts: {g_nopad} vs {g_pad}"
        );
        let (_, c_pad) = run(cpu.clone(), &mk(true), 256, 256, 256, ExecMode::ModelOnly).unwrap();
        let (_, c_nopad) = run(cpu, &mk(false), 256, 256, 256, ExecMode::ModelOnly).unwrap();
        let ratio = c_nopad / c_pad;
        assert!((0.9..1.1).contains(&ratio), "CPU insensitive: {ratio}");
    }

    #[test]
    fn local_mem_accounting() {
        let p = params(16, 8, 8, 8, 8, 2, 1, 1);
        // padded: 4 * (16*17 + 16*17) = 2176
        assert_eq!(p.local_mem_bytes(), 2176);
        let p2 = XgemmParams {
            pada: false,
            padb: false,
            ..p
        };
        assert_eq!(p2.local_mem_bytes(), 2048);
    }
}
