//! Black-box tests of `atf-tune campaign`: validation and `--dry-run`
//! execute nothing and exit 2 on structural errors, a local campaign
//! writes its summary table and `report.json`, killing the process at any
//! campaign-journal append boundary (deterministically, via the hidden
//! `--kill-after-appends` hook) or with a real SIGKILL mid-run resumes to
//! a byte-identical report, a campaign driven through a hostile chaos
//! proxy matches the fault-free run, and a shed-everything service turns
//! into the documented `overloaded` exit code 3.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

fn atf_tune() -> Command {
    Command::new(env!("CARGO_BIN_EXE_atf-tune"))
}

fn run_with(args: &[&str]) -> Output {
    atf_tune().args(args).output().unwrap()
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().expect("no exit code")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).to_string()
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).to_string()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("atf-cli-campaign-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[cfg(unix)]
fn write_executable(path: &Path, body: &str) {
    use std::io::Write as _;
    let mut f = std::fs::File::create(path).unwrap();
    writeln!(f, "#!/bin/sh\n{body}").unwrap();
    use std::os::unix::fs::PermissionsExt;
    std::fs::set_permissions(path, std::fs::Permissions::from_mode(0o755)).unwrap();
}

/// Writes a two-node campaign (`beta` after `alpha`) into `dir`: each node
/// exhaustively tunes BLOCK in 1..=`end` with its optimum at BLOCK=5, each
/// evaluation sleeps `sleep_secs` (0 = no sleep) and appends a line to
/// `evals.log`. Returns the campaign file path.
#[cfg(unix)]
fn write_campaign(dir: &Path, sleep_secs: &str, end: u64) -> PathBuf {
    let marker = dir.join("evals.log");
    let sleep = if sleep_secs == "0" {
        String::new()
    } else {
        format!("sleep {sleep_secs}\n")
    };
    let source = dir.join("prog.sh");
    write_executable(
        &source,
        &format!(
            "echo x >> {}\n{sleep}B=$ATF_TP_BLOCK\nD=$((B - 5)); [ $D -lt 0 ] && D=$((-D))\n\
             echo $((2 + D)) > \"$ATF_LOG_FILE\"",
            marker.display()
        ),
    );
    let run_sh = dir.join("run.sh");
    write_executable(&run_sh, "sh \"$ATF_SOURCE\"");
    for (node, kernel) in [("na", "camp-alpha"), ("nb", "camp-beta")] {
        let log = dir.join(format!("{node}.log"));
        std::fs::write(
            dir.join(format!("{node}.json")),
            format!(
                r#"{{
                  "program": {{"source": "{}", "run": "{}", "log_file": "{}"}},
                  "parameters": [{{"name": "BLOCK", "interval": {{"begin": 1, "end": {end}}}}}],
                  "search": {{"technique": "exhaustive"}},
                  "kernel_name": "{kernel}"
                }}"#,
                source.display(),
                run_sh.display(),
                log.display()
            ),
        )
        .unwrap();
    }
    let campaign = dir.join("campaign.json");
    std::fs::write(
        &campaign,
        r#"{
          "campaign": "cli-e2e",
          "concurrency": 1,
          "nodes": [
            {"name": "alpha", "spec": "na.json"},
            {"name": "beta", "spec": "nb.json", "after": ["alpha"],
             "on_failure": {"policy": "retry", "retries": 2, "backoff_ms": 10}}
          ]
        }"#,
    )
    .unwrap();
    campaign
}

#[test]
fn campaign_help_exits_zero() {
    for args in [&["help", "campaign"][..], &["campaign", "--help"][..]] {
        let out = run_with(args);
        assert_eq!(exit_code(&out), 0, "{args:?}");
        assert!(
            stdout_of(&out).contains("usage: atf-tune campaign"),
            "{args:?}"
        );
    }
}

/// Structural campaign errors are usage errors (exit 2) with the
/// structured message on stderr — and nothing gets executed or written.
#[test]
fn campaign_validation_errors_exit_two() {
    let dir = fresh_dir("validate-err");

    let cyclic = dir.join("cyclic.json");
    std::fs::write(
        &cyclic,
        r#"{"campaign": "c", "nodes": [
            {"name": "a", "spec": "na.json", "after": ["b"]},
            {"name": "b", "spec": "nb.json", "after": ["a"]}]}"#,
    )
    .unwrap();
    let out = run_with(&["campaign", "validate", cyclic.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2);
    assert!(
        stderr_of(&out).contains("dependency cycle"),
        "{}",
        stderr_of(&out)
    );

    let bad_policy = dir.join("policy.json");
    std::fs::write(
        &bad_policy,
        r#"{"campaign": "c", "nodes": [
            {"name": "a", "spec": "na.json", "on_failure": {"policy": "explode"}}]}"#,
    )
    .unwrap();
    let out = run_with(&["campaign", "validate", bad_policy.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2);
    assert!(stderr_of(&out).contains("explode"), "{}", stderr_of(&out));

    // Valid graph, but the node's tuning spec does not exist: caught by
    // validation, named after the node.
    let missing = dir.join("missing.json");
    std::fs::write(
        &missing,
        r#"{"campaign": "c", "nodes": [{"name": "alpha", "spec": "nowhere.json"}]}"#,
    )
    .unwrap();
    let out = run_with(&["campaign", "validate", missing.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2);
    assert!(stderr_of(&out).contains("alpha"), "{}", stderr_of(&out));

    assert_eq!(exit_code(&run_with(&["campaign"])), 2);
    assert_eq!(
        exit_code(&run_with(&["campaign", "--concurrency", "many", "c.json"])),
        2
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `validate` and `--dry-run` print the plan and run *nothing*: zero
/// evaluations, no state directory, no journals.
#[cfg(unix)]
#[test]
fn campaign_validate_and_dry_run_execute_nothing() {
    let dir = fresh_dir("dry-run");
    let campaign = write_campaign(&dir, "0", 8);
    let path = campaign.to_str().unwrap();

    for args in [
        &["campaign", "validate", path][..],
        &["campaign", "--dry-run", path][..],
    ] {
        let out = run_with(args);
        assert_eq!(exit_code(&out), 0, "{args:?}: {}", stderr_of(&out));
        let report = stdout_of(&out);
        assert!(
            report.contains("campaign is valid; nothing was executed"),
            "{report}"
        );
        assert!(report.contains("order:"), "{report}");
        assert!(report.contains("alpha"), "{report}");
        assert!(report.contains("retry x2"), "{report}");
    }
    assert!(
        !dir.join("evals.log").exists(),
        "validation must not spawn a single evaluation"
    );
    assert!(
        !PathBuf::from(format!("{}.state", campaign.display())).exists(),
        "validation must not create campaign state"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A local two-node campaign completes with exit 0, prints the summary
/// table, and leaves a parseable `report.json` in the state directory.
#[cfg(unix)]
#[test]
fn campaign_runs_locally_and_writes_the_report() {
    let dir = fresh_dir("local");
    let campaign = write_campaign(&dir, "0", 8);
    let state = dir.join("state");
    let out = run_with(&[
        "campaign",
        "--state-dir",
        state.to_str().unwrap(),
        campaign.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr_of(&out));
    let table = stdout_of(&out);
    assert!(table.contains("alpha"), "{table}");
    assert!(table.contains("beta"), "{table}");
    assert!(table.contains("completed"), "{table}");
    assert!(table.contains("total: 16 evaluations"), "{table}");

    let body = std::fs::read_to_string(state.join("report.json")).unwrap();
    let report: atf_core::campaign::CampaignReport = serde_json::from_str(body.trim()).unwrap();
    assert_eq!(report.campaign, "cli-e2e");
    assert_eq!(report.total_evaluations, 16);
    assert!(!report.budget_exhausted);
    for node in &report.nodes {
        assert_eq!(node.outcome, "completed");
        assert_eq!(node.attempts, 1);
        assert_eq!(node.evaluations, 8);
        assert_eq!(node.best_cost, Some(2.0), "optimum is BLOCK=5 at cost 2");
        assert_eq!(node.best_config.len(), 1);
        assert_eq!(node.best_config[0].name, "BLOCK");
        assert_eq!(node.best_config[0].value, "5");
    }
    let evals = std::fs::read_to_string(dir.join("evals.log"))
        .unwrap()
        .lines()
        .count();
    assert_eq!(evals, 16, "each configuration measured exactly once");
    std::fs::remove_dir_all(&dir).ok();
}

/// Deterministic crash coverage: die at *every* campaign-journal append
/// boundary (the hidden `--kill-after-appends` hook leaves on-disk state
/// exactly as SIGKILL would), resume, and get a `report.json` that is
/// byte-identical to the uninterrupted run's.
#[cfg(unix)]
#[test]
fn campaign_killed_at_every_append_boundary_resumes_bit_identically() {
    let dir = fresh_dir("kill-appends");
    let campaign = write_campaign(&dir, "0", 8);
    let path = campaign.to_str().unwrap();

    let base_state = dir.join("state-base");
    let baseline = run_with(&[
        "campaign",
        "--state-dir",
        base_state.to_str().unwrap(),
        path,
    ]);
    assert_eq!(exit_code(&baseline), 0, "stderr: {}", stderr_of(&baseline));
    let baseline_report = std::fs::read_to_string(base_state.join("report.json")).unwrap();

    // The uninterrupted run appends 4 entries (started/finished × 2 nodes).
    for kill in 0..4u64 {
        let state = dir.join(format!("state-kill-{kill}"));
        let state_str = state.to_str().unwrap().to_string();
        let killed = run_with(&[
            "campaign",
            "--state-dir",
            &state_str,
            "--kill-after-appends",
            &kill.to_string(),
            path,
        ]);
        assert_eq!(exit_code(&killed), 1, "kill point {kill} must die fatally");
        assert!(
            stderr_of(&killed).contains("campaign run died"),
            "kill {kill}: {}",
            stderr_of(&killed)
        );
        assert!(state.join("campaign.journal").exists(), "kill {kill}");
        assert!(
            !state.join("report.json").exists(),
            "kill {kill}: no torn report"
        );

        let resumed = run_with(&["campaign", "--state-dir", &state_str, "--resume", path]);
        assert_eq!(
            exit_code(&resumed),
            0,
            "kill {kill} resume stderr: {}",
            stderr_of(&resumed)
        );
        let report = std::fs::read_to_string(state.join("report.json")).unwrap();
        assert_eq!(report, baseline_report, "kill point {kill}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The real thing: SIGKILL the campaign process mid-run, `--resume`, and
/// the final report is byte-identical to the uninterrupted run's.
#[cfg(unix)]
#[test]
fn campaign_sigkilled_mid_run_resumes_from_its_journal() {
    let dir = fresh_dir("sigkill");
    let campaign = write_campaign(&dir, "0.05", 12);
    let path = campaign.to_str().unwrap();

    let base_state = dir.join("state-base");
    let baseline = run_with(&[
        "campaign",
        "--state-dir",
        base_state.to_str().unwrap(),
        path,
    ]);
    assert_eq!(exit_code(&baseline), 0, "stderr: {}", stderr_of(&baseline));
    let baseline_report = std::fs::read_to_string(base_state.join("report.json")).unwrap();

    let state = dir.join("state-killed");
    let state_str = state.to_str().unwrap().to_string();
    let mut victim = atf_tune()
        .args(["campaign", "--state-dir", &state_str, path])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // 24 evaluations of ≥50 ms each: the kill lands mid-flight.
    std::thread::sleep(std::time::Duration::from_millis(600));
    Command::new("kill")
        .args(["-KILL", &victim.id().to_string()])
        .status()
        .unwrap();
    let status = victim.wait().unwrap();
    assert!(!status.success(), "the victim must die by signal");
    assert!(
        state.join("campaign.journal").exists(),
        "no campaign journal left behind"
    );
    assert!(
        !state.join("report.json").exists(),
        "a killed campaign leaves no report"
    );

    let resumed = run_with(&["campaign", "--state-dir", &state_str, "--resume", path]);
    assert_eq!(exit_code(&resumed), 0, "stderr: {}", stderr_of(&resumed));
    let report = std::fs::read_to_string(state.join("report.json")).unwrap();
    assert_eq!(report, baseline_report);
    std::fs::remove_dir_all(&dir).ok();
}

/// Spawns an in-process tuning service and returns the pieces needed to
/// drive and shut it down.
#[cfg(unix)]
fn spawn_service(
    config: atf_service::ManagerConfig,
) -> (
    std::net::SocketAddr,
    atf_service::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let manager = std::sync::Arc::new(atf_service::SessionManager::new(config).unwrap());
    let server = atf_service::Server::bind("127.0.0.1:0", manager).unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());
    (addr, shutdown, thread)
}

/// A service-mode campaign driven through a hostile chaos proxy produces
/// a report byte-identical to the fault-free run against the same server:
/// idempotent resends keep every evaluation exactly-once, and transient
/// sheds are absorbed by the `retry_after_ms`-aware transport retries.
#[cfg(unix)]
#[test]
fn campaign_through_a_chaos_proxy_matches_the_fault_free_run() {
    let dir = fresh_dir("chaos");
    let campaign = write_campaign(&dir, "0", 8);
    let path = campaign.to_str().unwrap();
    let (addr, shutdown, server_thread) = spawn_service(atf_service::ManagerConfig::default());

    let direct_state = dir.join("state-direct");
    let direct = run_with(&[
        "campaign",
        "--addr",
        &addr.to_string(),
        "--state-dir",
        direct_state.to_str().unwrap(),
        path,
    ]);
    assert_eq!(exit_code(&direct), 0, "stderr: {}", stderr_of(&direct));
    let direct_report = std::fs::read_to_string(direct_state.join("report.json")).unwrap();

    let mut plan = atf_service::ChaosPlan::hostile(0x7c9_c4a05);
    plan.delay_by = std::time::Duration::from_millis(1);
    let mut proxy = atf_service::ChaosProxy::spawn(addr, plan).unwrap();
    let chaos_state = dir.join("state-chaos");
    let chaotic = run_with(&[
        "campaign",
        "--addr",
        &proxy.addr().to_string(),
        "--retries",
        "40",
        "--backoff-ms",
        "1",
        "--state-dir",
        chaos_state.to_str().unwrap(),
        path,
    ]);
    assert_eq!(exit_code(&chaotic), 0, "stderr: {}", stderr_of(&chaotic));
    let chaos_report = std::fs::read_to_string(chaos_state.join("report.json")).unwrap();
    assert_eq!(chaos_report, direct_report);
    assert!(
        proxy.counters().total() > 0,
        "the proxy must actually inject faults"
    );

    proxy.stop();
    shutdown.signal();
    server_thread.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A service that sheds everything (zero session slots) turns into the
/// documented campaign exit code 3: the shed node is recorded
/// `overloaded` — a capacity verdict, not a failure (which would exit 1).
#[cfg(unix)]
#[test]
fn campaign_shed_after_retries_exits_three() {
    let dir = fresh_dir("overloaded");
    let campaign = write_campaign(&dir, "0", 8);
    let (addr, shutdown, server_thread) = spawn_service(atf_service::ManagerConfig {
        admission: atf_service::AdmissionConfig {
            max_sessions: Some(0),
            retry_after: std::time::Duration::from_millis(1),
            ..atf_service::AdmissionConfig::default()
        },
        ..atf_service::ManagerConfig::default()
    });

    let state = dir.join("state");
    let out = run_with(&[
        "campaign",
        "--addr",
        &addr.to_string(),
        "--backoff-ms",
        "1",
        "--state-dir",
        state.to_str().unwrap(),
        campaign.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 3, "stderr: {}", stderr_of(&out));
    assert!(
        stdout_of(&out).contains("overloaded"),
        "{}",
        stdout_of(&out)
    );

    shutdown.signal();
    server_thread.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
