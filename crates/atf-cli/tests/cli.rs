//! Black-box tests of the `atf-tune` binary: documented exit codes
//! (0 success, 1 tuning failure, 2 usage error), per-subcommand usage
//! text, and the serve/client pair end to end across real processes.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Output, Stdio};

fn atf_tune() -> Command {
    Command::new(env!("CARGO_BIN_EXE_atf-tune"))
}

fn run_with(args: &[&str]) -> Output {
    atf_tune().args(args).output().unwrap()
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().expect("no exit code")
}

#[test]
fn no_args_is_a_usage_error() {
    let out = run_with(&[]);
    assert_eq!(exit_code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: atf-tune"));
}

#[test]
fn help_exits_zero() {
    for args in [
        &["--help"][..],
        &["-h"][..],
        &["help"][..],
        &["help", "run"][..],
        &["help", "serve"][..],
        &["help", "client"][..],
        &["run", "--help"][..],
        &["serve", "--help"][..],
        &["client", "--help"][..],
    ] {
        let out = run_with(args);
        assert_eq!(exit_code(&out), 0, "{args:?} should exit 0");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("usage:"),
            "{args:?} should print usage to stdout"
        );
    }
    let serve_help = run_with(&["help", "serve"]);
    assert!(String::from_utf8_lossy(&serve_help.stdout).contains("--addr"));
}

#[test]
fn bad_inputs_are_usage_errors() {
    // Unknown flag, missing spec, unreadable spec, bad flag value.
    assert_eq!(exit_code(&run_with(&["--wat"])), 2);
    assert_eq!(exit_code(&run_with(&["run"])), 2);
    assert_eq!(exit_code(&run_with(&["run", "/nonexistent/spec.json"])), 2);
    assert_eq!(exit_code(&run_with(&["serve", "--idle-secs", "soon"])), 2);
    assert_eq!(exit_code(&run_with(&["serve", "--addr"])), 2);
    assert_eq!(exit_code(&run_with(&["client"])), 2);
    assert_eq!(exit_code(&run_with(&["client", "a.json", "b.json"])), 2);
    // Fault-tolerance flags: --resume needs --journal, values must parse.
    assert_eq!(exit_code(&run_with(&["run", "--resume", "s.json"])), 2);
    assert_eq!(
        exit_code(&run_with(&["run", "--timeout", "-3", "s.json"])),
        2
    );
    assert_eq!(
        exit_code(&run_with(&["run", "--retries", "many", "s.json"])),
        2
    );
    assert_eq!(
        exit_code(&run_with(&["serve", "--eval-deadline-secs", "soon"])),
        2
    );
}

#[cfg(unix)]
fn write_executable(path: &std::path::Path, body: &str) {
    let mut f = std::fs::File::create(path).unwrap();
    writeln!(f, "#!/bin/sh\n{body}").unwrap();
    use std::os::unix::fs::PermissionsExt;
    std::fs::set_permissions(path, std::fs::Permissions::from_mode(0o755)).unwrap();
}

/// A tuning failure (empty search space) exits 1, not 2.
#[cfg(unix)]
#[test]
fn tuning_failure_exits_one() {
    let dir = std::env::temp_dir().join(format!("atf-cli-bin-fail-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("prog.sh");
    write_executable(&source, "true");
    let run_sh = dir.join("run.sh");
    write_executable(&run_sh, "sh \"$ATF_SOURCE\"");
    let spec_path = dir.join("spec.json");
    std::fs::write(
        &spec_path,
        format!(
            r#"{{
              "program": {{"source": "{}", "run": "{}"}},
              "parameters": [{{"name": "X", "set": [2, 4], "constraint": "less_than(1)"}}]
            }}"#,
            source.display(),
            run_sh.display()
        ),
    )
    .unwrap();
    let out = run_with(&["run", spec_path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1);
    assert!(String::from_utf8_lossy(&out.stderr).contains("tuning failed"));
    std::fs::remove_dir_all(&dir).ok();
}

/// serve + client across real processes: tune remotely, look the result
/// up, then stop the server with SIGINT and see it exit cleanly.
#[cfg(unix)]
#[test]
fn serve_and_client_end_to_end() {
    let dir = std::env::temp_dir().join(format!("atf-cli-bin-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("cost.log");
    let source = dir.join("prog.sh");
    write_executable(
        &source,
        &format!(
            "B=$ATF_TP_BLOCK\nD=$((B - 12)); [ $D -lt 0 ] && D=$((-D))\necho $((3 + D)) > {}",
            log.display()
        ),
    );
    let run_sh = dir.join("run.sh");
    write_executable(&run_sh, "sh \"$ATF_SOURCE\"");
    let spec_path = dir.join("spec.json");
    std::fs::write(
        &spec_path,
        format!(
            r#"{{
              "program": {{"source": "{}", "run": "{}", "log_file": "{}"}},
              "parameters": [{{"name": "BLOCK", "interval": {{"begin": 8, "end": 16}}}}],
              "search": {{"technique": "exhaustive"}},
              "kernel_name": "bin-e2e"
            }}"#,
            source.display(),
            run_sh.display(),
            log.display()
        ),
    )
    .unwrap();
    let db_path = dir.join("db.json");

    // Start the service on an ephemeral port; its first stderr line
    // announces the bound address.
    let mut server = atf_tune()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--db",
            db_path.to_str().unwrap(),
        ])
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut server_stderr = BufReader::new(server.stderr.take().unwrap());
    let mut banner = String::new();
    server_stderr.read_line(&mut banner).unwrap();
    let addr = banner
        .split("serving on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner:?}"))
        .to_string();

    let tuned = run_with(&["client", "--addr", &addr, spec_path.to_str().unwrap()]);
    assert_eq!(
        exit_code(&tuned),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&tuned.stderr)
    );
    let report = String::from_utf8_lossy(&tuned.stdout).to_string();
    assert!(report.contains("BLOCK=12"), "report: {report}");
    assert!(report.contains("best cost:    3"), "report: {report}");

    let hit = run_with(&["client", "--addr", &addr, "--lookup", "bin-e2e"]);
    assert_eq!(exit_code(&hit), 0);
    let hit_report = String::from_utf8_lossy(&hit.stdout).to_string();
    assert!(hit_report.contains("BLOCK=12"), "report: {hit_report}");
    assert!(
        hit_report.contains("served from:  database"),
        "report: {hit_report}"
    );

    let miss = run_with(&["client", "--addr", &addr, "--lookup", "never-tuned"]);
    assert_eq!(exit_code(&miss), 1);

    // Graceful shutdown on SIGINT.
    let kill = Command::new("kill")
        .args(["-INT", &server.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());
    let status = server.wait().unwrap();
    assert!(status.success(), "server exit: {status:?}");
    assert!(db_path.exists(), "database not persisted");
    std::fs::remove_dir_all(&dir).ok();
}

/// Writes a slow deterministic tuning spec into `dir`: each evaluation
/// sleeps `sleep_secs`, then reports a cost with its optimum at BLOCK=9.
#[cfg(unix)]
fn write_slow_spec(dir: &std::path::Path, kernel: &str, sleep_secs: &str) -> std::path::PathBuf {
    let log = dir.join("cost.log");
    let source = dir.join("prog.sh");
    write_executable(
        &source,
        &format!(
            "sleep {sleep_secs}\nB=$ATF_TP_BLOCK\nD=$((B - 9)); [ $D -lt 0 ] && D=$((-D))\necho $((2 + D)) > {}",
            log.display()
        ),
    );
    let run_sh = dir.join("run.sh");
    write_executable(&run_sh, "sh \"$ATF_SOURCE\"");
    let spec_path = dir.join("spec.json");
    std::fs::write(
        &spec_path,
        format!(
            r#"{{
              "program": {{"source": "{}", "run": "{}", "log_file": "{}"}},
              "parameters": [{{"name": "BLOCK", "interval": {{"begin": 1, "end": 12}}}}],
              "search": {{"technique": "exhaustive"}},
              "kernel_name": "{kernel}"
            }}"#,
            source.display(),
            run_sh.display(),
            log.display()
        ),
    )
    .unwrap();
    spec_path
}

/// The line `best config:  ...` of a report, normalized across the local
/// (`{BLOCK=9}`) and remote (`BLOCK=9`) renderings.
fn best_config_line(report: &str) -> String {
    report
        .lines()
        .find(|l| l.starts_with("best config:"))
        .unwrap_or_else(|| panic!("no best config in report: {report}"))
        .replace(['{', '}'], "")
}

/// A `run` killed with SIGKILL mid-flight leaves a replayable journal;
/// `run --resume` continues it and reproduces the uninterrupted run's best
/// configuration.
#[cfg(unix)]
#[test]
fn run_killed_mid_run_resumes_from_the_journal() {
    let dir = std::env::temp_dir().join(format!("atf-cli-bin-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = write_slow_spec(&dir, "kill-resume", "0.1");
    let spec = spec_path.to_str().unwrap();
    let journal = dir.join("run.ndjson");
    let journal_str = journal.to_str().unwrap().to_string();

    // Reference: the uninterrupted run.
    let reference = run_with(&["run", spec]);
    assert_eq!(
        exit_code(&reference),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&reference.stderr)
    );
    let reference_best = best_config_line(&String::from_utf8_lossy(&reference.stdout));

    // Journaled run, hard-killed mid-flight (12 evaluations of ≥0.1 s
    // each; the kill lands a few evaluations in).
    let mut victim = atf_tune()
        .args(["run", "--journal", &journal_str, spec])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(600));
    Command::new("kill")
        .args(["-KILL", &victim.id().to_string()])
        .status()
        .unwrap();
    let status = victim.wait().unwrap();
    assert!(!status.success(), "the victim must die by signal");
    assert!(journal.exists(), "no journal left behind");
    let journaled_entries = std::fs::read_to_string(&journal)
        .unwrap()
        .lines()
        .count()
        .saturating_sub(1); // header line

    // Resume and finish; the result matches the uninterrupted run.
    let resumed = run_with(&["run", "--journal", &journal_str, "--resume", spec]);
    assert_eq!(
        exit_code(&resumed),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let report = String::from_utf8_lossy(&resumed.stdout).to_string();
    assert_eq!(best_config_line(&report), reference_best);
    if journaled_entries > 0 {
        assert!(
            report.contains("resumed:"),
            "{journaled_entries} journaled evaluations should be replayed; report: {report}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Spawns `atf-tune serve` with the given extra flags on an ephemeral port
/// and returns the child, the address it announced, and its stderr reader
/// (which must stay alive: dropping it closes the pipe and later server
/// log lines would fail).
#[cfg(unix)]
fn spawn_server(
    extra: &[&str],
) -> (
    std::process::Child,
    String,
    BufReader<std::process::ChildStderr>,
) {
    let mut cmd = atf_tune();
    cmd.args(["serve", "--addr", "127.0.0.1:0"]);
    cmd.args(extra);
    let mut server = cmd.stderr(Stdio::piped()).spawn().unwrap();
    let mut stderr = BufReader::new(server.stderr.take().unwrap());
    let mut banner = String::new();
    stderr.read_line(&mut banner).unwrap();
    let addr = banner
        .split("serving on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner:?}"))
        .to_string();
    (server, addr, stderr)
}

/// A `serve` process killed with SIGKILL mid-session leaves its per-key
/// journal behind; a restarted server resumes the session from it when the
/// client reopens with `--resume`, reproducing the uninterrupted result.
#[cfg(unix)]
#[test]
fn serve_killed_mid_session_resumes_from_its_journal_dir() {
    let dir = std::env::temp_dir().join(format!("atf-cli-bin-srv-resume-{}", std::process::id()));
    let journal_dir = dir.join("journals");
    std::fs::create_dir_all(&journal_dir).unwrap();
    let spec_path = write_slow_spec(&dir, "srv-resume", "0.1");
    let spec = spec_path.to_str().unwrap();
    let jd = journal_dir.to_str().unwrap().to_string();

    // Reference: the same spec tuned locally (same technique, same space).
    let reference = run_with(&["run", spec]);
    assert_eq!(exit_code(&reference), 0);
    let reference_best = best_config_line(&String::from_utf8_lossy(&reference.stdout));

    // First server: hard-killed while a client session is mid-flight.
    let (mut server_a, addr_a, _stderr_a) = spawn_server(&["--journal-dir", &jd]);
    let mut client_a = atf_tune()
        .args(["client", "--addr", &addr_a, spec])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(800));
    Command::new("kill")
        .args(["-KILL", &server_a.id().to_string()])
        .status()
        .unwrap();
    server_a.wait().unwrap();
    // The client loses its server and fails; that's the point.
    let client_status = client_a.wait().unwrap();
    assert!(
        !client_status.success(),
        "client should fail when the server dies"
    );

    let journaled_entries: usize = std::fs::read_dir(&journal_dir)
        .unwrap()
        .filter_map(|e| std::fs::read_to_string(e.unwrap().path()).ok())
        .map(|text| text.lines().count().saturating_sub(1))
        .sum();

    // Second server over the same journal dir: `--resume` continues the
    // interrupted session instead of starting over.
    let (mut server_b, addr_b, _stderr_b) = spawn_server(&["--journal-dir", &jd]);
    let resumed = run_with(&["client", "--addr", &addr_b, "--resume", spec]);
    assert_eq!(
        exit_code(&resumed),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let report = String::from_utf8_lossy(&resumed.stdout).to_string();
    assert_eq!(best_config_line(&report), reference_best);
    if journaled_entries > 0 {
        assert!(
            report.contains("resumed:"),
            "{journaled_entries} journaled evaluations should be replayed; report: {report}"
        );
    }

    Command::new("kill")
        .args(["-INT", &server_b.id().to_string()])
        .status()
        .unwrap();
    assert!(server_b.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}

/// The ISSUE's observability acceptance run: a seeded 4-worker tuning run
/// with `--trace` and `--metrics` writes an NDJSON stream where every
/// line parses as a known trace event, the stream covers the whole
/// lifecycle (space_gen, handout, report, eval, proc, abort), and the
/// report ends with the metrics summary table.
#[cfg(unix)]
#[test]
fn run_with_trace_and_metrics_emits_parseable_events() {
    let dir = std::env::temp_dir().join(format!("atf-cli-bin-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("prog.sh");
    write_executable(
        &source,
        "B=$ATF_TP_BLOCK\nD=$((B - 12)); [ $D -lt 0 ] && D=$((-D))\necho $((3 + D)) > \"$ATF_LOG_FILE\"",
    );
    let run_sh = dir.join("run.sh");
    write_executable(&run_sh, "sh \"$ATF_SOURCE\"");
    let log = dir.join("cost.log");
    let spec_path = dir.join("spec.json");
    std::fs::write(
        &spec_path,
        format!(
            r#"{{
              "program": {{"source": "{}", "run": "{}", "log_file": "{}"}},
              "parameters": [{{"name": "BLOCK", "interval": {{"begin": 8, "end": 16}}}}],
              "search": {{"technique": "exhaustive"}}
            }}"#,
            source.display(),
            run_sh.display(),
            log.display()
        ),
    )
    .unwrap();

    let trace_path = dir.join("t.ndjson");
    let out = run_with(&[
        "run",
        "--workers",
        "4",
        "--trace",
        trace_path.to_str().unwrap(),
        "--metrics",
        spec_path.to_str().unwrap(),
    ]);
    assert_eq!(
        exit_code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Every trace line is a JSON object with a known `event` kind.
    let body = std::fs::read_to_string(&trace_path).unwrap();
    assert!(!body.is_empty(), "trace file must not be empty");
    let mut kinds = std::collections::BTreeSet::new();
    for line in body.lines() {
        let event: atf_core::trace::TraceEvent = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
        assert!(
            atf_core::trace::EVENT_KINDS.contains(&event.event.as_str()),
            "unknown event kind in {line:?}"
        );
        kinds.insert(event.event.clone());
    }
    for required in ["space_gen", "handout", "report", "eval", "proc", "abort"] {
        assert!(
            kinds.contains(required),
            "trace missing `{required}` events; got {kinds:?}"
        );
    }

    // The report carries the run result AND the metrics summary table.
    let report = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(report.contains("BLOCK=12"), "report: {report}");
    assert!(report.contains("evaluations"), "report: {report}");
    assert!(report.contains("eval latency"), "report: {report}");
    assert!(report.contains("workers"), "report: {report}");
    std::fs::remove_dir_all(&dir).ok();
}
