//! Black-box tests of the `atf-tune` binary: documented exit codes
//! (0 success, 1 tuning failure, 2 usage error), per-subcommand usage
//! text, and the serve/client pair end to end across real processes.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Output, Stdio};

fn atf_tune() -> Command {
    Command::new(env!("CARGO_BIN_EXE_atf-tune"))
}

fn run_with(args: &[&str]) -> Output {
    atf_tune().args(args).output().unwrap()
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().expect("no exit code")
}

#[test]
fn no_args_is_a_usage_error() {
    let out = run_with(&[]);
    assert_eq!(exit_code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: atf-tune"));
}

#[test]
fn help_exits_zero() {
    for args in [
        &["--help"][..],
        &["-h"][..],
        &["help"][..],
        &["help", "run"][..],
        &["help", "serve"][..],
        &["help", "client"][..],
        &["run", "--help"][..],
        &["serve", "--help"][..],
        &["client", "--help"][..],
    ] {
        let out = run_with(args);
        assert_eq!(exit_code(&out), 0, "{args:?} should exit 0");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("usage:"),
            "{args:?} should print usage to stdout"
        );
    }
    let serve_help = run_with(&["help", "serve"]);
    assert!(String::from_utf8_lossy(&serve_help.stdout).contains("--addr"));
}

#[test]
fn bad_inputs_are_usage_errors() {
    // Unknown flag, missing spec, unreadable spec, bad flag value.
    assert_eq!(exit_code(&run_with(&["--wat"])), 2);
    assert_eq!(exit_code(&run_with(&["run"])), 2);
    assert_eq!(exit_code(&run_with(&["run", "/nonexistent/spec.json"])), 2);
    assert_eq!(exit_code(&run_with(&["serve", "--idle-secs", "soon"])), 2);
    assert_eq!(exit_code(&run_with(&["serve", "--addr"])), 2);
    assert_eq!(exit_code(&run_with(&["client"])), 2);
    assert_eq!(exit_code(&run_with(&["client", "a.json", "b.json"])), 2);
}

#[cfg(unix)]
fn write_executable(path: &std::path::Path, body: &str) {
    let mut f = std::fs::File::create(path).unwrap();
    writeln!(f, "#!/bin/sh\n{body}").unwrap();
    use std::os::unix::fs::PermissionsExt;
    std::fs::set_permissions(path, std::fs::Permissions::from_mode(0o755)).unwrap();
}

/// A tuning failure (empty search space) exits 1, not 2.
#[cfg(unix)]
#[test]
fn tuning_failure_exits_one() {
    let dir = std::env::temp_dir().join(format!("atf-cli-bin-fail-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("prog.sh");
    write_executable(&source, "true");
    let run_sh = dir.join("run.sh");
    write_executable(&run_sh, "sh \"$ATF_SOURCE\"");
    let spec_path = dir.join("spec.json");
    std::fs::write(
        &spec_path,
        format!(
            r#"{{
              "program": {{"source": "{}", "run": "{}"}},
              "parameters": [{{"name": "X", "set": [2, 4], "constraint": "less_than(1)"}}]
            }}"#,
            source.display(),
            run_sh.display()
        ),
    )
    .unwrap();
    let out = run_with(&["run", spec_path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1);
    assert!(String::from_utf8_lossy(&out.stderr).contains("tuning failed"));
    std::fs::remove_dir_all(&dir).ok();
}

/// serve + client across real processes: tune remotely, look the result
/// up, then stop the server with SIGINT and see it exit cleanly.
#[cfg(unix)]
#[test]
fn serve_and_client_end_to_end() {
    let dir = std::env::temp_dir().join(format!("atf-cli-bin-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("cost.log");
    let source = dir.join("prog.sh");
    write_executable(
        &source,
        &format!(
            "B=$ATF_TP_BLOCK\nD=$((B - 12)); [ $D -lt 0 ] && D=$((-D))\necho $((3 + D)) > {}",
            log.display()
        ),
    );
    let run_sh = dir.join("run.sh");
    write_executable(&run_sh, "sh \"$ATF_SOURCE\"");
    let spec_path = dir.join("spec.json");
    std::fs::write(
        &spec_path,
        format!(
            r#"{{
              "program": {{"source": "{}", "run": "{}", "log_file": "{}"}},
              "parameters": [{{"name": "BLOCK", "interval": {{"begin": 8, "end": 16}}}}],
              "search": {{"technique": "exhaustive"}},
              "kernel_name": "bin-e2e"
            }}"#,
            source.display(),
            run_sh.display(),
            log.display()
        ),
    )
    .unwrap();
    let db_path = dir.join("db.json");

    // Start the service on an ephemeral port; its first stderr line
    // announces the bound address.
    let mut server = atf_tune()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--db",
            db_path.to_str().unwrap(),
        ])
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut server_stderr = BufReader::new(server.stderr.take().unwrap());
    let mut banner = String::new();
    server_stderr.read_line(&mut banner).unwrap();
    let addr = banner
        .split("serving on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner:?}"))
        .to_string();

    let tuned = run_with(&["client", "--addr", &addr, spec_path.to_str().unwrap()]);
    assert_eq!(
        exit_code(&tuned),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&tuned.stderr)
    );
    let report = String::from_utf8_lossy(&tuned.stdout).to_string();
    assert!(report.contains("BLOCK=12"), "report: {report}");
    assert!(report.contains("best cost:    3"), "report: {report}");

    let hit = run_with(&["client", "--addr", &addr, "--lookup", "bin-e2e"]);
    assert_eq!(exit_code(&hit), 0);
    let hit_report = String::from_utf8_lossy(&hit.stdout).to_string();
    assert!(hit_report.contains("BLOCK=12"), "report: {hit_report}");
    assert!(
        hit_report.contains("served from:  database"),
        "report: {hit_report}"
    );

    let miss = run_with(&["client", "--addr", &addr, "--lookup", "never-tuned"]);
    assert_eq!(exit_code(&miss), 1);

    // Graceful shutdown on SIGINT.
    let kill = Command::new("kill")
        .args(["-INT", &server.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());
    let status = server.wait().unwrap();
    assert!(status.success(), "server exit: {status:?}");
    assert!(db_path.exists(), "database not persisted");
    std::fs::remove_dir_all(&dir).ok();
}
