//! Campaign execution for the CLI: node executors (local and
//! service-mode), campaign-file loading/validation, the state directory
//! layout, and report rendering.
//!
//! Layout under the state directory (default `<campaign file>.state/`):
//!
//! ```text
//! campaign.journal       the campaign's write-ahead log
//! <node>.run.journal     each local node's per-run journal (+ checkpoint)
//! report.json            the final report, written atomically
//! ```
//!
//! Crash-safety split: the campaign journal records node lifecycles
//! (`started` / `attempt_failed` / `finished`); each node's evaluation
//! stream lives in its own run journal. On resume, finished nodes are
//! restored verbatim from the campaign journal alone; a node that was in
//! flight replays its run journal through the normal session resume path.

use crate::{
    run_remote_with, run_with, CliError, CliOutcome, RunOptions, TuningSpec,
    DEFAULT_RECONNECT_BACKOFF,
};
use atf_core::campaign::{
    self, outcome, CampaignPlan, CampaignReport, CampaignSpec, ConfigValue, NodeContext, NodeError,
    NodeExecutor, NodeRun, NodeSpec, RunConfig,
};
use atf_core::journal;
use atf_core::trace::{FileSink, NullSink, TraceSink};
use atf_core::tuner::TuningError;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Options for `atf-tune campaign`.
#[derive(Clone, Debug, Default)]
pub struct CampaignOptions {
    /// State directory (campaign journal, per-node run journals, report);
    /// default `<campaign file>.state/`.
    pub state_dir: Option<PathBuf>,
    /// Resume from the campaign journal when it exists.
    pub resume: bool,
    /// Run nodes against this service address instead of locally.
    pub addr: Option<String>,
    /// Per-node run options (timeout, retries, workers, ...). The
    /// campaign supplies `journal`, `resume`, and `campaign` per node.
    pub node_opts: RunOptions,
    /// Structured trace file for campaign events (plus each local node's
    /// session events).
    pub trace: Option<PathBuf>,
    /// Override the campaign file's `concurrency`.
    pub concurrency: Option<usize>,
    /// Chaos hook (hidden `--kill-after-appends` flag): die fatally after
    /// this many campaign-journal appends, leaving on-disk state exactly
    /// as SIGKILL would — the deterministic half of crash testing.
    pub kill_after_appends: Option<u64>,
}

fn spec_err(e: campaign::CampaignError) -> CliError {
    CliError::Spec(e.to_string())
}

/// Loads and fully validates a campaign file: graph structure (duplicate
/// names, unknown references, cycles, policies) *and* every node's tuning
/// spec (existence, parameters, constraint strings, technique) — all
/// before anything executes. Returns the plan and the campaign file's
/// content hash (the journal identity).
pub fn load_campaign(
    path: &Path,
    concurrency: Option<usize>,
) -> Result<(CampaignPlan, String), CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Spec(format!("{}: {e}", path.display())))?;
    let mut spec = CampaignSpec::from_json(&text).map_err(spec_err)?;
    if let Some(c) = concurrency {
        spec.concurrency = Some(c);
    }
    let plan = campaign::validate(&spec).map_err(spec_err)?;
    let base = path.parent().unwrap_or(Path::new("."));
    for node in &plan.spec.nodes {
        let tuning = TuningSpec::load(base.join(&node.spec))
            .map_err(|e| CliError::Spec(format!("node `{}`: {e}", node.name)))?;
        tuning
            .build_params()
            .map_err(|e| CliError::Spec(format!("node `{}`: {e}", node.name)))?;
        tuning
            .build_technique()
            .map_err(|e| CliError::Spec(format!("node `{}`: {e}", node.name)))?;
    }
    Ok((plan, journal::content_hash(&text)))
}

/// The default state directory for a campaign file: a `.state` sibling.
pub fn default_state_dir(path: &Path) -> PathBuf {
    PathBuf::from(format!("{}.state", path.display()))
}

/// A node name as a safe file stem for its run-journal path.
fn file_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn sorted_config(pairs: impl Iterator<Item = (String, String)>) -> Vec<ConfigValue> {
    let mut config: Vec<ConfigValue> = pairs
        .map(|(name, value)| ConfigValue { name, value })
        .collect();
    config.sort_by(|a, b| a.name.cmp(&b.name));
    config
}

fn node_run_from_outcome(o: &CliOutcome) -> NodeRun {
    NodeRun {
        evaluations: o.result.evaluations,
        best_cost: o.result.best_cost.first().copied(),
        best_config: sorted_config(
            o.result
                .best_config
                .iter()
                .map(|(n, v)| (n.to_string(), v.to_string())),
        ),
    }
}

/// Runs campaign nodes in this process through [`run_with`]: each node
/// gets its own run journal under the state directory, wired to the
/// campaign's budget/cancel hooks.
pub struct LocalExecutor {
    /// Node spec paths resolve relative to the campaign file.
    pub base_dir: PathBuf,
    /// Where per-node run journals live.
    pub state_dir: PathBuf,
    /// Base per-node options.
    pub opts: RunOptions,
}

impl NodeExecutor for LocalExecutor {
    fn execute(&self, node: &NodeSpec, ctx: &NodeContext) -> Result<NodeRun, NodeError> {
        let spec = TuningSpec::load(self.base_dir.join(&node.spec))
            .map_err(|e| NodeError::Failed(e.to_string()))?;
        let run_journal = self
            .state_dir
            .join(format!("{}.run.journal", file_stem(&node.name)));
        if !ctx.resume {
            // A fresh attempt (first try, or a retry after a failure) must
            // not resume the previous attempt's journal.
            let _ = std::fs::remove_file(&run_journal);
            let _ = std::fs::remove_file(journal::checkpoint_path(&run_journal));
        }
        let mut opts = self.opts.clone();
        opts.journal = Some(run_journal.clone());
        opts.resume = ctx.resume && run_journal.exists();
        opts.campaign = Some(ctx.hooks.clone());
        match run_with(&spec, &opts) {
            Ok(outcome) => Ok(node_run_from_outcome(&outcome)),
            // Cut by the budget or a campaign abort before anything valid
            // was measured: a campaign verdict, not a node failure.
            Err(CliError::Tuning(TuningError::NoValidConfiguration { evaluations }))
                if ctx.hooks.budget_fired() || ctx.hooks.cancel_fired() =>
            {
                Ok(NodeRun {
                    evaluations,
                    best_cost: None,
                    best_config: Vec::new(),
                })
            }
            Err(CliError::Overloaded(m)) => Err(NodeError::Overloaded(m)),
            Err(e) => Err(NodeError::Failed(e.to_string())),
        }
    }
}

/// Runs campaign nodes against a tuning service through
/// [`run_remote_with`]: the service owns the search and each node's run
/// journal; this process measures. A fresh reconnecting transport per
/// attempt keeps connection state out of the campaign layer; shedding is
/// absorbed by the transport's `retry_after_ms`-aware retries, and a shed
/// that outlives them surfaces as the node's `overloaded` outcome.
pub struct RemoteExecutor {
    /// Node spec paths resolve relative to the campaign file.
    pub base_dir: PathBuf,
    /// Service address.
    pub addr: String,
    /// Base per-node options.
    pub opts: RunOptions,
}

impl NodeExecutor for RemoteExecutor {
    fn execute(&self, node: &NodeSpec, ctx: &NodeContext) -> Result<NodeRun, NodeError> {
        let spec = TuningSpec::load(self.base_dir.join(&node.spec))
            .map_err(|e| NodeError::Failed(e.to_string()))?;
        let retries = self.opts.retries.max(3);
        let backoff = self
            .opts
            .reconnect_backoff
            .unwrap_or(DEFAULT_RECONNECT_BACKOFF);
        let transport = atf_service::ReconnectingTransport::tcp(&self.addr, retries, backoff);
        let mut client = atf_service::Client::new(transport);
        let mut opts = self.opts.clone();
        opts.journal = None;
        opts.resume = ctx.resume;
        opts.campaign = Some(ctx.hooks.clone());
        match run_remote_with(&spec, &mut client, &opts) {
            Ok(resp) => Ok(NodeRun {
                evaluations: resp.evaluations.unwrap_or(0),
                best_cost: resp.best_cost,
                // BTreeMap iteration is already name-sorted.
                best_config: resp
                    .best_config
                    .iter()
                    .flatten()
                    .map(|(n, v)| ConfigValue {
                        name: n.clone(),
                        value: v.to_string(),
                    })
                    .collect(),
            }),
            // A budget/cancel cut can leave the service with nothing valid
            // to report; that verdict belongs to the campaign layer.
            Err(_) if ctx.hooks.budget_fired() || ctx.hooks.cancel_fired() => Ok(NodeRun {
                evaluations: 0,
                best_cost: None,
                best_config: Vec::new(),
            }),
            Err(CliError::Overloaded(m)) => Err(NodeError::Overloaded(m)),
            Err(e) => Err(NodeError::Failed(e.to_string())),
        }
    }
}

/// Loads, validates, and executes a campaign file end to end; writes
/// `report.json` atomically into the state directory and returns the
/// report. With `opts.resume`, continues from the campaign journal.
pub fn run_campaign_file(path: &Path, opts: &CampaignOptions) -> Result<CampaignReport, CliError> {
    let (plan, spec_hash) = load_campaign(path, opts.concurrency)?;
    let state_dir = opts
        .state_dir
        .clone()
        .unwrap_or_else(|| default_state_dir(path));
    std::fs::create_dir_all(&state_dir)
        .map_err(|e| CliError::Campaign(format!("cannot create {}: {e}", state_dir.display())))?;
    let trace: Arc<dyn TraceSink> = match &opts.trace {
        Some(p) => Arc::new(FileSink::create(p).map_err(|e| {
            CliError::Spec(format!("cannot create trace file {}: {e}", p.display()))
        })?),
        None => Arc::new(NullSink),
    };
    let cfg = RunConfig {
        journal: Some(state_dir.join("campaign.journal")),
        resume: opts.resume,
        spec_hash,
        trace: Arc::clone(&trace),
        kill_after_appends: opts.kill_after_appends,
    };
    let base_dir = path.parent().unwrap_or(Path::new(".")).to_path_buf();
    let node_opts = opts.node_opts.clone();
    let report = match &opts.addr {
        Some(addr) => campaign::run_campaign(
            &plan,
            &RemoteExecutor {
                base_dir,
                addr: addr.clone(),
                opts: node_opts,
            },
            &cfg,
        ),
        None => campaign::run_campaign(
            &plan,
            &LocalExecutor {
                base_dir,
                state_dir: state_dir.clone(),
                opts: node_opts,
            },
            &cfg,
        ),
    }
    .map_err(|e| match e {
        campaign::CampaignError::SpecMismatch { .. } => spec_err(e),
        e => CliError::Campaign(e.to_string()),
    })?;
    trace.flush();

    // The report is the campaign's durable artifact: write-then-rename so
    // a crash never leaves a torn report next to a complete journal.
    let tmp = state_dir.join("report.json.tmp");
    let final_path = state_dir.join("report.json");
    let body = format!("{}\n", report.to_json());
    std::fs::write(&tmp, body)
        .and_then(|()| std::fs::rename(&tmp, &final_path))
        .map_err(|e| CliError::Campaign(format!("cannot write report: {e}")))?;
    Ok(report)
}

/// What `validate` / `--dry-run` print: the execution order, dependencies,
/// policies, and budget — everything the runner would do, minus doing it.
pub fn dry_run_summary(plan: &CampaignPlan) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "campaign:    {} ({} nodes, concurrency {})\n",
        plan.spec.campaign,
        plan.spec.nodes.len(),
        plan.spec.concurrency.unwrap_or(1)
    ));
    if let Some(b) = &plan.spec.budget {
        let mut parts = Vec::new();
        if let Some(e) = b.evaluations {
            parts.push(format!("{e} evaluations"));
        }
        if let Some(s) = b.wall_clock_secs {
            parts.push(format!("{s}s wall clock"));
        }
        out.push_str(&format!("budget:      {}\n", parts.join(", ")));
    }
    out.push_str("order:\n");
    for &i in &plan.order {
        let node = &plan.spec.nodes[i];
        let policy = match plan.policies[i] {
            campaign::FailurePolicy::Retry {
                retries,
                backoff_ms,
            } => {
                format!("retry x{retries} (backoff {backoff_ms}ms)")
            }
            campaign::FailurePolicy::Continue => "continue".to_string(),
            campaign::FailurePolicy::Abort => "abort".to_string(),
        };
        let after = if node.after.is_empty() {
            String::new()
        } else {
            format!("  after {}", node.after.join(", "))
        };
        out.push_str(&format!(
            "  {}  spec {}  on-failure {policy}{after}\n",
            node.name, node.spec
        ));
    }
    out
}

/// Renders the campaign report as the CLI's summary table.
pub fn summary_table(report: &CampaignReport) -> String {
    let mut rows: Vec<[String; 5]> = vec![[
        "node".into(),
        "outcome".into(),
        "evals".into(),
        "attempts".into(),
        "best cost / reason".into(),
    ]];
    for n in &report.nodes {
        let detail = match (&n.best_cost, &n.reason) {
            (Some(c), _) => format!("{c}"),
            (None, Some(r)) => r.clone(),
            (None, None) => String::new(),
        };
        rows.push([
            n.node.clone(),
            n.outcome.clone(),
            n.evaluations.to_string(),
            n.attempts.to_string(),
            detail,
        ]);
    }
    let mut widths = [0usize; 5];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in &rows {
        let line = row
            .iter()
            .enumerate()
            .map(|(i, cell)| format!("{cell:<w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ");
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out.push_str(&format!(
        "total: {} evaluations{}\n",
        report.total_evaluations,
        if report.budget_exhausted {
            " (budget exhausted)"
        } else {
            ""
        }
    ));
    out
}

/// The campaign's exit code: real node failure (1) outranks capacity
/// rejection (3) outranks everything else (0) — `budget_exhausted` and
/// `skipped` are recorded verdicts, not process failures.
pub fn exit_code(report: &CampaignReport) -> u8 {
    if report.nodes.iter().any(|n| n.outcome == outcome::FAILED) {
        1
    } else if report
        .nodes
        .iter()
        .any(|n| n.outcome == outcome::OVERLOADED)
    {
        3
    } else {
        0
    }
}
