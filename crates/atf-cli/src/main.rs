//! `atf-tune` — the command-line auto-tuner.
//!
//! ```text
//! atf-tune run <spec.json>              tune locally
//! atf-tune serve --addr A --db P        run the tuning service
//! atf-tune client --addr A <spec>       drive a remote session
//! atf-tune campaign <file.json>         run a multi-node tuning campaign
//! ```
//!
//! Exit codes: 0 success, 1 tuning/service failure, 2 usage or validation
//! error, 3 shed with `overloaded` after exhausting retries (capacity
//! rejection, not a failure — scripts can back off and re-run).
//! See the crate docs (`atf_cli`) for the specification format.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: atf-tune <command> [options]

commands:
  run <spec.json>        Tune the program described by the specification
                         in this process (search + measurement local).
  serve [options]        Run the tuning service: searches live here,
                         clients measure and report costs over TCP.
  client [options] ...   Drive a session on a remote service: the service
                         searches, this process measures the program.
  campaign <file.json>   Run a declarative campaign: a DAG of tuning runs
                         with failure policies, a shared budget, and a
                         crash-safe campaign journal.
  help [command]         Show this message, or a command's usage.

exit codes: 0 success, 1 tuning failure, 2 usage/validation error,
            3 shed with `overloaded` after exhausting retries

Run `atf-tune help <command>` for per-command options.";

const RUN_USAGE: &str = "usage: atf-tune run [options] <spec.json>

Auto-tunes the program described by the JSON specification:
compile/run scripts, tuning parameters with constraint strings
(e.g. \"divides(N / WPT)\"), search technique, abort conditions,
and an optional tuning database to record the best configuration.

  --timeout SECS     Kill any single measurement after SECS seconds
                     (counted as a `timeout` failure; fractions allowed).
  --retries N        Retry transient measurement failures up to N times,
                     with exponential backoff and jitter.
  --breaker N        Abort the run after N consecutive failed
                     evaluations (circuit breaker).
  --journal PATH     Append every evaluation to a crash-safe run journal
                     (NDJSON, checksummed, periodically compacted into an
                     atomically-written checkpoint) at PATH before applying
                     it.
  --resume           Replay the journal at --journal PATH first, then
                     continue the interrupted run where it stopped.
  --strict-journal   Treat a journal write failure as fatal. Default:
                     journaling degrades (tuning continues in memory) and
                     the report carries a warning.
  --workers N        Evaluate up to N configurations in parallel (default
                     1 = serial). With --resume the journal's recorded
                     pending window takes precedence over N.
  --trace PATH       Write a structured NDJSON event trace (space_gen,
                     space_chunk, space_cache, handout, report, eval,
                     retry, breaker, abort, worker_busy, worker_idle,
                     proc) to PATH.
  --space-cache DIR  Persist generated search spaces in DIR, keyed by a
                     content hash of the parameter spec; a later run with
                     an identical spec loads the space instead of
                     regenerating it.
  --space-cache-max-mb MB
                     Cap the space cache at MB megabytes total; exceeding
                     it evicts least-recently-used entries (default:
                     unbounded).
  --metrics          Print a metrics summary after the run: eval-latency
                     histogram, failure taxonomy, window occupancy,
                     worker utilization, configs/sec, space generation.";

const SERVE_USAGE: &str = "usage: atf-tune serve [--addr HOST:PORT] [--db PATH] [--idle-secs N]
                      [--journal-dir DIR] [--eval-deadline-secs N]
                      [--space-cache DIR] [--space-cache-max-mb MB]
                      [--max-sessions N] [--max-per-tenant N]
                      [--max-inflight N] [--max-connections N]
                      [--drain-secs N] [--shards N]
                      [--io-threads N] [--handlers N]

Runs the tuning service until SIGINT (ctrl-c), then drains gracefully:
stops accepting, lets in-flight sessions checkpoint their journals, and
exits within the drain deadline.

  --addr HOST:PORT   Listen address (default 127.0.0.1:7117).
  --db PATH          Tuning-database file: loaded at start, updated as
                     sessions finish (default: in-memory only).
  --idle-secs N      Expire sessions idle longer than N seconds
                     (default 900).
  --journal-dir DIR  Keep a per-key run journal in DIR; sessions opened
                     with `resume` continue from it after a crash.
  --eval-deadline-secs N
                     Auto-fail a handed-out configuration as a `timeout`
                     when no report arrives within N seconds.
  --space-cache DIR  Persist generated search spaces in DIR, keyed by a
                     content hash of the parameter spec, so re-opening a
                     session after a restart skips regeneration. Defaults
                     to `<db dir>/space-cache` when --db is given.
  --space-cache-max-mb MB
                     Cap the space cache at MB megabytes total; exceeding
                     it evicts least-recently-used entries (default:
                     unbounded).
  --max-sessions N   Admit at most N live sessions across all tenants;
                     an `open` beyond it is answered `overloaded` with a
                     retry_after_ms hint (default: unlimited).
  --max-per-tenant N Admit at most N live sessions per tenant (the
                     `open.tenant` field; default tenant otherwise).
  --max-inflight N   At most N handed-out, unreported configurations per
                     tenant; a `next` beyond it is answered `overloaded`.
  --max-connections N
                     Serve at most N concurrent connections; beyond that
                     connections queue briefly, then are rejected with
                     one `overloaded` line (default 4096 — connections
                     cost the poll(2) reactor an fd, not a thread).
  --drain-secs N     On shutdown, wait up to N seconds for open
                     connections to be answered and flushed before
                     checkpointing journals and exiting (default 5).
  --shards N         Stripe live sessions across N locks; concurrent
                     clients on different sessions rarely contend
                     (default: one shard per available CPU).
  --io-threads N     Event-loop threads owning the connection sockets
                     (default: auto from available parallelism, 1-4).
  --handlers N       Handler threads serving parsed requests against the
                     session manager (default: auto, 2-16).";

const CLIENT_USAGE: &str = "usage: atf-tune client [--addr HOST:PORT] [options] <spec.json>
       atf-tune client [--addr HOST:PORT] --lookup KERNEL [--device D] [--workload W]

With a spec: opens a session on the service, measures each configuration
the service hands out by running the spec's program locally, and prints
the final result. With --lookup: prints the service's stored best
configuration for the key, without tuning.

  --addr HOST:PORT   Service address (default 127.0.0.1:7117).
  --timeout SECS     Kill any single local measurement after SECS seconds
                     (reported to the service as a `timeout` failure).
  --retries N        Retry transient measurement failures up to N times
                     before reporting them. Also raises the connection
                     retry budget (at least 3 reconnect attempts are
                     always made).
  --backoff-ms MS    Base delay before the first reconnect attempt,
                     doubling with jitter each retry (default 200).
  --breaker N        Ask the service to abort the session after N
                     consecutive failed evaluations.
  --resume           Ask the service to resume this key's run journal
                     (needs a service started with --journal-dir).

The connection self-heals: requests carry idempotency keys, so a retry
after a dropped connection or lost response is answered exactly once by
the service, and a session the service expired is transparently
re-attached (re-opened with resume).";

const CAMPAIGN_USAGE: &str = "usage: atf-tune campaign [options] <campaign.json>
       atf-tune campaign validate <campaign.json>

Runs a declarative campaign: a named DAG of tuning runs (nodes) with
per-node failure policies (`retry` with jittered exponential backoff,
`continue`, `abort`), an optional shared evaluation/wall-clock budget
charged at handout granularity, and a crash-safe campaign journal —
kill -9 at any point, re-run with --resume, and the final report is
bit-identical to an uninterrupted execution.

  validate           Validate only: graph structure (duplicates, unknown
                     references, cycles), policies, budgets, and every
                     node's tuning spec. Runs nothing. Exit 0 when valid,
                     2 otherwise.
  --dry-run          Validate, print the execution plan (order, policies,
                     budget), run nothing.
  --state-dir DIR    Campaign state: the campaign journal, each node's
                     run journal, and report.json
                     (default: <campaign file>.state/).
  --resume           Resume from the campaign journal: finished nodes are
                     restored verbatim (zero re-execution), an in-flight
                     node replays its run journal and continues.
  --addr HOST:PORT   Execute nodes against this tuning service instead of
                     locally (the service searches and owns run journals;
                     this process measures).
  --concurrency N    Run up to N independent nodes at once (overrides the
                     campaign file's `concurrency`).
  --trace FILE       Structured NDJSON trace: campaign_node,
                     campaign_budget, campaign_skip, plus each local
                     node's session events.
  --timeout SECS, --retries N, --breaker N, --workers N, --backoff-ms MS
                     Per-node run options (see `atf-tune help run`).

exit codes: 0 campaign completed (including budget_exhausted verdicts),
            1 a node failed, 2 usage/validation error, 3 a node was shed
            with `overloaded` after exhausting retries";

const DEFAULT_ADDR: &str = "127.0.0.1:7117";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Some("--help" | "-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some("help") => {
            let text = match args.get(1).map(String::as_str) {
                Some("run") => RUN_USAGE,
                Some("serve") => SERVE_USAGE,
                Some("client") => CLIENT_USAGE,
                Some("campaign") => CAMPAIGN_USAGE,
                _ => USAGE,
            };
            println!("{text}");
            ExitCode::SUCCESS
        }
        Some("run") => cmd_run(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        // Backward compatibility: `atf-tune <spec.json>` still tunes.
        Some(path) if !path.starts_with('-') => cmd_run(&args),
        Some(flag) => {
            eprintln!("atf-tune: unknown option `{flag}`");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn wants_help(args: &[String]) -> bool {
    args.iter().any(|a| a == "--help" || a == "-h")
}

/// Pops `--flag VALUE` from `args`; `Err` on a flag without a value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        Some(_) => Err(format!("`{flag}` needs a value")),
    }
}

/// Pops a bare `--flag` from `args`; returns whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Pops `--flag SECS` (fractional seconds allowed) as a [`Duration`].
fn take_secs_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<Duration>, String> {
    match take_flag(args, flag)? {
        None => Ok(None),
        Some(s) => {
            let secs: f64 = s
                .parse()
                .map_err(|_| format!("`{flag}` needs a number of seconds, got `{s}`"))?;
            if !secs.is_finite() || secs <= 0.0 {
                return Err(format!("`{flag}` needs a positive number of seconds"));
            }
            Ok(Some(Duration::from_secs_f64(secs)))
        }
    }
}

/// Pops `--flag N` as a `u32`.
fn take_u32_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<u32>, String> {
    match take_flag(args, flag)? {
        None => Ok(None),
        Some(s) => s
            .parse()
            .map(Some)
            .map_err(|_| format!("`{flag}` needs an integer, got `{s}`")),
    }
}

/// Parses the fault-tolerance flags shared by `run` and `client`.
/// `with_journal` enables the local-only `--journal PATH` flag.
fn take_run_options(
    args: &mut Vec<String>,
    with_journal: bool,
) -> Result<atf_cli::RunOptions, String> {
    let mut opts = atf_cli::RunOptions {
        timeout: take_secs_flag(args, "--timeout")?,
        retries: take_u32_flag(args, "--retries")?.unwrap_or(0),
        breaker: take_u32_flag(args, "--breaker")?,
        journal: None,
        resume: take_switch(args, "--resume"),
        workers: take_u32_flag(args, "--workers")?.unwrap_or(1) as usize,
        trace: None,
        metrics: take_switch(args, "--metrics"),
        strict_journal: false,
        reconnect_backoff: None,
        space_cache: None,
        space_cache_max_mb: None,
        campaign: None,
    };
    if with_journal {
        opts.journal = take_flag(args, "--journal")?.map(Into::into);
        if opts.resume && opts.journal.is_none() {
            return Err("`--resume` needs `--journal PATH`".to_string());
        }
        opts.trace = take_flag(args, "--trace")?.map(Into::into);
        opts.strict_journal = take_switch(args, "--strict-journal");
        opts.space_cache = take_flag(args, "--space-cache")?.map(Into::into);
        opts.space_cache_max_mb = take_u32_flag(args, "--space-cache-max-mb")?.map(u64::from);
    } else {
        opts.reconnect_backoff =
            take_u32_flag(args, "--backoff-ms")?.map(|ms| Duration::from_millis(u64::from(ms)));
    }
    Ok(opts)
}

fn cmd_run(args: &[String]) -> ExitCode {
    if wants_help(args) {
        println!("{RUN_USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut args = args.to_vec();
    let parsed = (|| -> Result<(String, atf_cli::RunOptions), String> {
        let opts = take_run_options(&mut args, true)?;
        match args.as_slice() {
            [path] => Ok((path.clone(), opts)),
            [] => Err("need a <spec.json>".to_string()),
            [_, extra, ..] => Err(format!("unexpected argument `{extra}`")),
        }
    })();
    let (path, opts) = match parsed {
        Ok(p) => p,
        Err(m) => {
            eprintln!("atf-tune run: {m}");
            eprintln!("{RUN_USAGE}");
            return ExitCode::from(2);
        }
    };
    let spec = match atf_cli::TuningSpec::load(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("atf-tune: {e}");
            return ExitCode::from(2);
        }
    };
    match atf_cli::run_with(&spec, &opts) {
        Ok(outcome) => {
            print!("{}", atf_cli::report(&outcome));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("atf-tune: {e}");
            failure_code(&e)
        }
    }
}

/// Exit code for a failed run: capacity rejection (`overloaded` outliving
/// the retry budget) is 3, real failures 1 — scripts can tell them apart.
fn failure_code(e: &atf_cli::CliError) -> ExitCode {
    match e {
        atf_cli::CliError::Overloaded(_) => ExitCode::from(3),
        _ => ExitCode::FAILURE,
    }
}

fn cmd_campaign(args: &[String]) -> ExitCode {
    if wants_help(args) {
        println!("{CAMPAIGN_USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut args = args.to_vec();
    let validate_only = args.first().map(String::as_str) == Some("validate");
    if validate_only {
        args.remove(0);
    }
    struct Parsed {
        path: String,
        dry_run: bool,
        opts: atf_cli::campaign::CampaignOptions,
    }
    let parsed = (|| -> Result<Parsed, String> {
        let dry_run = take_switch(&mut args, "--dry-run");
        let state_dir = take_flag(&mut args, "--state-dir")?.map(Into::into);
        let addr = take_flag(&mut args, "--addr")?;
        let concurrency = take_u32_flag(&mut args, "--concurrency")?.map(|n| n as usize);
        let trace = take_flag(&mut args, "--trace")?.map(Into::into);
        // Hidden chaos hook for crash tests: die fatally after N campaign
        // journal appends, exactly as SIGKILL at that boundary would.
        let kill_after_appends = match take_flag(&mut args, "--kill-after-appends")? {
            Some(s) => Some(
                s.parse::<u64>()
                    .map_err(|_| format!("`--kill-after-appends` needs an integer, got `{s}`"))?,
            ),
            None => None,
        };
        let mut node_opts = take_run_options(&mut args, false)?;
        // `--resume` means "resume the campaign"; per-node resume is the
        // campaign runner's decision.
        let resume = node_opts.resume;
        node_opts.resume = false;
        let path = match args.as_slice() {
            [path] => path.clone(),
            [] => return Err("need a <campaign.json>".to_string()),
            [_, extra, ..] => return Err(format!("unexpected argument `{extra}`")),
        };
        Ok(Parsed {
            path,
            dry_run,
            opts: atf_cli::campaign::CampaignOptions {
                state_dir,
                resume,
                addr,
                node_opts,
                trace,
                concurrency,
                kill_after_appends,
            },
        })
    })();
    let parsed = match parsed {
        Ok(p) => p,
        Err(m) => {
            eprintln!("atf-tune campaign: {m}");
            eprintln!("{CAMPAIGN_USAGE}");
            return ExitCode::from(2);
        }
    };
    if validate_only || parsed.dry_run {
        // Validation catches everything the runner would reject — graph
        // structure, policies, budgets, every node's tuning spec — and
        // runs nothing: zero evaluations, zero journal writes.
        let loaded = atf_cli::campaign::load_campaign(
            std::path::Path::new(&parsed.path),
            parsed.opts.concurrency,
        );
        return match loaded {
            Ok((plan, _)) => {
                print!("{}", atf_cli::campaign::dry_run_summary(&plan));
                println!("campaign is valid; nothing was executed");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("atf-tune campaign: {e}");
                ExitCode::from(2)
            }
        };
    }
    match atf_cli::campaign::run_campaign_file(std::path::Path::new(&parsed.path), &parsed.opts) {
        Ok(report) => {
            print!("{}", atf_cli::campaign::summary_table(&report));
            ExitCode::from(atf_cli::campaign::exit_code(&report))
        }
        Err(e) => {
            eprintln!("atf-tune campaign: {e}");
            match e {
                atf_cli::CliError::Spec(_) | atf_cli::CliError::Constraint { .. } => {
                    ExitCode::from(2)
                }
                e => failure_code(&e),
            }
        }
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    if wants_help(args) {
        println!("{SERVE_USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut args = args.to_vec();
    struct ServeArgs {
        addr: String,
        db: Option<String>,
        idle_secs: u64,
        journal_dir: Option<String>,
        eval_deadline: Option<Duration>,
        space_cache: Option<String>,
        space_cache_max_mb: Option<u64>,
        max_sessions: Option<usize>,
        max_per_tenant: Option<usize>,
        max_inflight: Option<usize>,
        max_connections: Option<usize>,
        drain: Option<Duration>,
        shards: Option<usize>,
        io_threads: Option<usize>,
        handlers: Option<usize>,
    }
    let parsed = (|| -> Result<ServeArgs, String> {
        let addr = take_flag(&mut args, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.to_string());
        let db = take_flag(&mut args, "--db")?;
        let idle_secs = match take_flag(&mut args, "--idle-secs")? {
            Some(s) => s
                .parse()
                .map_err(|_| format!("`--idle-secs` needs an integer, got `{s}`"))?,
            None => 900,
        };
        let parsed = ServeArgs {
            addr,
            db,
            idle_secs,
            journal_dir: take_flag(&mut args, "--journal-dir")?,
            eval_deadline: take_secs_flag(&mut args, "--eval-deadline-secs")?,
            space_cache: take_flag(&mut args, "--space-cache")?,
            space_cache_max_mb: take_u32_flag(&mut args, "--space-cache-max-mb")?.map(u64::from),
            max_sessions: take_u32_flag(&mut args, "--max-sessions")?.map(|n| n as usize),
            max_per_tenant: take_u32_flag(&mut args, "--max-per-tenant")?.map(|n| n as usize),
            max_inflight: take_u32_flag(&mut args, "--max-inflight")?.map(|n| n as usize),
            max_connections: take_u32_flag(&mut args, "--max-connections")?.map(|n| n as usize),
            drain: take_secs_flag(&mut args, "--drain-secs")?,
            shards: take_u32_flag(&mut args, "--shards")?.map(|n| n as usize),
            io_threads: take_u32_flag(&mut args, "--io-threads")?.map(|n| n as usize),
            handlers: take_u32_flag(&mut args, "--handlers")?.map(|n| n as usize),
        };
        if let Some(extra) = args.first() {
            return Err(format!("unexpected argument `{extra}`"));
        }
        Ok(parsed)
    })();
    let serve = match parsed {
        Ok(p) => p,
        Err(m) => {
            eprintln!("atf-tune serve: {m}");
            eprintln!("{SERVE_USAGE}");
            return ExitCode::from(2);
        }
    };

    let db_path: Option<std::path::PathBuf> = serve.db.map(Into::into);
    // With persistence configured but no explicit cache directory, keep the
    // space cache next to the database so a restarted service reuses it.
    let space_cache: Option<std::path::PathBuf> = serve.space_cache.map(Into::into).or_else(|| {
        db_path.as_ref().map(|p| {
            p.parent()
                .unwrap_or(std::path::Path::new("."))
                .join("space-cache")
        })
    });
    let manager = match atf_service::SessionManager::new(atf_service::ManagerConfig {
        db_path,
        idle_timeout: Duration::from_secs(serve.idle_secs),
        journal_dir: serve.journal_dir.map(Into::into),
        eval_deadline: serve.eval_deadline,
        space_cache,
        space_cache_max_entries: None,
        space_cache_max_bytes: serve.space_cache_max_mb.map(|mb| mb * 1024 * 1024),
        admission: atf_service::AdmissionConfig {
            max_sessions: serve.max_sessions,
            max_sessions_per_tenant: serve.max_per_tenant,
            max_inflight_per_tenant: serve.max_inflight,
            ..Default::default()
        },
        shards: serve.shards,
    }) {
        Ok(m) => Arc::new(m),
        Err(e) => {
            eprintln!("atf-tune serve: could not load database: {e}");
            return ExitCode::FAILURE;
        }
    };
    let defaults = atf_service::ServerConfig::default();
    let server_config = atf_service::ServerConfig {
        // An absent flag keeps the reactor's 4096-slot default.
        max_connections: serve.max_connections.or(defaults.max_connections),
        drain_timeout: serve.drain.unwrap_or(defaults.drain_timeout),
        io_threads: serve.io_threads,
        handlers: serve.handlers,
        ..defaults
    };
    let server = match atf_service::Server::bind_with(&serve.addr, manager, server_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("atf-tune serve: could not bind {}: {e}", serve.addr);
            return ExitCode::FAILURE;
        }
    };
    server.install_sigint();
    match server.local_addr() {
        Ok(bound) => eprintln!("atf-tune: serving on {bound} (ctrl-c to stop)"),
        Err(_) => eprintln!("atf-tune: serving on {} (ctrl-c to stop)", serve.addr),
    }
    match server.run() {
        Ok(()) => {
            eprintln!("atf-tune: shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("atf-tune serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_client(args: &[String]) -> ExitCode {
    if wants_help(args) {
        println!("{CLIENT_USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut args = args.to_vec();
    let parsed = (|| -> Result<(String, ClientMode), String> {
        let addr = take_flag(&mut args, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.to_string());
        if let Some(kernel) = take_flag(&mut args, "--lookup")? {
            let device = take_flag(&mut args, "--device")?;
            let workload = take_flag(&mut args, "--workload")?;
            if let Some(extra) = args.first() {
                return Err(format!("unexpected argument `{extra}`"));
            }
            return Ok((
                addr,
                ClientMode::Lookup {
                    kernel,
                    device,
                    workload,
                },
            ));
        }
        let opts = take_run_options(&mut args, false)?;
        match args.as_slice() {
            [path] => Ok((
                addr.clone(),
                ClientMode::Tune {
                    spec: path.clone(),
                    opts,
                },
            )),
            [] => Err("need a <spec.json> or --lookup KERNEL".to_string()),
            [_, extra, ..] => Err(format!("unexpected argument `{extra}`")),
        }
    })();
    let (addr, mode) = match parsed {
        Ok(p) => p,
        Err(m) => {
            eprintln!("atf-tune client: {m}");
            eprintln!("{CLIENT_USAGE}");
            return ExitCode::from(2);
        }
    };

    // Self-healing connection: connects lazily, and on a dropped
    // connection, lost response, or timeout it backs off (exponentially,
    // jittered) and resends the same request — the service deduplicates by
    // request id, so retries stay exactly-once.
    let (reconnect_retries, backoff) = match &mode {
        ClientMode::Tune { opts, .. } => (
            opts.retries.max(3),
            opts.reconnect_backoff
                .unwrap_or(atf_cli::DEFAULT_RECONNECT_BACKOFF),
        ),
        ClientMode::Lookup { .. } => (3, atf_cli::DEFAULT_RECONNECT_BACKOFF),
    };
    let transport = atf_service::ReconnectingTransport::tcp(&addr, reconnect_retries, backoff);
    let mut client = atf_service::Client::new(transport);
    match mode {
        ClientMode::Tune { spec, opts } => {
            let spec = match atf_cli::TuningSpec::load(&spec) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("atf-tune: {e}");
                    return ExitCode::from(2);
                }
            };
            match atf_cli::run_remote_with(&spec, &mut client, &opts) {
                Ok(response) => {
                    print!("{}", atf_cli::report_remote(&response));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("atf-tune client: {e}");
                    failure_code(&e)
                }
            }
        }
        ClientMode::Lookup {
            kernel,
            device,
            workload,
        } => match client.lookup(&kernel, device.as_deref(), workload.as_deref()) {
            Ok(Some(response)) => {
                print!("{}", atf_cli::report_remote(&response));
                ExitCode::SUCCESS
            }
            Ok(None) => {
                eprintln!("atf-tune client: no stored result for `{kernel}`");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("atf-tune client: {e}");
                ExitCode::FAILURE
            }
        },
    }
}

enum ClientMode {
    Tune {
        spec: String,
        opts: atf_cli::RunOptions,
    },
    Lookup {
        kernel: String,
        device: Option<String>,
        workload: Option<String>,
    },
}
