//! `atf-tune <spec.json>` — tune a program from a JSON specification.
//!
//! See the crate docs (`atf_cli`) for the specification format.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--help" | "-h") | None => {
            eprintln!("usage: atf-tune <spec.json>");
            eprintln!();
            eprintln!("Auto-tunes the program described by the JSON specification:");
            eprintln!("compile/run scripts, tuning parameters with constraint strings");
            eprintln!("(e.g. \"divides(N / WPT)\"), search technique, abort conditions,");
            eprintln!("and an optional tuning database to record the best configuration.");
            if args.len() < 2 {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            }
        }
        Some(path) => {
            let spec = match atf_cli::TuningSpec::load(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("atf-tune: {e}");
                    return ExitCode::from(2);
                }
            };
            match atf_cli::run(&spec) {
                Ok(outcome) => {
                    print!("{}", atf_cli::report(&outcome));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("atf-tune: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}
