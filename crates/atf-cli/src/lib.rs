//! # atf-cli — tune any program from a JSON specification
//!
//! The command-line face of the generic cost function (paper, Section II,
//! Step 2): a JSON file declares the program (source, compile/run scripts,
//! optional cost log), the tuning parameters with ranges and *constraint
//! strings* (parsed by [`atf_core::parse`]), the search technique, and the
//! abort conditions; the tool runs the tuning loop and (optionally) records
//! the result in a [`atf_core::db::TuningDatabase`].
//!
//! ```text
//! atf-tune spec.json
//! ```
//!
//! Example specification:
//!
//! ```json
//! {
//!   "program": { "source": "prog.sh", "run": "run.sh", "log_file": "cost.log" },
//!   "parameters": [
//!     { "name": "UNROLL", "set": [1, 2, 4, 8] },
//!     { "name": "BLOCK", "interval": { "begin": 8, "end": 96 },
//!       "constraint": "is_multiple_of(UNROLL)" }
//!   ],
//!   "search": { "technique": "ensemble", "seed": 42 },
//!   "abort": { "evaluations": 200 }
//! }
//! ```

use atf_core::abort::Abort;
use atf_core::param::{auto_group, Param};
use atf_core::prelude::*;
use atf_core::process::{LexCosts, ProcessCostFunction};
use atf_core::spec;
use serde::Deserialize;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

// The declarative spec types live in `atf_core::spec` (shared with the
// tuning service); re-exported here for backward compatibility.
pub use atf_core::spec::{AbortSpec, IntervalSpec, ParameterSpec, SearchSpec, SpecError};

pub mod campaign;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Reading or deserializing the specification failed.
    Spec(String),
    /// A constraint string failed to parse.
    Constraint {
        /// The parameter whose constraint is broken.
        parameter: String,
        /// The parser's message.
        message: String,
    },
    /// Tuning failed (empty space / nothing measurable).
    Tuning(TuningError),
    /// The database could not be read or written.
    Database(String),
    /// Talking to the tuning service failed.
    Service(String),
    /// The service shed the run with `overloaded` even after the
    /// transport's `retry_after_ms`-aware retries — capacity rejection,
    /// not a real failure. Scripts can tell the two apart: this maps to
    /// exit code 3, real failures to 1.
    Overloaded(String),
    /// A campaign run failed at the orchestration layer (campaign journal
    /// I/O, a fatal executor error) — distinct from per-node failures,
    /// which are recorded in the campaign report instead.
    Campaign(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Spec(m) => write!(f, "bad specification: {m}"),
            CliError::Constraint { parameter, message } => {
                write!(f, "bad constraint for `{parameter}`: {message}")
            }
            CliError::Tuning(e) => write!(f, "tuning failed: {e}"),
            CliError::Database(m) => write!(f, "database error: {m}"),
            CliError::Service(m) => write!(f, "service error: {m}"),
            CliError::Overloaded(m) => write!(f, "service overloaded: {m}"),
            CliError::Campaign(m) => write!(f, "campaign error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<SpecError> for CliError {
    fn from(e: SpecError) -> Self {
        match e {
            SpecError::Invalid(m) => CliError::Spec(m),
            SpecError::Constraint { parameter, message } => {
                CliError::Constraint { parameter, message }
            }
        }
    }
}

/// The program under tuning (the generic cost function's inputs).
#[derive(Clone, Debug, Deserialize)]
pub struct ProgramSpec {
    /// Path to the program source (exported as `ATF_SOURCE`).
    pub source: PathBuf,
    /// Script executed to run the program.
    pub run: PathBuf,
    /// Optional script executed before every run.
    #[serde(default)]
    pub compile: Option<PathBuf>,
    /// Optional cost log (comma-separated costs, lexicographic); without
    /// it, wall-clock runtime is the cost.
    #[serde(default)]
    pub log_file: Option<PathBuf>,
}

/// The whole tuning specification.
#[derive(Clone, Debug, Deserialize)]
pub struct TuningSpec {
    /// The program under tuning.
    pub program: ProgramSpec,
    /// The tuning parameters (declaration order matters: constraints may
    /// only reference earlier parameters).
    pub parameters: Vec<ParameterSpec>,
    /// Search selection.
    #[serde(default)]
    pub search: SearchSpec,
    /// Abort conditions.
    #[serde(default)]
    pub abort: AbortSpec,
    /// Optional tuning-database path to merge the result into.
    #[serde(default)]
    pub database: Option<PathBuf>,
    /// Database key: kernel/program name (default: the source file name).
    #[serde(default)]
    pub kernel_name: Option<String>,
    /// Database key: device name (default "local").
    #[serde(default)]
    pub device_name: Option<String>,
    /// Database key: workload label.
    #[serde(default)]
    pub workload: Option<String>,
}

impl TuningSpec {
    /// Parses a specification from JSON text.
    pub fn from_json(text: &str) -> Result<Self, CliError> {
        serde_json::from_str(text).map_err(|e| CliError::Spec(e.to_string()))
    }

    /// Loads a specification file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, CliError> {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CliError::Spec(format!("{}: {e}", path.as_ref().display())))?;
        Self::from_json(&text)
    }

    /// Builds the parameter list (parsing constraint strings).
    pub fn build_params(&self) -> Result<Vec<Param>, CliError> {
        spec::build_params(&self.parameters).map_err(CliError::from)
    }

    fn build_abort(&self) -> Option<Abort> {
        spec::build_abort(&self.abort)
    }

    pub(crate) fn build_technique(&self) -> Result<Box<dyn SearchTechnique>, CliError> {
        spec::build_technique(&self.search).map_err(CliError::from)
    }

    fn build_cost_function(&self) -> ProcessCostFunction {
        let mut cf = ProcessCostFunction::new(&self.program.source, &self.program.run);
        if let Some(c) = &self.program.compile {
            cf = cf.compile_script(c);
        }
        if let Some(l) = &self.program.log_file {
            cf = cf.log_file(l);
        }
        cf
    }
}

/// Fault-tolerance options for a tuning run — the CLI's `--timeout`,
/// `--retries`, `--breaker`, `--journal`, and `--resume` flags.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Kill any single measurement after this long (a `timeout` failure).
    pub timeout: Option<std::time::Duration>,
    /// Retry transient measurement failures up to this many times.
    pub retries: u32,
    /// Abort after this many consecutive failed evaluations.
    pub breaker: Option<u32>,
    /// Write an append-only run journal to this path (local runs only; in
    /// remote mode the service owns the journal).
    pub journal: Option<PathBuf>,
    /// Resume from the journal (local: replay `journal`; remote: ask the
    /// service to replay its journal for this key).
    pub resume: bool,
    /// Number of parallel evaluation threads (0 or 1 = serial). Each worker
    /// runs its own compile/run scripts; the session hands out up to this
    /// many configurations at once. When resuming from a journal, the
    /// journal's recorded window takes precedence so replay is exact.
    pub workers: usize,
    /// Stream structured trace events (NDJSON, one JSON object per line) to
    /// this file: space generation, handouts, reports, eval latencies,
    /// retries, breaker trips, worker busy/idle, and the final abort.
    pub trace: Option<PathBuf>,
    /// Collect a metrics snapshot (latency histogram, failure taxonomy,
    /// throughput, worker utilization) and attach it to the outcome.
    pub metrics: bool,
    /// Treat a run-journal write failure as fatal. By default the session
    /// degrades instead: journaling stops, tuning continues in memory, and
    /// the outcome carries a warning.
    pub strict_journal: bool,
    /// Base delay before a remote client's first reconnect attempt
    /// (doubling with jitter each attempt; `None` = 200 ms). Local runs
    /// ignore it.
    pub reconnect_backoff: Option<std::time::Duration>,
    /// Directory of the persistent space cache (local runs only). The
    /// generated search space is keyed by a content hash of the parameter
    /// spec; a later run with an identical spec loads it from disk instead
    /// of regenerating.
    pub space_cache: Option<PathBuf>,
    /// Cap the space cache's total size in megabytes; exceeding it evicts
    /// least-recently-used entries after each store (`None` = unbounded).
    pub space_cache_max_mb: Option<u64>,
    /// Campaign wiring for this run, when it executes as a campaign node:
    /// the shared budget and cancel flag are composed into the session's
    /// abort condition (budget charged at handout granularity), and the
    /// fired flags tell the campaign runner *why* the run stopped.
    pub campaign: Option<atf_core::campaign::CampaignHooks>,
}

impl RunOptions {
    /// The [`EvalPolicy`] these options describe.
    pub fn policy(&self) -> EvalPolicy {
        EvalPolicy {
            timeout: self.timeout,
            max_retries: self.retries,
            max_consecutive_failures: self.breaker,
            ..EvalPolicy::default()
        }
    }
}

/// Jitter seed for retry backoff: fixed so CLI runs are reproducible
/// (jitter only staggers sleeps, it never affects the search).
const RETRY_JITTER_SEED: u64 = 0x5eed;

/// Journal checkpoint interval for CLI-journaled runs: after this many
/// appends the journal compacts into an atomically-renamed checkpoint, so
/// resuming a long run replays a bounded tail instead of the whole history.
const CLI_CHECKPOINT_EVERY: usize = 64;

/// Default base backoff before a remote client's first reconnect (the
/// `--backoff-ms` flag overrides it).
pub const DEFAULT_RECONNECT_BACKOFF: std::time::Duration = std::time::Duration::from_millis(200);

/// How many times a remote run transparently re-attaches (re-opens with
/// `resume`) after the service forgot its session.
const MAX_REATTACHES: u32 = 3;

/// The outcome reported to the CLI user.
#[derive(Debug)]
pub struct CliOutcome {
    /// The tuning result.
    pub result: TuningResult<LexCosts>,
    /// Whether a database record was written (and where).
    pub database: Option<PathBuf>,
    /// Failed evaluations by taxonomy kind (nonzero kinds only).
    pub failures: Vec<(FailureKind, u64)>,
    /// Evaluations replayed from a run journal before tuning continued.
    pub resumed: u64,
    /// Final metrics snapshot (present when the run asked for metrics).
    pub metrics: Option<MetricsSnapshot>,
    /// Why journaling degraded mid-run, if it did: the journal hit a write
    /// error (full disk, permissions) and the session finished in-memory.
    pub journal_degraded: Option<String>,
    /// Wall-clock time spent obtaining the search space (generation, or a
    /// cache load), milliseconds.
    pub space_gen_ms: u64,
    /// Whether the space came from the persistent cache (`None` when no
    /// cache was configured).
    pub space_cache_hit: Option<bool>,
}

/// Runs a tuning specification end to end with default (no-fault-handling)
/// options.
pub fn run(spec: &TuningSpec) -> Result<CliOutcome, CliError> {
    run_with(spec, &RunOptions::default())
}

/// Runs a tuning specification end to end, guarded by `opts`: measurement
/// timeouts and retries wrap the cost function, the circuit breaker arms
/// the session, and the run journal (if any) records every evaluation
/// before it is applied — so a killed run resumes exactly where it died.
pub fn run_with(spec: &TuningSpec, opts: &RunOptions) -> Result<CliOutcome, CliError> {
    let params = spec.build_params()?;
    // The trace sink exists before space generation so the per-group
    // `space_gen` events land in the stream too.
    let trace: Arc<dyn TraceSink> = match &opts.trace {
        Some(path) => Arc::new(FileSink::create(path).map_err(|e| {
            CliError::Spec(format!("cannot create trace file {}: {e}", path.display()))
        })?),
        None => Arc::new(NullSink),
    };
    // Group automatically: independent parameters explore in parallel-
    // generated groups without the user thinking about it. With a space
    // cache, probe it by the spec's content hash before generating; a miss
    // generates (chunked across the leading parameter) and stores the
    // result for the next run.
    let groups = auto_group(params);
    let gen_started = Instant::now();
    let mut cache_hit = None;
    let space = match &opts.space_cache {
        Some(dir) => {
            let cache = SpaceCache::new(dir)
                .with_limits(None, opts.space_cache_max_mb.map(|mb| mb * 1024 * 1024));
            let key = spec_key(&spec.parameters);
            match cache.load(&key) {
                Some(cached) => {
                    trace.emit(&TraceEvent::space_cache(&key, true));
                    cache_hit = Some(true);
                    SearchSpace::from_group_spaces(cached)
                }
                None => {
                    trace.emit(&TraceEvent::space_cache(&key, false));
                    cache_hit = Some(false);
                    let generated = atf_core::spacegen::generate_groups_chunked(
                        &groups,
                        atf_core::spacegen::default_threads(),
                        trace.as_ref(),
                    );
                    if let Err(e) = cache.store(&key, &generated) {
                        eprintln!("atf-tune: could not store space cache entry: {e}");
                    }
                    SearchSpace::from_group_spaces(generated)
                }
            }
        }
        None => SearchSpace::generate_parallel_traced(&groups, trace.as_ref()),
    };
    let space_gen = gen_started.elapsed();
    let policy = opts.policy();
    let workers = opts.workers.max(1);
    let space_len = space.len();

    let mut session =
        TuningSession::<LexCosts>::new(space, spec.build_technique()?).map_err(CliError::Tuning)?;
    match (&opts.campaign, spec.build_abort()) {
        // A campaign node wraps its abort (the spec's, or the session
        // default of one full sweep) with the shared budget and cancel
        // checks — both evaluated at handout time, so the budget is
        // charged per admitted configuration.
        (Some(hooks), base) => {
            let base = base
                .unwrap_or_else(|| abort::evaluations(space_len.try_into().unwrap_or(u64::MAX)));
            session = session.abort_condition(hooks.wrap_abort(base));
        }
        (None, Some(a)) => session = session.abort_condition(a),
        (None, None) => {}
    }
    session = session
        .eval_policy(&policy)
        .max_pending(workers)
        .trace_to(Arc::clone(&trace))
        .strict_journal(opts.strict_journal)
        .journal_checkpoint_every(CLI_CHECKPOINT_EVERY);
    let metrics = Arc::clone(session.metrics());
    metrics
        .space_gen_micros
        .add(u64::try_from(space_gen.as_micros()).unwrap_or(u64::MAX));
    match cache_hit {
        Some(true) => metrics.space_cache_hits.inc(),
        Some(false) => metrics.space_cache_misses.inc(),
        None => {}
    }
    let mut resumed = 0;
    if let Some(path) = &opts.journal {
        if opts.resume && path.exists() {
            // Adopts the journal's window, overriding `workers` as the
            // pending cap: replay must hand out tickets exactly as the
            // original run did.
            resumed = session
                .resume_from_journal(path)
                .map_err(CliError::Tuning)?;
        } else {
            session = session.journal_to(path).map_err(CliError::Tuning)?;
        }
    }

    // One cost-function instance per worker: concurrent runs must not race
    // on the spec's log file (`for_worker` re-targets it, scripts follow
    // via `ATF_LOG_FILE`), and the retry jitter stream must not be shared.
    // Each carries the run's observability: script executions become `proc`
    // events, retries become `retry` events and counter increments.
    let build_cf = |worker: usize| {
        let mut process_cf = spec.build_cost_function().for_worker(worker);
        if let Some(t) = opts.timeout {
            process_cf = process_cf.timeout(t);
        }
        process_cf = process_cf.trace_to(Arc::clone(&trace));
        with_policy_send_observed(
            process_cf,
            &policy,
            RETRY_JITTER_SEED + worker as u64,
            Arc::clone(&trace),
            Arc::clone(&metrics),
        )
    };

    if workers > 1 {
        let cost_functions: Vec<_> = (0..workers).map(build_cf).collect();
        atf_core::parallel::drive_session(&mut session, cost_functions);
    } else {
        // Serial drive gets the same worker telemetry as the pool, so the
        // utilization metric and busy/idle events mean the same thing at
        // every worker count.
        metrics.set_workers(1);
        let mut cf = build_cf(0);
        while let Some(config) = session.next_config() {
            let ticket = session.oldest_in_flight().unwrap_or_default();
            trace.emit(&TraceEvent::worker_busy(0, ticket));
            metrics.worker_busy();
            let started = Instant::now();
            let outcome = cf.evaluate(&config);
            let busy = started.elapsed();
            metrics.worker_idle(busy);
            trace.emit(&TraceEvent::worker_idle(
                0,
                u64::try_from(busy.as_micros()).unwrap_or(u64::MAX),
            ));
            session.report(outcome).map_err(CliError::Tuning)?;
        }
    }
    let failures = session.status().failure_counts();
    let journal_degraded = session.journal_degraded().map(String::from);
    let result = session.finish().map_err(CliError::Tuning)?;
    trace.flush();
    let snapshot = opts.metrics.then(|| metrics.snapshot());

    let mut database = None;
    if let Some(db_path) = &spec.database {
        let mut db = if db_path.exists() {
            TuningDatabase::load(db_path).map_err(|e| CliError::Database(e.to_string()))?
        } else {
            TuningDatabase::new()
        };
        let (kernel, device, workload) = database_key(spec);
        db.store(
            &kernel,
            &device,
            &workload,
            &result.best_config,
            result.best_cost.first().copied().unwrap_or(f64::INFINITY),
            result.evaluations,
            result.space_size,
        );
        db.save(db_path)
            .map_err(|e| CliError::Database(e.to_string()))?;
        database = Some(db_path.clone());
    }
    Ok(CliOutcome {
        result,
        database,
        failures,
        resumed,
        metrics: snapshot,
        journal_degraded,
        space_gen_ms: space_gen.as_millis() as u64,
        space_cache_hit: cache_hit,
    })
}

/// The database key of a specification: `(kernel, device, workload)`.
pub fn database_key(spec: &TuningSpec) -> (String, String, String) {
    let kernel = spec.kernel_name.clone().unwrap_or_else(|| {
        spec.program
            .source
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "program".to_string())
    });
    let device = spec
        .device_name
        .clone()
        .unwrap_or_else(|| "local".to_string());
    let workload = spec.workload.clone().unwrap_or_default();
    (kernel, device, workload)
}

/// The service-session view of a specification (everything but the
/// program, which stays local: the service owns the search, this process
/// owns the measurement).
pub fn session_spec(spec: &TuningSpec) -> atf_service::SessionSpec {
    let (kernel, device, workload) = database_key(spec);
    atf_service::SessionSpec {
        kernel,
        device: Some(device),
        workload: Some(workload),
        tenant: None,
        parameters: spec.parameters.clone(),
        search: Some(spec.search.clone()),
        abort: Some(spec.abort.clone()),
        resume: false,
        breaker: None,
        max_pending: None,
    }
}

fn wire_to_config(wire: &atf_service::client::WireConfig) -> Config {
    Config::from_pairs(wire.iter().map(|(n, v)| (n.as_str(), Value::UInt(*v))))
}

/// Drives a remote tuning session end to end over any service transport:
/// opens a session from the specification, measures each configuration the
/// service hands out with the spec's program, and returns the service's
/// final result.
pub fn run_remote<T: atf_service::Transport>(
    spec: &TuningSpec,
    client: &mut atf_service::Client<T>,
) -> Result<atf_service::Response, CliError> {
    run_remote_with(spec, client, &RunOptions::default())
}

/// Whether a client error means the service forgot the session (it expired
/// or the service restarted) — the case a remote run can transparently
/// recover from by re-opening with `resume`.
fn is_unknown_session(e: &atf_service::ClientError) -> bool {
    matches!(e, atf_service::ClientError::Remote { code, .. }
             if code == atf_service::proto::codes::UNKNOWN_SESSION)
}

/// [`run_remote`] guarded by fault-tolerance options: the local
/// measurements get the policy's timeout and transient-retry loop, failures
/// are reported to the service with their taxonomy class, and `resume` /
/// `breaker` ride along on `open` (the service owns the journal and the
/// circuit breaker; `opts.journal` is ignored here).
///
/// When the service forgets the session mid-run (idle expiry, a service
/// restart), the run transparently re-attaches: it re-opens the same key
/// with `resume: true` — replaying the service-side journal when one exists
/// — and continues, up to a bounded number of re-attaches.
pub fn run_remote_with<T: atf_service::Transport>(
    spec: &TuningSpec,
    client: &mut atf_service::Client<T>,
    opts: &RunOptions,
) -> Result<atf_service::Response, CliError> {
    let mut session = session_spec(spec);
    session.resume = opts.resume;
    session.breaker = opts.breaker;
    let mut process_cf = spec.build_cost_function();
    if let Some(t) = opts.timeout {
        process_cf = process_cf.timeout(t);
    }
    let mut cf = with_policy(process_cf, &opts.policy(), RETRY_JITTER_SEED);
    // Shedding that survives the transport's retry_after_ms-aware retry
    // loop is a capacity verdict, not a failure — keep it distinguishable.
    let service = |e: atf_service::ClientError| match e {
        atf_service::ClientError::Remote {
            ref code,
            ref message,
        } if code == atf_service::proto::codes::OVERLOADED => CliError::Overloaded(message.clone()),
        e => CliError::Service(e.to_string()),
    };
    let (mut id, mut replayed) = client.open_resumable(&session).map_err(service)?;
    let mut reattaches_left = MAX_REATTACHES;
    let mut response = loop {
        // Drive the current session until it is done or the service
        // forgets it. A `None` outcome means the drive completed.
        let drive_error = loop {
            // As a campaign node, check the shared budget and cancel flag
            // before asking for the next handout (this loop is the serial
            // window: charge granularity is exactly one evaluation).
            if let Some(hooks) = &opts.campaign {
                if hooks.cancel_requested() {
                    hooks.mark_cancel_fired();
                    break None;
                }
                if hooks.budget_exhausted() {
                    hooks.mark_budget_fired();
                    break None;
                }
            }
            let wire = match client.next(&id) {
                Ok(Some(w)) => w,
                Ok(None) => break None,
                Err(e) => break Some(e),
            };
            if let Some(hooks) = &opts.campaign {
                if let Some(b) = &hooks.budget {
                    b.charge(1);
                }
            }
            let config = wire_to_config(&wire);
            let reported = match cf.evaluate(&config) {
                Ok(costs) => match costs.first().copied() {
                    Some(cost) => client.report(&id, Some(cost)),
                    None => client.report_failure(&id, FailureKind::BadOutput),
                },
                Err(e) => client.report_failure(&id, e.kind()),
            };
            if let Err(e) = reported {
                break Some(e);
            }
        };
        let finish_error = match drive_error {
            None => match client.finish(&id) {
                Ok(resp) => break resp,
                Err(e) => e,
            },
            Some(e) => e,
        };
        if !is_unknown_session(&finish_error) || reattaches_left == 0 {
            return Err(service(finish_error));
        }
        // Re-attach: the same key, asking the service to replay whatever
        // its journal kept of the lost session's progress.
        reattaches_left -= 1;
        let mut reopened = session.clone();
        reopened.resume = true;
        let (new_id, rep) = client.open_resumable(&reopened).map_err(service)?;
        id = new_id;
        replayed = replayed.max(rep);
    };
    // `resumed` arrives on the `open` response; carry it into the final
    // one so the report can show it.
    if replayed > 0 {
        response.resumed = Some(replayed);
    }
    Ok(response)
}

/// Renders a service response (from `finish` or `lookup`) as the CLI's
/// human-readable report.
pub fn report_remote(response: &atf_service::Response) -> String {
    let mut out = String::new();
    if let Some(s) = &response.space_size {
        out.push_str(&format!("search space: {s} valid configurations\n"));
    }
    if let Some(e) = response.evaluations {
        out.push_str(&format!(
            "evaluated:    {e} ({} valid, {} failed)\n",
            response.valid_evaluations.unwrap_or(0),
            response.failed_evaluations.unwrap_or(0)
        ));
    }
    if let Some(failures) = &response.failures {
        if !failures.is_empty() {
            let rendered: Vec<String> = failures.iter().map(|(k, n)| format!("{k}={n}")).collect();
            out.push_str(&format!("failures:     {}\n", rendered.join(" ")));
        }
    }
    if let Some(n) = response.resumed {
        if n > 0 {
            out.push_str(&format!("resumed:      {n} evaluations replayed\n"));
        }
    }
    if let Some(cfg) = &response.best_config {
        let rendered: Vec<String> = cfg.iter().map(|(n, v)| format!("{n}={v}")).collect();
        out.push_str(&format!("best config:  {}\n", rendered.join(" ")));
    }
    if let Some(c) = response.best_cost {
        out.push_str(&format!("best cost:    {c}\n"));
    }
    if let Some(src) = &response.source {
        out.push_str(&format!("served from:  {src}\n"));
    }
    out
}

/// Renders the outcome as the CLI's human-readable report.
pub fn report(outcome: &CliOutcome) -> String {
    let r = &outcome.result;
    let mut out = String::new();
    out.push_str(&format!(
        "search space: {} valid configurations ({} ms{})\n",
        r.space_size,
        outcome.space_gen_ms,
        match outcome.space_cache_hit {
            Some(true) => ", space cache hit",
            Some(false) => ", space cache miss",
            None => "",
        }
    ));
    out.push_str(&format!(
        "evaluated:    {} ({} valid, {} failed)\n",
        r.evaluations, r.valid_evaluations, r.failed_evaluations
    ));
    if !outcome.failures.is_empty() {
        let rendered: Vec<String> = outcome
            .failures
            .iter()
            .map(|(kind, n)| format!("{}={n}", kind.label()))
            .collect();
        out.push_str(&format!("failures:     {}\n", rendered.join(" ")));
    }
    if outcome.resumed > 0 {
        out.push_str(&format!(
            "resumed:      {} evaluations replayed from the journal\n",
            outcome.resumed
        ));
    }
    out.push_str(&format!("best config:  {}\n", r.best_config));
    out.push_str(&format!("best cost:    {:?}\n", r.best_cost));
    if let Some(db) = &outcome.database {
        out.push_str(&format!("recorded in:  {}\n", db.display()));
    }
    if let Some(why) = &outcome.journal_degraded {
        out.push_str(&format!(
            "WARNING:      journaling degraded mid-run ({why}); the result \
             above is complete, but the journal on disk is not\n"
        ));
    }
    if let Some(snapshot) = &outcome.metrics {
        out.push('\n');
        out.push_str(&snapshot.summary());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn fresh_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("atf-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[cfg(unix)]
    fn write_executable(path: &std::path::Path, body: &str) {
        let mut f = std::fs::File::create(path).unwrap();
        writeln!(f, "#!/bin/sh\n{body}").unwrap();
        use std::os::unix::fs::PermissionsExt;
        std::fs::set_permissions(path, std::fs::Permissions::from_mode(0o755)).unwrap();
    }

    #[test]
    fn spec_parses_from_json() {
        let spec = TuningSpec::from_json(
            r#"{
              "program": {"source": "p.sh", "run": "run.sh"},
              "parameters": [
                {"name": "A", "interval": {"begin": 1, "end": 8}},
                {"name": "B", "set": [1, 2, 4], "constraint": "divides(A)"}
              ],
              "search": {"technique": "exhaustive"},
              "abort": {"evaluations": 10}
            }"#,
        )
        .unwrap();
        assert_eq!(spec.parameters.len(), 2);
        let params = spec.build_params().unwrap();
        assert_eq!(params[0].name(), "A");
        assert!(params[1].constraint().is_some());
    }

    #[test]
    fn spec_rejects_bad_inputs() {
        assert!(TuningSpec::from_json("{}").is_err());
        let both = TuningSpec::from_json(
            r#"{"program": {"source": "p", "run": "r"},
                "parameters": [{"name": "A", "interval": {"begin":1,"end":2}, "set": [1]}]}"#,
        )
        .unwrap();
        assert!(matches!(both.build_params(), Err(CliError::Spec(_))));
        let bad_constraint = TuningSpec::from_json(
            r#"{"program": {"source": "p", "run": "r"},
                "parameters": [{"name": "A", "set": [1], "constraint": "wat(3)"}]}"#,
        )
        .unwrap();
        assert!(matches!(
            bad_constraint.build_params(),
            Err(CliError::Constraint { .. })
        ));
        let bad_technique = TuningSpec::from_json(
            r#"{"program": {"source": "p", "run": "r"},
                "parameters": [{"name": "A", "set": [1]}],
                "search": {"technique": "quantum"}}"#,
        )
        .unwrap();
        assert!(bad_technique.build_technique().is_err());
    }

    #[cfg(unix)]
    #[test]
    fn end_to_end_cli_run_with_database() {
        let dir = fresh_dir("e2e");
        let log = dir.join("cost.log");
        let source = dir.join("prog.sh");
        write_executable(
            &source,
            &format!(
                "B=$ATF_TP_BLOCK\nU=$ATF_TP_UNROLL\nD=$((B - 24)); [ $D -lt 0 ] && D=$((-D))\necho $((10 + D + U)) > {}",
                log.display()
            ),
        );
        let run_sh = dir.join("run.sh");
        write_executable(&run_sh, "sh \"$ATF_SOURCE\"");
        let db_path = dir.join("db.json");

        let spec = TuningSpec::from_json(&format!(
            r#"{{
              "program": {{"source": "{}", "run": "{}", "log_file": "{}"}},
              "parameters": [
                {{"name": "UNROLL", "set": [1, 2, 4]}},
                {{"name": "BLOCK", "interval": {{"begin": 8, "end": 32}},
                  "constraint": "is_multiple_of(UNROLL)"}}
              ],
              "search": {{"technique": "exhaustive"}},
              "database": "{}",
              "kernel_name": "toy",
              "workload": "w1"
            }}"#,
            source.display(),
            run_sh.display(),
            log.display(),
            db_path.display()
        ))
        .unwrap();

        let outcome = run(&spec).unwrap();
        // Optimum: BLOCK=24, UNROLL=1 → cost 11.
        assert_eq!(outcome.result.best_config.get_u64("BLOCK"), 24);
        assert_eq!(outcome.result.best_config.get_u64("UNROLL"), 1);
        assert_eq!(outcome.result.best_cost, vec![11.0]);
        // Database written and loadable.
        let db = TuningDatabase::load(&db_path).unwrap();
        let rec = db.lookup("toy", "local", "w1").unwrap();
        assert_eq!(rec.cost, 11.0);
        // The report mentions the essentials.
        let text = report(&outcome);
        assert!(text.contains("best config"));
        assert!(text.contains("BLOCK=24"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn parallel_run_matches_serial_run_exactly() {
        let dir = fresh_dir("workers");
        let source = dir.join("prog.sh");
        // The parallel-safe log idiom: the script writes wherever
        // ATF_LOG_FILE points, so each worker's runs never collide.
        write_executable(
            &source,
            "B=$ATF_TP_BLOCK\nU=$ATF_TP_UNROLL\nD=$((B - 24)); [ $D -lt 0 ] && D=$((-D))\necho $((10 + D + U)) > \"$ATF_LOG_FILE\"",
        );
        let run_sh = dir.join("run.sh");
        write_executable(&run_sh, "sh \"$ATF_SOURCE\"");
        let spec = TuningSpec::from_json(&format!(
            r#"{{
              "program": {{"source": "{}", "run": "{}", "log_file": "{}"}},
              "parameters": [
                {{"name": "UNROLL", "set": [1, 2, 4]}},
                {{"name": "BLOCK", "interval": {{"begin": 8, "end": 32}},
                  "constraint": "is_multiple_of(UNROLL)"}}
              ],
              "search": {{"technique": "exhaustive"}}
            }}"#,
            source.display(),
            run_sh.display(),
            dir.join("cost.log").display()
        ))
        .unwrap();

        let serial = run_with(
            &spec,
            &RunOptions {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let parallel = run_with(
            &spec,
            &RunOptions {
                workers: 4,
                ..Default::default()
            },
        )
        .unwrap();

        // Exhaustive search proposes independently of reported costs, so
        // the 4-worker run equals the serial run exactly.
        assert_eq!(
            parallel.result.best_config, serial.result.best_config,
            "parallel and serial best configs must agree"
        );
        assert_eq!(parallel.result.best_cost, serial.result.best_cost);
        assert_eq!(parallel.result.evaluations, serial.result.evaluations);
        assert_eq!(serial.result.best_config.get_u64("BLOCK"), 24);
        assert_eq!(serial.result.best_config.get_u64("UNROLL"), 1);
        assert_eq!(serial.result.best_cost, vec![11.0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn remote_session_over_loopback_matches_local_run() {
        use std::sync::Arc;

        let dir = fresh_dir("loopback");
        let log = dir.join("cost.log");
        let source = dir.join("prog.sh");
        write_executable(
            &source,
            &format!(
                "B=$ATF_TP_BLOCK\nD=$((B - 20)); [ $D -lt 0 ] && D=$((-D))\necho $((5 + D)) > {}",
                log.display()
            ),
        );
        let run_sh = dir.join("run.sh");
        write_executable(&run_sh, "sh \"$ATF_SOURCE\"");
        let spec = TuningSpec::from_json(&format!(
            r#"{{
              "program": {{"source": "{}", "run": "{}", "log_file": "{}"}},
              "parameters": [{{"name": "BLOCK", "interval": {{"begin": 8, "end": 32}}}}],
              "search": {{"technique": "exhaustive"}},
              "kernel_name": "loopback-toy"
            }}"#,
            source.display(),
            run_sh.display(),
            log.display()
        ))
        .unwrap();

        let local = run(&spec).unwrap();

        let manager = Arc::new(atf_service::SessionManager::in_memory());
        let mut client = atf_service::Client::loopback(Arc::clone(&manager));
        let remote = run_remote(&spec, &mut client).unwrap();

        // The remote session explores the same space with the same
        // technique, so the results agree exactly.
        let remote_best = remote.best_config.as_ref().unwrap();
        assert_eq!(
            remote_best["BLOCK"],
            local.result.best_config.get_u64("BLOCK")
        );
        assert_eq!(remote.best_cost, local.result.best_cost.first().copied());
        assert_eq!(remote.evaluations, Some(local.result.evaluations));

        // The finished session is now in the service's database.
        let hit = client.lookup("loopback-toy", None, None).unwrap().unwrap();
        assert_eq!(hit.best_cost, remote.best_cost);
        assert_eq!(hit.source.as_deref(), Some("database"));

        let text = report_remote(&remote);
        assert!(text.contains("best config"));
        assert!(text.contains("BLOCK=20"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn abort_or_combination() {
        let dir = fresh_dir("abort");
        let log = dir.join("cost.log");
        let source = dir.join("prog.sh");
        write_executable(&source, &format!("echo 5 > {}", log.display()));
        let run_sh = dir.join("run.sh");
        write_executable(&run_sh, "sh \"$ATF_SOURCE\"");
        let spec = TuningSpec::from_json(&format!(
            r#"{{
              "program": {{"source": "{}", "run": "{}", "log_file": "{}"}},
              "parameters": [{{"name": "X", "interval": {{"begin": 1, "end": 1000}}}}],
              "search": {{"technique": "random", "seed": 1}},
              "abort": {{"evaluations": 7, "cost": 0.1}}
            }}"#,
            source.display(),
            run_sh.display(),
            log.display()
        ))
        .unwrap();
        let outcome = run(&spec).unwrap();
        assert_eq!(outcome.result.evaluations, 7); // evaluations fired first
        std::fs::remove_dir_all(&dir).ok();
    }
}
