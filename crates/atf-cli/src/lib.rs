//! # atf-cli — tune any program from a JSON specification
//!
//! The command-line face of the generic cost function (paper, Section II,
//! Step 2): a JSON file declares the program (source + compile/run scripts
//! + optional cost log), the tuning parameters with ranges and *constraint
//! strings* (parsed by [`atf_core::parse`]), the search technique, and the
//! abort conditions; the tool runs the tuning loop and (optionally) records
//! the result in a [`atf_core::db::TuningDatabase`].
//!
//! ```text
//! atf-tune spec.json
//! ```
//!
//! Example specification:
//!
//! ```json
//! {
//!   "program": { "source": "prog.sh", "run": "run.sh", "log_file": "cost.log" },
//!   "parameters": [
//!     { "name": "UNROLL", "set": [1, 2, 4, 8] },
//!     { "name": "BLOCK", "interval": { "begin": 8, "end": 96 },
//!       "constraint": "is_multiple_of(UNROLL)" }
//!   ],
//!   "search": { "technique": "ensemble", "seed": 42 },
//!   "abort": { "evaluations": 200 }
//! }
//! ```

use atf_core::abort::{self, Abort};
use atf_core::param::{auto_group, tp, Param};
use atf_core::parse::parse_constraint;
use atf_core::prelude::*;
use atf_core::process::{LexCosts, ProcessCostFunction};
use serde::Deserialize;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Reading or deserializing the specification failed.
    Spec(String),
    /// A constraint string failed to parse.
    Constraint {
        /// The parameter whose constraint is broken.
        parameter: String,
        /// The parser's message.
        message: String,
    },
    /// Tuning failed (empty space / nothing measurable).
    Tuning(TuningError),
    /// The database could not be read or written.
    Database(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Spec(m) => write!(f, "bad specification: {m}"),
            CliError::Constraint { parameter, message } => {
                write!(f, "bad constraint for `{parameter}`: {message}")
            }
            CliError::Tuning(e) => write!(f, "tuning failed: {e}"),
            CliError::Database(m) => write!(f, "database error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The program under tuning (the generic cost function's inputs).
#[derive(Clone, Debug, Deserialize)]
pub struct ProgramSpec {
    /// Path to the program source (exported as `ATF_SOURCE`).
    pub source: PathBuf,
    /// Script executed to run the program.
    pub run: PathBuf,
    /// Optional script executed before every run.
    #[serde(default)]
    pub compile: Option<PathBuf>,
    /// Optional cost log (comma-separated costs, lexicographic); without
    /// it, wall-clock runtime is the cost.
    #[serde(default)]
    pub log_file: Option<PathBuf>,
}

/// An inclusive integer interval with optional step.
#[derive(Clone, Debug, Deserialize)]
pub struct IntervalSpec {
    /// First value.
    pub begin: u64,
    /// Last value (inclusive).
    pub end: u64,
    /// Step size (default 1).
    #[serde(default = "one")]
    pub step: u64,
}

fn one() -> u64 {
    1
}

/// One tuning parameter.
#[derive(Clone, Debug, Deserialize)]
pub struct ParameterSpec {
    /// Unique name (also the `ATF_TP_<NAME>` environment variable).
    pub name: String,
    /// Interval range (exactly one of `interval`/`set` must be given).
    #[serde(default)]
    pub interval: Option<IntervalSpec>,
    /// Explicit value set.
    #[serde(default)]
    pub set: Option<Vec<u64>>,
    /// Constraint string, e.g. `"divides(N / WPT)"` (see
    /// [`atf_core::parse::parse_constraint`]).
    #[serde(default)]
    pub constraint: Option<String>,
}

/// Search-technique selection.
#[derive(Clone, Debug, Deserialize)]
pub struct SearchSpec {
    /// One of `exhaustive`, `random`, `annealing`, `ensemble` (default).
    #[serde(default = "default_technique")]
    pub technique: String,
    /// RNG seed for deterministic runs.
    #[serde(default)]
    pub seed: u64,
}

fn default_technique() -> String {
    "ensemble".to_string()
}

impl Default for SearchSpec {
    fn default() -> Self {
        SearchSpec {
            technique: default_technique(),
            seed: 0,
        }
    }
}

/// Abort conditions; the given fields are OR-combined (first to fire stops
/// the run). With no field set, the paper's default `evaluations(S)` is
/// used.
#[derive(Clone, Debug, Default, Deserialize)]
pub struct AbortSpec {
    /// Stop after this many tested configurations.
    #[serde(default)]
    pub evaluations: Option<u64>,
    /// Stop after this many seconds.
    #[serde(default)]
    pub duration_secs: Option<f64>,
    /// Stop once a cost ≤ this is found.
    #[serde(default)]
    pub cost: Option<f64>,
    /// Stop when the last `stagnation_evaluations` did not improve the best
    /// cost by ≥ 5 %.
    #[serde(default)]
    pub stagnation_evaluations: Option<u64>,
}

/// The whole tuning specification.
#[derive(Clone, Debug, Deserialize)]
pub struct TuningSpec {
    /// The program under tuning.
    pub program: ProgramSpec,
    /// The tuning parameters (declaration order matters: constraints may
    /// only reference earlier parameters).
    pub parameters: Vec<ParameterSpec>,
    /// Search selection.
    #[serde(default)]
    pub search: SearchSpec,
    /// Abort conditions.
    #[serde(default)]
    pub abort: AbortSpec,
    /// Optional tuning-database path to merge the result into.
    #[serde(default)]
    pub database: Option<PathBuf>,
    /// Database key: kernel/program name (default: the source file name).
    #[serde(default)]
    pub kernel_name: Option<String>,
    /// Database key: device name (default "local").
    #[serde(default)]
    pub device_name: Option<String>,
    /// Database key: workload label.
    #[serde(default)]
    pub workload: Option<String>,
}

impl TuningSpec {
    /// Parses a specification from JSON text.
    pub fn from_json(text: &str) -> Result<Self, CliError> {
        serde_json::from_str(text).map_err(|e| CliError::Spec(e.to_string()))
    }

    /// Loads a specification file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, CliError> {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CliError::Spec(format!("{}: {e}", path.as_ref().display())))?;
        Self::from_json(&text)
    }

    /// Builds the parameter list (parsing constraint strings).
    pub fn build_params(&self) -> Result<Vec<Param>, CliError> {
        if self.parameters.is_empty() {
            return Err(CliError::Spec("no parameters declared".to_string()));
        }
        self.parameters
            .iter()
            .map(|p| {
                let range = match (&p.interval, &p.set) {
                    (Some(iv), None) => Range::interval_step(iv.begin, iv.end, iv.step.max(1)),
                    (None, Some(vals)) => Range::set(vals.iter().copied()),
                    _ => {
                        return Err(CliError::Spec(format!(
                            "parameter `{}` needs exactly one of `interval` or `set`",
                            p.name
                        )))
                    }
                };
                let mut param = tp(p.name.as_str(), range);
                if let Some(text) = &p.constraint {
                    let c = parse_constraint(text).map_err(|e| CliError::Constraint {
                        parameter: p.name.clone(),
                        message: e.to_string(),
                    })?;
                    param = param.with_constraint(c);
                }
                Ok(param)
            })
            .collect()
    }

    fn build_abort(&self) -> Option<Abort> {
        let mut acc: Option<Abort> = None;
        let mut add = |a: Abort| {
            acc = Some(match acc.take() {
                Some(prev) => prev | a,
                None => a,
            });
        };
        if let Some(n) = self.abort.evaluations {
            add(abort::evaluations(n));
        }
        if let Some(s) = self.abort.duration_secs {
            add(abort::duration(Duration::from_secs_f64(s)));
        }
        if let Some(c) = self.abort.cost {
            add(abort::cost(c));
        }
        if let Some(n) = self.abort.stagnation_evaluations {
            add(abort::speedup_over_evaluations(1.05, n));
        }
        acc
    }

    fn build_technique(&self) -> Result<Box<dyn SearchTechnique>, CliError> {
        let seed = self.search.seed;
        Ok(match self.search.technique.as_str() {
            "exhaustive" => Box::new(Exhaustive::new()),
            "random" => Box::new(RandomSearch::with_seed(seed)),
            "annealing" => Box::new(SimulatedAnnealing::with_seed(seed)),
            "ensemble" => Box::new(Ensemble::opentuner_default(seed)),
            other => {
                return Err(CliError::Spec(format!(
                    "unknown technique `{other}` (expected exhaustive, random, annealing, ensemble)"
                )))
            }
        })
    }

    fn build_cost_function(&self) -> ProcessCostFunction {
        let mut cf = ProcessCostFunction::new(&self.program.source, &self.program.run);
        if let Some(c) = &self.program.compile {
            cf = cf.compile_script(c);
        }
        if let Some(l) = &self.program.log_file {
            cf = cf.log_file(l);
        }
        cf
    }
}

/// The outcome reported to the CLI user.
#[derive(Debug)]
pub struct CliOutcome {
    /// The tuning result.
    pub result: TuningResult<LexCosts>,
    /// Whether a database record was written (and where).
    pub database: Option<PathBuf>,
}

/// Runs a tuning specification end to end.
pub fn run(spec: &TuningSpec) -> Result<CliOutcome, CliError> {
    let params = spec.build_params()?;
    // Group automatically: independent parameters explore in parallel-
    // generated groups without the user thinking about it.
    let groups = auto_group(params);
    let mut cf = spec.build_cost_function();
    let mut tuner = Tuner::new().technique(spec.build_technique()?);
    if let Some(a) = spec.build_abort() {
        tuner = tuner.abort_condition(a);
    }
    let result = tuner
        .parallel_generation(groups.len() > 1)
        .tune(&groups, &mut cf)
        .map_err(CliError::Tuning)?;

    let mut database = None;
    if let Some(db_path) = &spec.database {
        let mut db = if db_path.exists() {
            TuningDatabase::load(db_path).map_err(|e| CliError::Database(e.to_string()))?
        } else {
            TuningDatabase::new()
        };
        let kernel = spec.kernel_name.clone().unwrap_or_else(|| {
            spec.program
                .source
                .file_name()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "program".to_string())
        });
        let device = spec.device_name.clone().unwrap_or_else(|| "local".to_string());
        let workload = spec.workload.clone().unwrap_or_default();
        db.store(
            &kernel,
            &device,
            &workload,
            &result.best_config,
            result
                .best_cost
                .first()
                .copied()
                .unwrap_or(f64::INFINITY),
            result.evaluations,
            result.space_size,
        );
        db.save(db_path)
            .map_err(|e| CliError::Database(e.to_string()))?;
        database = Some(db_path.clone());
    }
    Ok(CliOutcome { result, database })
}

/// Renders the outcome as the CLI's human-readable report.
pub fn report(outcome: &CliOutcome) -> String {
    let r = &outcome.result;
    let mut out = String::new();
    out.push_str(&format!(
        "search space: {} valid configurations\n",
        r.space_size
    ));
    out.push_str(&format!(
        "evaluated:    {} ({} valid, {} failed)\n",
        r.evaluations, r.valid_evaluations, r.failed_evaluations
    ));
    out.push_str(&format!("best config:  {}\n", r.best_config));
    out.push_str(&format!("best cost:    {:?}\n", r.best_cost));
    if let Some(db) = &outcome.database {
        out.push_str(&format!("recorded in:  {}\n", db.display()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn fresh_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("atf-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[cfg(unix)]
    fn write_executable(path: &std::path::Path, body: &str) {
        let mut f = std::fs::File::create(path).unwrap();
        writeln!(f, "#!/bin/sh\n{body}").unwrap();
        use std::os::unix::fs::PermissionsExt;
        std::fs::set_permissions(path, std::fs::Permissions::from_mode(0o755)).unwrap();
    }

    #[test]
    fn spec_parses_from_json() {
        let spec = TuningSpec::from_json(
            r#"{
              "program": {"source": "p.sh", "run": "run.sh"},
              "parameters": [
                {"name": "A", "interval": {"begin": 1, "end": 8}},
                {"name": "B", "set": [1, 2, 4], "constraint": "divides(A)"}
              ],
              "search": {"technique": "exhaustive"},
              "abort": {"evaluations": 10}
            }"#,
        )
        .unwrap();
        assert_eq!(spec.parameters.len(), 2);
        let params = spec.build_params().unwrap();
        assert_eq!(params[0].name(), "A");
        assert!(params[1].constraint().is_some());
    }

    #[test]
    fn spec_rejects_bad_inputs() {
        assert!(TuningSpec::from_json("{}").is_err());
        let both = TuningSpec::from_json(
            r#"{"program": {"source": "p", "run": "r"},
                "parameters": [{"name": "A", "interval": {"begin":1,"end":2}, "set": [1]}]}"#,
        )
        .unwrap();
        assert!(matches!(both.build_params(), Err(CliError::Spec(_))));
        let bad_constraint = TuningSpec::from_json(
            r#"{"program": {"source": "p", "run": "r"},
                "parameters": [{"name": "A", "set": [1], "constraint": "wat(3)"}]}"#,
        )
        .unwrap();
        assert!(matches!(
            bad_constraint.build_params(),
            Err(CliError::Constraint { .. })
        ));
        let bad_technique = TuningSpec::from_json(
            r#"{"program": {"source": "p", "run": "r"},
                "parameters": [{"name": "A", "set": [1]}],
                "search": {"technique": "quantum"}}"#,
        )
        .unwrap();
        assert!(bad_technique.build_technique().is_err());
    }

    #[cfg(unix)]
    #[test]
    fn end_to_end_cli_run_with_database() {
        let dir = fresh_dir("e2e");
        let log = dir.join("cost.log");
        let source = dir.join("prog.sh");
        write_executable(
            &source,
            &format!(
                "B=$ATF_TP_BLOCK\nU=$ATF_TP_UNROLL\nD=$((B - 24)); [ $D -lt 0 ] && D=$((-D))\necho $((10 + D + U)) > {}",
                log.display()
            ),
        );
        let run_sh = dir.join("run.sh");
        write_executable(&run_sh, "sh \"$ATF_SOURCE\"");
        let db_path = dir.join("db.json");

        let spec = TuningSpec::from_json(&format!(
            r#"{{
              "program": {{"source": "{}", "run": "{}", "log_file": "{}"}},
              "parameters": [
                {{"name": "UNROLL", "set": [1, 2, 4]}},
                {{"name": "BLOCK", "interval": {{"begin": 8, "end": 32}},
                  "constraint": "is_multiple_of(UNROLL)"}}
              ],
              "search": {{"technique": "exhaustive"}},
              "database": "{}",
              "kernel_name": "toy",
              "workload": "w1"
            }}"#,
            source.display(),
            run_sh.display(),
            log.display(),
            db_path.display()
        ))
        .unwrap();

        let outcome = run(&spec).unwrap();
        // Optimum: BLOCK=24, UNROLL=1 → cost 11.
        assert_eq!(outcome.result.best_config.get_u64("BLOCK"), 24);
        assert_eq!(outcome.result.best_config.get_u64("UNROLL"), 1);
        assert_eq!(outcome.result.best_cost, vec![11.0]);
        // Database written and loadable.
        let db = TuningDatabase::load(&db_path).unwrap();
        let rec = db.lookup("toy", "local", "w1").unwrap();
        assert_eq!(rec.cost, 11.0);
        // The report mentions the essentials.
        let text = report(&outcome);
        assert!(text.contains("best config"));
        assert!(text.contains("BLOCK=24"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn abort_or_combination() {
        let dir = fresh_dir("abort");
        let log = dir.join("cost.log");
        let source = dir.join("prog.sh");
        write_executable(&source, &format!("echo 5 > {}", log.display()));
        let run_sh = dir.join("run.sh");
        write_executable(&run_sh, "sh \"$ATF_SOURCE\"");
        let spec = TuningSpec::from_json(&format!(
            r#"{{
              "program": {{"source": "{}", "run": "{}", "log_file": "{}"}},
              "parameters": [{{"name": "X", "interval": {{"begin": 1, "end": 1000}}}}],
              "search": {{"technique": "random", "seed": 1}},
              "abort": {{"evaluations": 7, "cost": 0.1}}
            }}"#,
            source.display(),
            run_sh.display(),
            log.display()
        ))
        .unwrap();
        let outcome = run(&spec).unwrap();
        assert_eq!(outcome.result.evaluations, 7); // evaluations fired first
        std::fs::remove_dir_all(&dir).ok();
    }
}
