//! The pre-implemented OpenCL cost function (`atf::cf::ocl`, paper
//! Section II, Step 2): builds the kernel with tuning parameters substituted
//! as macros, launches it with global/local sizes given as *arithmetic
//! expressions over tuning parameters* (Section III), and returns the kernel
//! runtime from the profiling event.

use crate::args::{input_rng, random_vec, ArgSpec};
use atf_core::config::Config;
use atf_core::cost::{CostError, CostFunction};
use atf_core::expr::Expr;
use ocl_sim::{
    BufferData, ClError, Context, DefineMap, DeviceModel, ExecMode, KernelArg, Launch, SimKernel,
};
use std::sync::Arc;

/// A verifier invoked after a functional run: receives the context and the
/// resolved kernel arguments, returns an error message when the computed
/// result is wrong.
pub type Verifier = Arc<dyn Fn(&Context, &[KernelArg]) -> Result<(), String> + Send + Sync>;

/// Builder for [`OclCostFunction`].
pub struct OclCostFunctionBuilder {
    device: DeviceModel,
    kernel: Arc<dyn SimKernel>,
    arg_specs: Vec<ArgSpec>,
    global: Vec<Expr>,
    local: Vec<Expr>,
    seed: u64,
    verifier: Option<Verifier>,
    warmups: u32,
}

impl OclCostFunctionBuilder {
    fn new(device: DeviceModel, kernel: Arc<dyn SimKernel>) -> Self {
        OclCostFunctionBuilder {
            device,
            kernel,
            arg_specs: Vec::new(),
            global: Vec::new(),
            local: Vec::new(),
            seed: 0xa7f,
            verifier: None,
            warmups: 0,
        }
    }

    /// Appends a kernel argument (see [`crate::args`]).
    pub fn arg(mut self, spec: ArgSpec) -> Self {
        self.arg_specs.push(spec);
        self
    }

    /// Sets the global size as arithmetic expressions over tuning
    /// parameters — `atf::glb_size(...)`.
    pub fn global_size<I: IntoIterator<Item = Expr>>(mut self, dims: I) -> Self {
        self.global = dims.into_iter().collect();
        self
    }

    /// Sets the local size — `atf::lcl_size(...)`.
    pub fn local_size<I: IntoIterator<Item = Expr>>(mut self, dims: I) -> Self {
        self.local = dims.into_iter().collect();
        self
    }

    /// Seed for random input generation and simulated measurement noise.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables error checking: the kernel runs functionally and `verifier`
    /// validates the result ("Optionally, ATF's OpenCL cost function can
    /// support error checking").
    pub fn verify_with(
        mut self,
        verifier: impl Fn(&Context, &[KernelArg]) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        self.verifier = Some(Arc::new(verifier));
        self
    }

    /// Number of (modelled) warm-up launches before the measured one.
    pub fn warmups(mut self, n: u32) -> Self {
        self.warmups = n;
        self
    }

    /// Resolves argument specs (uploads buffers once) and finishes the cost
    /// function.
    pub fn build(self) -> OclCostFunction {
        assert!(
            !self.global.is_empty(),
            "global size expressions are required"
        );
        assert_eq!(
            self.global.len(),
            self.local.len(),
            "global and local dimensionality must match"
        );
        let mut ctx = Context::new(self.device).with_seed(self.seed);
        let mut rng = input_rng(self.seed);
        let mut args = Vec::with_capacity(self.arg_specs.len());
        let mut initial = Vec::new();
        for spec in &self.arg_specs {
            match spec {
                ArgSpec::Scalar(s) => args.push(KernelArg::Scalar(*s)),
                ArgSpec::RandomScalarF32 => args.push(KernelArg::Scalar(ocl_sim::Scalar::F32(
                    rng.gen_range(-2.0..2.0),
                ))),
                ArgSpec::BufferF32(data) => {
                    let id = ctx.create_buffer_f32(data.clone());
                    initial.push((id, data.clone()));
                    args.push(KernelArg::Buffer(id));
                }
                ArgSpec::RandomBufferF32(n) => {
                    let data: Vec<f32> = random_vec(&mut rng, *n, -2.0f32, 2.0f32);
                    let id = ctx.create_buffer_f32(data.clone());
                    initial.push((id, data));
                    args.push(KernelArg::Buffer(id));
                }
            }
        }
        OclCostFunction {
            ctx,
            kernel: self.kernel,
            args,
            initial_buffers: initial,
            global: self.global,
            local: self.local,
            verifier: self.verifier,
            warmups: self.warmups,
            evaluations: 0,
        }
    }
}

use rand::Rng;

/// The pre-implemented OpenCL cost function: configuration → kernel runtime
/// in nanoseconds.
pub struct OclCostFunction {
    ctx: Context,
    kernel: Arc<dyn SimKernel>,
    args: Vec<KernelArg>,
    initial_buffers: Vec<(ocl_sim::BufferId, Vec<f32>)>,
    global: Vec<Expr>,
    local: Vec<Expr>,
    verifier: Option<Verifier>,
    warmups: u32,
    evaluations: u64,
}

/// `atf::cf::ocl(platform_name, device_name, kernel)` — device selection by
/// name, as in the paper's Listing 2 line 16.
pub fn ocl(
    platform: &str,
    device: &str,
    kernel: impl SimKernel + 'static,
) -> Result<OclCostFunctionBuilder, ClError> {
    let d = ocl_sim::find_device(platform, device)?;
    Ok(OclCostFunctionBuilder::new(d, Arc::new(kernel)))
}

/// `atf::cf::cuda(device_name, kernel)` — the CUDA cost function "is used
/// analogously ... with the only difference that platform's name is omitted,
/// because CUDA targets NVIDIA devices only" (Section II). Backed by the
/// same simulator (NVRTC substitution; see DESIGN.md).
pub fn cuda(
    device: &str,
    kernel: impl SimKernel + 'static,
) -> Result<OclCostFunctionBuilder, ClError> {
    let d = ocl_sim::find_device("NVIDIA", device)?;
    if !d.is_gpu() {
        return Err(ClError::DeviceNotFound(format!(
            "CUDA requires an NVIDIA GPU; `{device}` is not one"
        )));
    }
    Ok(OclCostFunctionBuilder::new(d, Arc::new(kernel)))
}

/// A cost function over an explicit device model (no platform lookup).
pub fn ocl_on(device: DeviceModel, kernel: impl SimKernel + 'static) -> OclCostFunctionBuilder {
    OclCostFunctionBuilder::new(device, Arc::new(kernel))
}

impl OclCostFunction {
    /// The device this cost function measures on.
    pub fn device(&self) -> &DeviceModel {
        self.ctx.device()
    }

    /// Total number of evaluated configurations.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Resolves the launch geometry for a configuration.
    fn launch_for(&self, config: &Config) -> Result<Launch, CostError> {
        let eval_dims = |exprs: &[Expr]| -> Result<Vec<u64>, CostError> {
            exprs
                .iter()
                .map(|e| {
                    e.eval_u64(config).map_err(|err| {
                        CostError::InvalidConfiguration(format!("launch size: {err}"))
                    })
                })
                .collect()
        };
        Ok(Launch::new(
            eval_dims(&self.global)?,
            eval_dims(&self.local)?,
        ))
    }

    /// Restores all buffers to their initial (upload-time) contents — used
    /// in error-checking mode so each functional run starts fresh.
    fn reset_buffers(&mut self) {
        for (id, data) in &self.initial_buffers {
            *self.ctx.buffer(*id).borrow_mut() = BufferData::F32(data.clone());
        }
    }

    /// Evaluates one configuration and returns the kernel runtime in
    /// nanoseconds *and* the simulated energy in microjoules — the paper's
    /// multi-objective pair `(runtime, energy)` (Section II, Step 2).
    pub fn measure_with_energy(&mut self, config: &Config) -> Result<(f64, f64), CostError> {
        let event = self.measure_event(config)?;
        Ok((event.duration_ns(), event.energy_uj()))
    }

    /// Evaluates one configuration and returns the kernel runtime in
    /// nanoseconds.
    pub fn measure(&mut self, config: &Config) -> Result<f64, CostError> {
        Ok(self.measure_event(config)?.duration_ns())
    }

    /// Evaluates one configuration and returns the full profiling event.
    pub fn measure_event(&mut self, config: &Config) -> Result<ocl_sim::ProfilingEvent, CostError> {
        self.evaluations += 1;
        let defines: DefineMap = config
            .iter()
            .map(|(name, value)| (name.to_string(), value.to_source_token()))
            .collect();
        let launch = self.launch_for(config)?;
        let mode = if self.verifier.is_some() {
            ExecMode::Functional
        } else {
            ExecMode::ModelOnly
        };
        if mode == ExecMode::Functional {
            self.reset_buffers();
        }
        for _ in 0..self.warmups {
            self.ctx
                .enqueue_kernel(
                    self.kernel.as_ref(),
                    &self.args,
                    &launch,
                    &defines,
                    ExecMode::ModelOnly,
                )
                .map_err(map_cl_error)?;
        }
        let event = self
            .ctx
            .enqueue_kernel(self.kernel.as_ref(), &self.args, &launch, &defines, mode)
            .map_err(map_cl_error)?;
        if let Some(verifier) = &self.verifier {
            verifier(&self.ctx, &self.args).map_err(CostError::MeasurementFailed)?;
        }
        Ok(event)
    }
}

impl CostFunction for OclCostFunction {
    type Cost = f64;

    fn evaluate(&mut self, config: &Config) -> Result<f64, CostError> {
        self.measure(config)
    }
}

/// Maps simulator errors onto the tuner's cost-error taxonomy.
pub fn map_cl_error(e: ClError) -> CostError {
    match e {
        ClError::BuildProgramFailure(m) => CostError::CompileFailed(m),
        ClError::InvalidWorkGroupSize(m)
        | ClError::InvalidKernelArgs(m)
        | ClError::OutOfResources(m)
        | ClError::InvalidBuffer(m) => CostError::InvalidConfiguration(m),
        ClError::InvalidWorkDimension(d) => {
            CostError::InvalidConfiguration(format!("{d} NDRange dimensions"))
        }
        ClError::DeviceNotFound(m) => CostError::RunFailed(m),
        ClError::VerificationFailed(m) => CostError::MeasurementFailed(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atf_core::expr::{cst, param};
    use clblast::SaxpyKernel;

    const N: u64 = 1 << 14;

    fn saxpy_cf() -> OclCostFunction {
        ocl("NVIDIA", "Tesla K20c", SaxpyKernel)
            .unwrap()
            .arg(crate::args::scalar(ocl_sim::Scalar::U64(N)))
            .arg(crate::args::scalar_random_f32())
            .arg(crate::args::buffer_random_f32(N as usize))
            .arg(crate::args::buffer_random_f32(N as usize))
            .global_size([cst(N) / param("WPT")])
            .local_size([param("LS")])
            .build()
    }

    #[test]
    fn measures_valid_configs() {
        let mut cf = saxpy_cf();
        let cfg = Config::from_pairs([("WPT", 4u64), ("LS", 64u64)]);
        let t = cf.measure(&cfg).unwrap();
        assert!(t > 0.0);
        assert_eq!(cf.evaluations(), 1);
    }

    #[test]
    fn rejects_invalid_local_size() {
        let mut cf = saxpy_cf();
        let cfg = Config::from_pairs([("WPT", 4u64), ("LS", 7u64)]);
        assert!(matches!(
            cf.measure(&cfg),
            Err(CostError::InvalidConfiguration(_))
        ));
    }

    #[test]
    fn rejects_missing_parameter() {
        let mut cf = saxpy_cf();
        let cfg = Config::from_pairs([("LS", 64u64)]); // WPT undefined
        let err = cf.measure(&cfg).unwrap_err();
        // WPT is needed both by the launch expression and the kernel build.
        assert!(matches!(
            err,
            CostError::InvalidConfiguration(_) | CostError::CompileFailed(_)
        ));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let t1 = {
            let mut cf = saxpy_cf();
            cf.measure(&Config::from_pairs([("WPT", 2u64), ("LS", 32u64)]))
                .unwrap()
        };
        let t2 = {
            let mut cf = saxpy_cf();
            cf.measure(&Config::from_pairs([("WPT", 2u64), ("LS", 32u64)]))
                .unwrap()
        };
        assert_eq!(t1, t2);
    }

    #[test]
    fn error_checking_catches_wrong_results() {
        // A verifier that always rejects — the cost function must surface it
        // as a measurement failure.
        let mut cf = ocl("NVIDIA", "Tesla K20c", SaxpyKernel)
            .unwrap()
            .arg(crate::args::scalar(ocl_sim::Scalar::U64(64)))
            .arg(crate::args::scalar(1.0f32))
            .arg(crate::args::buffer(vec![1.0; 64]))
            .arg(crate::args::buffer(vec![0.0; 64]))
            .global_size([cst(64u64) / param("WPT")])
            .local_size([param("LS")])
            .verify_with(|_, _| Err("always wrong".into()))
            .build();
        let cfg = Config::from_pairs([("WPT", 1u64), ("LS", 8u64)]);
        assert!(matches!(
            cf.measure(&cfg),
            Err(CostError::MeasurementFailed(m)) if m == "always wrong"
        ));
    }

    #[test]
    fn error_checking_verifies_real_results() {
        // saxpy with a = 1, x = 1s, y = 0s → y must become all-1s.
        let mut cf = ocl("NVIDIA", "Tesla K20c", SaxpyKernel)
            .unwrap()
            .arg(crate::args::scalar(ocl_sim::Scalar::U64(64)))
            .arg(crate::args::scalar(1.0f32))
            .arg(crate::args::buffer(vec![1.0; 64]))
            .arg(crate::args::buffer(vec![0.0; 64]))
            .global_size([cst(64u64) / param("WPT")])
            .local_size([param("LS")])
            .verify_with(|ctx, args| {
                let KernelArg::Buffer(y) = args[3] else {
                    return Err("arg 3 not a buffer".into());
                };
                let y = ctx.buffer(y).borrow_f32().clone();
                if y.iter().all(|&v| v == 1.0) {
                    Ok(())
                } else {
                    Err("saxpy result wrong".into())
                }
            })
            .build();
        // Two different configurations must BOTH verify (buffers reset
        // between evaluations — without the reset y would accumulate to 2).
        for (wpt, ls) in [(1u64, 8u64), (4, 16)] {
            let cfg = Config::from_pairs([("WPT", wpt), ("LS", ls)]);
            cf.measure(&cfg)
                .unwrap_or_else(|e| panic!("WPT={wpt}, LS={ls}: {e}"));
        }
    }

    #[test]
    fn energy_measurement_is_consistent() {
        let mut cf = saxpy_cf();
        let cfg = Config::from_pairs([("WPT", 2u64), ("LS", 64u64)]);
        let (ns, uj) = cf.measure_with_energy(&cfg).unwrap();
        assert!(ns > 0.0 && uj > 0.0);
        // Power = energy/time must lie between idle and idle+dynamic.
        let watts = uj * 1e3 / ns;
        let d = cf.device();
        assert!(watts >= d.idle_watts && watts <= d.idle_watts + d.peak_dynamic_watts);
    }

    #[test]
    fn cuda_variant_rejects_cpu() {
        assert!(cuda("Xeon", SaxpyKernel).is_err());
        assert!(cuda("Tesla K20m", SaxpyKernel).is_ok());
    }

    #[test]
    fn device_accessor() {
        let cf = saxpy_cf();
        assert_eq!(cf.device().name, "Tesla K20c");
    }
}
