//! # atf-ocl — ATF's pre-implemented OpenCL and CUDA cost functions
//!
//! The paper's `atf::cf::ocl` / `atf::cf::cuda` (Section II, Step 2),
//! implemented against the simulated OpenCL platform of [`ocl_sim`]:
//!
//! * device selection by platform/device **name** ([`cost::ocl`]) instead of
//!   CLTune's numeric ids;
//! * random input generation with `atf::scalar<T>()` / `atf::buffer<T>(N)`
//!   ([`args`]), uploaded once at initialization;
//! * global/local sizes as **arithmetic expressions over tuning parameters**
//!   ([`cost::OclCostFunctionBuilder::global_size`]) — the expressiveness
//!   CLTune's `DivGlobalSize`/`MulLocalSize` lacks (Section III);
//! * runtime measurement via the (simulated) OpenCL profiling API;
//! * optional error checking of computed results.

pub mod args;
pub mod cost;

pub use args::{buffer, buffer_random_f32, scalar, scalar_random_f32, ArgSpec};
pub use cost::{cuda, map_cl_error, ocl, ocl_on, OclCostFunction, OclCostFunctionBuilder};
