//! Kernel-argument specifications for the pre-implemented cost functions.
//!
//! Mirrors the paper's input helpers (Section II, Step 2):
//! `atf::scalar<T>()` generates a random scalar, `atf::buffer<T>(N)` a
//! buffer of N random elements ("random data is the default input when
//! auto-tuning OpenCL kernels"); `atf::scalar(a)` / `atf::buffer(vec)` pass
//! concrete data. Buffers are uploaded **once** at cost-function
//! initialization — "to avoid the usually time-intensive host-to-device
//! transfers, we upload data only once during cost function's
//! initialization".

use ocl_sim::Scalar;
use rand::distributions::uniform::SampleUniform;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One kernel-argument specification, resolved to a concrete argument at
/// cost-function initialization.
#[derive(Clone, Debug)]
pub enum ArgSpec {
    /// A concrete scalar.
    Scalar(Scalar),
    /// A random `f32` scalar (the paper's `atf::scalar<float>()`).
    RandomScalarF32,
    /// A concrete `f32` buffer (the paper's `atf::buffer(vec)`).
    BufferF32(Vec<f32>),
    /// A buffer of `n` random `f32` values (the paper's
    /// `atf::buffer<float>(N)`).
    RandomBufferF32(usize),
}

/// `atf::scalar(value)` — a concrete scalar argument.
pub fn scalar(value: impl Into<Scalar>) -> ArgSpec {
    ArgSpec::Scalar(value.into())
}

/// `atf::scalar<float>()` — a random `f32` scalar argument.
pub fn scalar_random_f32() -> ArgSpec {
    ArgSpec::RandomScalarF32
}

/// `atf::buffer(vec)` — a concrete `f32` buffer argument.
pub fn buffer(data: Vec<f32>) -> ArgSpec {
    ArgSpec::BufferF32(data)
}

/// `atf::buffer<float>(n)` — a buffer of `n` random `f32` values.
pub fn buffer_random_f32(n: usize) -> ArgSpec {
    ArgSpec::RandomBufferF32(n)
}

/// Fills a vector with uniform random values in `[-2, 2)` (the range the
/// CLTune saxpy sample uses, Listing 3).
pub fn random_vec<T>(rng: &mut ChaCha8Rng, n: usize, lo: T, hi: T) -> Vec<T>
where
    T: SampleUniform + PartialOrd + Copy,
{
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Deterministic RNG for input generation.
pub fn input_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_conversions() {
        assert!(matches!(scalar(1.5f32), ArgSpec::Scalar(Scalar::F32(_))));
        assert!(matches!(scalar(7u64), ArgSpec::Scalar(Scalar::U64(7))));
    }

    #[test]
    fn random_vec_deterministic() {
        let mut r1 = input_rng(5);
        let mut r2 = input_rng(5);
        let a: Vec<f32> = random_vec(&mut r1, 100, -2.0, 2.0);
        let b: Vec<f32> = random_vec(&mut r2, 100, -2.0, 2.0);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-2.0..2.0).contains(v)));
    }

    #[test]
    fn specs_shapes() {
        assert!(matches!(buffer_random_f32(8), ArgSpec::RandomBufferF32(8)));
        assert!(matches!(buffer(vec![1.0]), ArgSpec::BufferF32(_)));
        assert!(matches!(scalar_random_f32(), ArgSpec::RandomScalarF32));
    }
}
