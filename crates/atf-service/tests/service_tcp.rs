//! End-to-end test over a real socket: the service on an ephemeral port,
//! two concurrent client sessions for different kernels, results compared
//! against in-process [`Tuner::tune`] runs on the same seeded spaces, and a
//! restart serving `lookup` from the persisted database without re-tuning.

use atf_core::config::Config;
use atf_core::param::auto_group;
use atf_core::prelude::*;
use atf_core::search::RandomSearch;
use atf_core::space::SearchSpace;
use atf_core::spec::{self, IntervalSpec, ParameterSpec, SearchSpec};
use atf_core::tuner::Tuner;
use atf_service::{Client, ManagerConfig, Server, SessionManager, SessionSpec};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// The two kernels under test: a deterministic synthetic cost surface each,
/// computable from either a wire config or an in-process [`Config`].
fn kernel_cost(kernel: &str, x: u64, y: u64) -> f64 {
    match kernel {
        "gemm" => (x as f64 - 5.0).powi(2) + (y as f64 - 4.0).powi(2) + 1.0,
        "conv" => (x as f64 * y as f64 - 12.0).abs() + 0.5,
        other => panic!("unknown kernel {other}"),
    }
}

fn parameters() -> Vec<ParameterSpec> {
    vec![
        ParameterSpec {
            name: "X".into(),
            interval: Some(IntervalSpec {
                begin: 1,
                end: 8,
                step: 1,
            }),
            set: None,
            constraint: None,
        },
        ParameterSpec {
            name: "Y".into(),
            interval: None,
            set: Some(vec![1, 2, 4, 8]),
            constraint: None,
        },
    ]
}

fn session_spec(kernel: &str, seed: u64) -> SessionSpec {
    let mut s = SessionSpec::new(kernel);
    s.parameters = parameters();
    s.search = Some(SearchSpec {
        technique: "random".into(),
        seed,
    });
    s.abort = Some(AbortSpec {
        evaluations: Some(20),
        ..Default::default()
    });
    s
}

/// The reference: the same seeded search run entirely in-process.
fn reference_result(kernel: &str, seed: u64) -> TuningResult<f64> {
    let params = spec::build_params(&parameters()).unwrap();
    let space = SearchSpace::generate(&auto_group(params));
    let mut cost =
        cost_fn(|config: &Config| kernel_cost(kernel, config.get_u64("X"), config.get_u64("Y")));
    Tuner::new()
        .technique(RandomSearch::with_seed(seed))
        .abort_condition(abort::evaluations(20))
        .tune_space(&space, &mut cost)
        .unwrap()
}

fn wire_as_pairs(wire: &BTreeMap<String, u64>) -> (u64, u64) {
    (wire["X"], wire["Y"])
}

#[test]
fn concurrent_tcp_sessions_match_in_process_tuner_and_persist() {
    let db_path = std::env::temp_dir().join(format!("atf-service-e2e-{}.json", std::process::id()));
    std::fs::remove_file(&db_path).ok();

    // First service lifetime: tune both kernels concurrently over TCP.
    let manager = Arc::new(
        SessionManager::new(ManagerConfig {
            db_path: Some(db_path.clone()),
            idle_timeout: Duration::from_secs(60),
            ..ManagerConfig::default()
        })
        .unwrap(),
    );
    let server = Server::bind("127.0.0.1:0", Arc::clone(&manager)).unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    let tune_over_tcp = |kernel: &'static str, seed: u64| {
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.ping().unwrap();
            client
                .tune(&session_spec(kernel, seed), |wire| {
                    let (x, y) = wire_as_pairs(wire);
                    Some(kernel_cost(kernel, x, y))
                })
                .unwrap()
        })
    };
    let gemm_thread = tune_over_tcp("gemm", 42);
    let conv_thread = tune_over_tcp("conv", 7);
    let gemm = gemm_thread.join().unwrap();
    let conv = conv_thread.join().unwrap();

    // Each remote run must equal the identical in-process run.
    for (kernel, seed, remote) in [("gemm", 42, &gemm), ("conv", 7, &conv)] {
        let expected = reference_result(kernel, seed);
        let remote_best = remote.best_config.as_ref().unwrap();
        assert_eq!(
            remote_best["X"],
            expected.best_config.get_u64("X"),
            "{kernel}: best X differs from in-process tuner"
        );
        assert_eq!(remote_best["Y"], expected.best_config.get_u64("Y"));
        assert_eq!(remote.best_cost, Some(expected.best_cost));
        assert_eq!(remote.evaluations, Some(expected.evaluations));
        assert_eq!(remote.space_size.as_deref(), Some("32"));
    }

    shutdown.signal();
    server_thread.join().unwrap().unwrap();
    assert!(db_path.exists(), "database was not persisted");

    // Second service lifetime: a fresh manager loads the persisted
    // database and serves `lookup` without any tuning.
    let manager2 = Arc::new(
        SessionManager::new(ManagerConfig {
            db_path: Some(db_path.clone()),
            idle_timeout: Duration::from_secs(60),
            ..ManagerConfig::default()
        })
        .unwrap(),
    );
    let server2 = Server::bind("127.0.0.1:0", Arc::clone(&manager2)).unwrap();
    let addr2 = server2.local_addr().unwrap();
    let shutdown2 = server2.shutdown_handle();
    let server2_thread = std::thread::spawn(move || server2.run());

    let mut client = Client::connect(addr2).unwrap();
    for (kernel, tuned) in [("gemm", &gemm), ("conv", &conv)] {
        let hit = client.lookup(kernel, None, None).unwrap().unwrap();
        assert_eq!(hit.source.as_deref(), Some("database"));
        assert_eq!(hit.best_cost, tuned.best_cost);
        assert_eq!(&hit.best_config, &tuned.best_config);
    }
    assert!(client.lookup("never-tuned", None, None).unwrap().is_none());
    assert_eq!(manager2.live_sessions(), 0, "lookup must not open sessions");

    shutdown2.signal();
    server2_thread.join().unwrap().unwrap();
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn malformed_lines_get_structured_errors_over_tcp() {
    use std::io::{BufRead, BufReader, Write};

    let manager = Arc::new(SessionManager::in_memory());
    let server = Server::bind("127.0.0.1:0", manager).unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut roundtrip = |line: &str| -> atf_service::Response {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        serde_json::from_str(reply.trim()).unwrap()
    };

    let r = roundtrip("{nope");
    assert!(!r.ok);
    assert_eq!(r.code.as_deref(), Some("parse"));

    let r = roundtrip("{\"cmd\":\"teleport\"}");
    assert_eq!(r.code.as_deref(), Some("unknown_cmd"));

    let r = roundtrip("{\"cmd\":\"open\"}");
    assert_eq!(r.code.as_deref(), Some("bad_request"));

    let r = roundtrip("{\"cmd\":\"ping\"}");
    assert!(r.ok);

    shutdown.signal();
    server_thread.join().unwrap().unwrap();
}
