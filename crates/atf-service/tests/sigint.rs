//! Reinstalling the SIGINT handler must leak nothing: the previous
//! self-pipe's fds are closed and the stranded watcher thread is joined,
//! and SIGINT routes to the *latest* install only. Lives in its own test
//! binary so fd/thread counting is not perturbed by parallel tests.

#![cfg(unix)]

use atf_service::{Server, SessionManager};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn open_fds() -> Option<usize> {
    Some(std::fs::read_dir("/proc/self/fd").ok()?.count())
}

fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

#[test]
fn sigint_reinstall_leaks_no_fds_and_routes_to_latest_server() {
    extern "C" {
        fn raise(sig: i32) -> i32;
    }
    const SIGINT: i32 = 2;

    let first = Server::bind("127.0.0.1:0", Arc::new(SessionManager::in_memory())).unwrap();
    let latest = Server::bind("127.0.0.1:0", Arc::new(SessionManager::in_memory())).unwrap();

    // Every install owns one pipe (2 fds) and one watcher thread; each
    // reinstall must retire the previous pair completely, so fd and
    // thread counts stay flat however often it is called.
    first.install_sigint();
    let fds_baseline = open_fds();
    let threads_baseline = process_threads();
    for _ in 0..8 {
        latest.install_sigint();
    }
    if let (Some(before), Some(after)) = (fds_baseline, open_fds()) {
        assert_eq!(
            after, before,
            "8 reinstalls changed the open-fd count — the old self-pipe leaks"
        );
    }
    if let (Some(before), Some(after)) = (threads_baseline, process_threads()) {
        assert_eq!(
            after, before,
            "8 reinstalls changed the thread count — stale watchers are stranded"
        );
    }

    // SIGINT reaches the most recent install only: the first server's
    // watcher was retired before any signal fired.
    unsafe {
        raise(SIGINT);
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while !latest.shutdown_handle().is_signaled() {
        assert!(
            Instant::now() < deadline,
            "SIGINT never reached the latest install's shutdown handle"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        !first.shutdown_handle().is_signaled(),
        "a retired install must no longer receive SIGINT"
    );

    // Repeated SIGINT stays idempotent (the watcher keeps draining).
    unsafe {
        raise(SIGINT);
    }
    std::thread::sleep(Duration::from_millis(50));
    assert!(latest.shutdown_handle().is_signaled());
}
