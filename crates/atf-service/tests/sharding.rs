//! Differential sharding tests: the lock-striped session manager must be
//! observably identical to the single-lock manager (shards = 1, literally
//! one `Mutex<HashMap>` — the old layout) under arbitrary interleavings of
//! open / dup-open / next / dup-next / report / finish / expire / forfeit
//! ops. Every response is compared byte-for-byte across 1, 4, and 16
//! shards, and final statuses, live-session counts, tenant accounting,
//! dedup replays, and database contents must agree for every sampled
//! seed. Plus the slow-persist regression: database file I/O must never
//! block wire ops on live sessions.

use atf_service::{AdmissionConfig, ManagerConfig, Request, SessionManager, TenantUsage};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Shard counts under differential test; index 0 is the single-lock
/// reference oracle.
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// An `open` for X in 1..=6 (exhaustive, deterministic). Kernel and
/// tenant vary with `a` so sessions spread over database keys and tenant
/// quota buckets.
fn open_request(a: u8, rid: &str) -> Request {
    use atf_core::spec::{IntervalSpec, ParameterSpec, SearchSpec};
    let mut req = Request::new("open");
    req.kernel = Some(format!("k{}", a % 3));
    req.tenant = Some(format!("t{}", a % 2));
    req.request_id = Some(rid.to_string());
    req.parameters = Some(vec![ParameterSpec {
        name: "X".into(),
        interval: Some(IntervalSpec {
            begin: 1,
            end: 6,
            step: 1,
        }),
        set: None,
        constraint: None,
    }]);
    req.search = Some(SearchSpec {
        technique: "exhaustive".into(),
        seed: 0,
    });
    req
}

/// A manager under test. `idle_timeout` zero makes the expire op evict
/// every live session on all managers alike; `eval_deadline` zero makes
/// every `next` forfeit the previously handed-out configuration first, so
/// forfeiture fires deterministically regardless of shard count.
fn manager(shards: usize) -> SessionManager {
    SessionManager::new(ManagerConfig {
        idle_timeout: Duration::ZERO,
        eval_deadline: Some(Duration::ZERO),
        admission: AdmissionConfig {
            max_sessions: Some(4),
            max_sessions_per_tenant: Some(3),
            max_inflight_per_tenant: Some(2),
            ..AdmissionConfig::default()
        },
        shards: Some(shards),
        ..ManagerConfig::default()
    })
    .expect("in-memory manager")
}

/// Applies one request to every manager and asserts the serialized
/// responses are identical; returns the reference manager's response.
fn apply(
    managers: &[SessionManager],
    req: &Request,
) -> Result<atf_service::Response, TestCaseError> {
    let reference = managers[0].handle(req);
    let reference_wire = serde_json::to_string(&reference).unwrap();
    for (m, &shards) in managers.iter().zip(&SHARD_COUNTS).skip(1) {
        let wire = serde_json::to_string(&m.handle(req)).unwrap();
        prop_assert_eq!(
            &reference_wire,
            &wire,
            "response diverged at {} shards for {:?}",
            shards,
            req
        );
    }
    Ok(reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline differential test: any op interleaving produces
    /// byte-identical responses and final state at 1, 4, and 16 shards.
    #[test]
    fn sharded_manager_is_observably_identical_to_single_lock(
        ops in proptest::collection::vec((0u8..8, 0u8..4), 1..48)
    ) {
        let managers: Vec<SessionManager> =
            SHARD_COUNTS.iter().map(|&s| manager(s)).collect();
        // Session ids are assigned identically across managers (serial op
        // stream, deterministic counter), so one live-id list serves all.
        let mut live: Vec<String> = Vec::new();
        let mut last_open: Option<Request> = None;
        let mut last_next: Option<Request> = None;
        let mut seq = 0u32;
        for (op, a) in ops {
            seq += 1;
            let pick = |live: &Vec<String>| -> String {
                if live.is_empty() {
                    "s999".to_string() // unknown on every manager alike
                } else {
                    live[a as usize % live.len()].clone()
                }
            };
            match op {
                0 => {
                    let req = open_request(a, &format!("o{seq}"));
                    let resp = apply(&managers, &req)?;
                    if let Some(id) = resp.session {
                        live.push(id);
                    }
                    last_open = Some(req);
                }
                1 => {
                    // Dup-open: the retry must replay the cached response,
                    // not create a twin session — live list unchanged.
                    if let Some(req) = &last_open {
                        let before = managers[0].live_sessions();
                        let resp = apply(&managers, req)?;
                        if resp.ok {
                            prop_assert_eq!(managers[0].live_sessions(), before);
                        }
                    }
                }
                2 => {
                    let mut req = Request::new("next").with_session(&pick(&live));
                    req.request_id = Some(format!("n{seq}"));
                    apply(&managers, &req)?;
                    last_next = Some(req);
                }
                3 => {
                    // Dup-next: same request id replays the same handout.
                    if let Some(req) = &last_next {
                        apply(&managers, req)?;
                    }
                }
                4 => {
                    let mut req = Request::new("report").with_session(&pick(&live));
                    req.cost = Some(f64::from(a) + 0.5);
                    req.valid = Some(true);
                    apply(&managers, &req)?;
                }
                5 => {
                    let id = pick(&live);
                    let mut req = Request::new("finish").with_session(&id);
                    req.request_id = Some(format!("f{seq}"));
                    apply(&managers, &req)?;
                    live.retain(|s| s != &id);
                }
                6 => {
                    // Idle expiry: zero timeout evicts every live session
                    // on every manager; the sweep must agree on the count.
                    std::thread::sleep(Duration::from_millis(1));
                    let expired = managers[0].expire_idle();
                    for m in &managers[1..] {
                        prop_assert_eq!(m.expire_idle(), expired);
                    }
                    live.clear();
                }
                _ => {
                    // Forfeit: the zero eval-deadline makes this `next`
                    // time out whatever the session still held pending.
                    std::thread::sleep(Duration::from_millis(1));
                    let req = Request::new("next").with_session(&pick(&live));
                    apply(&managers, &req)?;
                }
            }
            // Every surviving session answers `status` identically.
            for id in &live {
                apply(&managers, &Request::new("status").with_session(id))?;
            }
        }
        // Final-state equivalence: live sessions, exact tenant accounting,
        // and the merged database must match the single-lock oracle.
        let live_ref = managers[0].live_sessions();
        let usage_ref: BTreeMap<String, TenantUsage> = managers[0].tenant_usage();
        let db_ref = managers[0].with_db(|db| serde_json::to_string(db).unwrap());
        for (m, &shards) in managers.iter().zip(&SHARD_COUNTS).skip(1) {
            prop_assert_eq!(m.live_sessions(), live_ref, "live sessions at {} shards", shards);
            prop_assert_eq!(m.tenant_usage(), usage_ref.clone(), "tenant usage at {} shards", shards);
            prop_assert_eq!(
                m.with_db(|db| serde_json::to_string(db).unwrap()),
                db_ref.clone(),
                "database at {} shards", shards
            );
        }
        // No leaked reservations anywhere: finished/expired sessions gave
        // their capacity back, and what's left is exactly the live set.
        let live_by_usage: usize = usage_ref.values().map(|u| u.sessions).sum();
        prop_assert_eq!(live_by_usage, live_ref);
    }
}

/// Session ids spread over shards (FNV affinity), the `--shards`-style
/// config knob is honored exactly, and per-shard session gauges sum to
/// the live-session count.
#[test]
fn shard_affinity_spreads_sessions_and_gauges_agree() {
    let m = manager(4);
    assert_eq!(m.shard_count(), 4);
    let mut opened = 0;
    for i in 0..16u8 {
        let resp = m.handle(&open_request(i % 2, &format!("aff{i}")));
        if resp.ok {
            opened += 1;
        } else {
            // Quota-limited config: finish one and retry.
            break;
        }
    }
    assert!(opened >= 2, "at least two sessions under the quota");
    let stats = m.handle(&Request::new("stats"));
    let snapshot = stats.stats.expect("service stats");
    assert_eq!(snapshot.shard_sessions.len(), 4);
    assert_eq!(
        snapshot.shard_sessions.iter().sum::<u64>(),
        m.live_sessions() as u64
    );
}

/// The slow-persist regression (the old bug held the db lock across a
/// whole-file rewrite): while `persist` sleeps inside database file I/O,
/// wire ops on live sessions — open, next, report, status, lookup — must
/// all complete without waiting behind it.
#[test]
fn wire_ops_do_not_block_behind_a_slow_persist() {
    let dir = std::env::temp_dir().join(format!("atf-slow-persist-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let manager = std::sync::Arc::new(
        SessionManager::new(ManagerConfig {
            db_path: Some(dir.join("db.json")),
            shards: Some(4),
            ..ManagerConfig::default()
        })
        .unwrap(),
    );
    // Seed the database so persist has something to write, and keep one
    // live session to drive during the stall.
    let seeded = manager.handle(&open_request(0, "seed"));
    assert!(seeded.ok, "{seeded:?}");
    let finished = {
        let id = seeded.session.clone().unwrap();
        loop {
            let next = manager.handle(&Request::new("next").with_session(&id));
            if next.done == Some(true) {
                break manager.handle(&Request::new("finish").with_session(&id));
            }
            if let Some(config) = next.config {
                let mut report = Request::new("report").with_session(&id);
                report.cost = Some(config["X"] as f64);
                assert!(manager.handle(&report).ok);
            }
        }
    };
    assert!(finished.ok, "{finished:?}");
    let live = manager.handle(&open_request(1, "live"));
    assert!(live.ok, "{live:?}");
    let live_id = live.session.unwrap();

    manager.inject_db_io_delay(Duration::from_millis(600));
    let persisting = {
        let manager = manager.clone();
        std::thread::spawn(move || manager.persist())
    };
    // Give the persist thread time to take the log lock and start its
    // artificially slow I/O.
    std::thread::sleep(Duration::from_millis(50));
    assert!(!persisting.is_finished(), "persist must still be stalled");

    let started = Instant::now();
    let next = manager.handle(&Request::new("next").with_session(&live_id));
    assert!(next.ok, "{next:?}");
    let mut report = Request::new("report").with_session(&live_id);
    report.cost = Some(1.0);
    assert!(manager.handle(&report).ok);
    assert!(
        manager
            .handle(&Request::new("status").with_session(&live_id))
            .ok
    );
    let mut lookup = Request::new("lookup");
    lookup.kernel = Some("k0".into());
    assert!(manager.handle(&lookup).ok);
    let opened = manager.handle(&open_request(0, "during"));
    assert!(opened.ok, "{opened:?}");
    let elapsed = started.elapsed();

    assert!(
        !persisting.is_finished(),
        "ops must have finished while persist was still writing \
         (ops took {elapsed:?})"
    );
    assert!(
        elapsed < Duration::from_millis(400),
        "wire ops blocked behind slow persist: {elapsed:?}"
    );
    persisting.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
