//! Chaos equivalence: driving a tuning session through a hostile transport
//! (seeded fault injection — dropped connections, lost ACKs, duplicated
//! and garbled responses, torn writes) must produce *exactly* the same
//! final tuning outcome as the fault-free run, with zero double-counted
//! evaluations. This is the lock on the exactly-once wire semantics:
//! `request_id` stamping + the service's dedup window + the self-healing
//! client together turn an at-least-once transport into exactly-once
//! observable behaviour.

use std::sync::Arc;
use std::time::Duration;

use atf_core::spec::{IntervalSpec, ParameterSpec, SearchSpec};
use atf_service::client::Loopback;
use atf_service::{
    ChaosPlan, ChaosProxy, ChaosState, ChaosTransport, Client, ManagerConfig,
    ReconnectingTransport, Response, Server, SessionManager, SessionSpec,
};
use proptest::prelude::*;

/// X in 1..=16, exhaustive: 16 deterministic evaluations, optimum at 7.
fn toy_spec(kernel: &str) -> SessionSpec {
    let mut spec = SessionSpec::new(kernel);
    spec.parameters = vec![ParameterSpec {
        name: "X".into(),
        interval: Some(IntervalSpec {
            begin: 1,
            end: 16,
            step: 1,
        }),
        set: None,
        constraint: None,
    }];
    spec.search = Some(SearchSpec {
        technique: "exhaustive".into(),
        seed: 0,
    });
    spec
}

fn toy_cost(x: u64) -> f64 {
    (x as f64 - 7.0).abs()
}

/// The final-outcome fields the equivalence check compares.
#[derive(Debug, PartialEq)]
struct Outcome {
    best_config: Option<std::collections::BTreeMap<String, u64>>,
    best_cost: Option<f64>,
    evaluations: Option<u64>,
    valid_evaluations: Option<u64>,
    failed_evaluations: Option<u64>,
    space_size: Option<String>,
}

fn outcome(resp: &Response) -> Outcome {
    Outcome {
        best_config: resp.best_config.clone(),
        best_cost: resp.best_cost,
        evaluations: resp.evaluations,
        valid_evaluations: resp.valid_evaluations,
        failed_evaluations: resp.failed_evaluations,
        space_size: resp.space_size.clone(),
    }
}

/// The fault-free reference run, straight over loopback.
fn reference_outcome() -> Outcome {
    let manager = Arc::new(SessionManager::in_memory());
    let mut client = Client::loopback(manager);
    let resp = client
        .tune(&toy_spec("chaos-toy"), |wire| Some(toy_cost(wire["X"])))
        .expect("fault-free run");
    outcome(&resp)
}

/// Runs the same session through a chaos transport driven by `plan` and a
/// self-healing client, and returns (final outcome, faults injected).
fn chaos_outcome(plan: &ChaosPlan) -> (Outcome, u64) {
    let manager = Arc::new(SessionManager::in_memory());
    let state = ChaosState::new(plan);
    let factory_plan = plan.clone();
    let factory_state = Arc::clone(&state);
    let transport = ReconnectingTransport::new(
        move || {
            Ok(ChaosTransport::new(
                Loopback(Arc::clone(&manager)),
                factory_plan.clone(),
                Arc::clone(&factory_state),
            ))
        },
        // A generous retry budget with microscopic backoff: the test cares
        // about semantics, not wall-clock realism.
        40,
        Duration::from_micros(20),
    );
    let mut client = Client::new(transport);
    let resp = client
        .tune(&toy_spec("chaos-toy"), |wire| Some(toy_cost(wire["X"])))
        .expect("chaos run must converge through retries");
    let total = state.lock().counters().total();
    (outcome(&resp), total)
}

fn assert_chaos_matches_reference(plan: &ChaosPlan) -> u64 {
    let reference = reference_outcome();
    let (chaotic, faults) = chaos_outcome(plan);
    assert_eq!(
        chaotic, reference,
        "fault schedule changed the observable outcome (seed {})",
        plan.seed
    );
    // Zero double counts: every configuration evaluated exactly once.
    assert_eq!(chaotic.evaluations, Some(16));
    assert_eq!(chaotic.space_size.as_deref(), Some("16"));
    faults
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seeded hostile fault schedule yields the same final status and
    /// best configuration as the fault-free run.
    #[test]
    fn any_fault_schedule_matches_fault_free_run(seed in 0u64..=u64::MAX) {
        assert_chaos_matches_reference(&ChaosPlan::hostile(seed));
    }
}

/// Lost-ACK storm: the request is applied but the response never arrives.
/// Without the dedup window every retry would re-report and double-count.
#[test]
fn lost_ack_storm_stays_exactly_once() {
    let mut plan = ChaosPlan::calm(0xacced);
    plan.drop_after = 0.35;
    let faults = assert_chaos_matches_reference(&plan);
    assert!(faults > 0, "the storm must actually inject faults");
}

/// Duplicate storm: every response may be delivered twice (the transport
/// replays the whole exchange); the second application must be a no-op.
#[test]
fn duplicate_storm_stays_exactly_once() {
    let mut plan = ChaosPlan::calm(0xd0_0b1e);
    plan.duplicate = 0.4;
    let faults = assert_chaos_matches_reference(&plan);
    assert!(faults > 0, "the storm must actually inject faults");
}

/// Garbage + torn-write storm: responses replaced by garbage bytes and
/// requests torn mid-line. The client must treat both as transport
/// failures and retry, never surfacing a parse error.
#[test]
fn garbage_and_partial_storm_stays_exactly_once() {
    let mut plan = ChaosPlan::calm(0x6a_bba6e);
    plan.garbage = 0.25;
    plan.partial = 0.2;
    let faults = assert_chaos_matches_reference(&plan);
    assert!(faults > 0, "the storm must actually inject faults");
}

/// The same equivalence over real sockets: a server behind a chaos TCP
/// proxy, driven by a self-healing TCP client.
#[test]
fn tcp_session_through_chaos_proxy_matches_fault_free_run() {
    let reference = reference_outcome();

    let manager = Arc::new(
        SessionManager::new(ManagerConfig {
            idle_timeout: Duration::from_secs(60),
            ..ManagerConfig::default()
        })
        .unwrap(),
    );
    let server = Server::bind("127.0.0.1:0", manager).unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    let mut plan = ChaosPlan::hostile(0x7c9_c4a05);
    // Keep the injected latency tiny so the test stays fast.
    plan.delay_by = Duration::from_millis(1);
    let mut proxy = ChaosProxy::spawn(addr, plan).unwrap();

    let transport = ReconnectingTransport::tcp_with_timeout(
        &proxy.addr().to_string(),
        40,
        Duration::from_millis(1),
        Some(Duration::from_secs(5)),
    );
    let mut client = Client::new(transport);
    let resp = client
        .tune(&toy_spec("chaos-toy"), |wire| Some(toy_cost(wire["X"])))
        .expect("chaos TCP run must converge through retries");

    assert_eq!(outcome(&resp), reference);
    assert!(
        proxy.counters().total() > 0,
        "the proxy must actually inject faults"
    );

    proxy.stop();
    shutdown.signal();
    server_thread.join().unwrap().unwrap();
}
