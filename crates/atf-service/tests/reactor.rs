//! Integration tests for the `poll(2)` reactor front end: the graceful
//! drain must answer every request the server has already received bytes
//! for (the shutdown request-drop regression), connection accounting must
//! return to zero, hundreds of mostly-idle connections must be served by a
//! bounded thread count, and the exactly-once wire semantics must survive
//! a chaos proxy unchanged.

#![cfg(unix)]

use atf_core::spec::{IntervalSpec, ParameterSpec, SearchSpec};
use atf_service::{
    ChaosPlan, ChaosProxy, Client, ManagerConfig, ReconnectingTransport, Response, Server,
    ServerConfig, SessionManager, SessionSpec,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// X in 1..=16, exhaustive: 16 deterministic evaluations, optimum at 7.
fn toy_spec(kernel: &str) -> SessionSpec {
    let mut spec = SessionSpec::new(kernel);
    spec.parameters = vec![ParameterSpec {
        name: "X".into(),
        interval: Some(IntervalSpec {
            begin: 1,
            end: 16,
            step: 1,
        }),
        set: None,
        constraint: None,
    }];
    spec.search = Some(SearchSpec {
        technique: "exhaustive".into(),
        seed: 0,
    });
    spec
}

fn toy_cost(x: u64) -> f64 {
    (x as f64 - 7.0).abs()
}

/// Threads of this test process, from /proc (None off Linux).
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

/// The shutdown request-drop regression (deterministically forced):
///
/// One handler thread is stalled inside a slow `finish` (injected database
/// I/O delay) while a second connection pipelines 66 pings in one write —
/// the reactor frames all of them, and past the per-connection pipeline
/// limit it stops reading, so a 67th ping stays in the *kernel* buffer,
/// unread. Shutdown fires with all 67 unanswered. The old server dropped
/// everything buffered at signal time; the reactor's drain must run a
/// final read sweep (picking up ping #67), answer all 67 in order, flush,
/// and only then close — and `connections_active` must read 0 after the
/// drain (the old computed-then-set gauge could stay stale forever).
#[test]
fn drain_answers_every_buffered_request_and_zeroes_the_gauge() {
    let db_path =
        std::env::temp_dir().join(format!("atf-reactor-drain-{}.json", std::process::id()));
    std::fs::remove_file(&db_path).ok();
    let manager = Arc::new(
        SessionManager::new(ManagerConfig {
            db_path: Some(db_path.clone()),
            idle_timeout: Duration::from_secs(60),
            ..ManagerConfig::default()
        })
        .unwrap(),
    );
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&manager),
        ServerConfig {
            io_threads: Some(1),
            handlers: Some(1),
            drain_timeout: Duration::from_secs(15),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    // Connection A: tune the toy space to done, then block the single
    // handler inside `finish` (the database append sleeps 400 ms).
    let mut client_a = Client::connect(addr).unwrap();
    let session = client_a.open(&toy_spec("drain-toy")).unwrap();
    while let Some(config) = client_a.next(&session).unwrap() {
        client_a
            .report(&session, Some(toy_cost(config["X"])))
            .unwrap();
    }
    manager.inject_db_io_delay(Duration::from_millis(400));
    let finish_thread = std::thread::spawn(move || client_a.finish(&session));
    std::thread::sleep(Duration::from_millis(100)); // handler now inside finish

    // Connection B: 66 pings in one write (frames past the pipeline
    // limit, reads stop), then a 67th the reactor has not read yet.
    let mut b = TcpStream::connect(addr).unwrap();
    let ping = "{\"cmd\":\"ping\"}\n";
    b.write_all(ping.repeat(66).as_bytes()).unwrap();
    b.flush().unwrap();
    std::thread::sleep(Duration::from_millis(150)); // reactor framed the 66
    b.write_all(ping.as_bytes()).unwrap();
    b.flush().unwrap();
    std::thread::sleep(Duration::from_millis(50)); // byte is kernel-side

    // Shutdown fires with one request mid-handler, 66 framed-but-unserved
    // lines, and one unread line. Every one must still be answered.
    shutdown.signal();

    let mut replies = 0usize;
    let mut reader = BufReader::new(b.try_clone().unwrap());
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // clean EOF only after every answer
            Ok(_) => {
                let resp: Response = serde_json::from_str(line.trim()).unwrap();
                assert!(resp.ok, "drain must answer pings, got {line}");
                replies += 1;
            }
            Err(e) => panic!("reading drained responses failed after {replies}: {e}"),
        }
    }
    assert_eq!(
        replies, 67,
        "every request the server had received bytes for must be answered before close"
    );

    let finish = finish_thread.join().unwrap().unwrap();
    assert!(
        finish.ok,
        "in-flight finish must complete through the drain"
    );
    assert_eq!(finish.best_cost, Some(0.0));

    server_thread.join().unwrap().unwrap();
    let metrics = manager.metrics().snapshot();
    assert_eq!(
        metrics.admission.connections_active, 0,
        "connection gauge must return to exactly 0 after drain"
    );
    assert_eq!(metrics.reactor.registered_fds, 0);
    std::fs::remove_file(&db_path).ok();
}

/// ≥512 concurrently open, mostly idle connections — each served at least
/// one request — on a bounded thread count: the reactor's io loops +
/// handler pool, not one thread per connection.
#[test]
fn many_idle_connections_bounded_threads() {
    let manager = Arc::new(SessionManager::in_memory());
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&manager),
        ServerConfig {
            max_connections: Some(1024),
            io_threads: Some(1),
            handlers: Some(2),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let threads_before = process_threads();
    let server_thread = std::thread::spawn(move || server.run());

    const CONNS: usize = 512;
    let mut conns: Vec<TcpStream> = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        match TcpStream::connect(addr) {
            Ok(stream) => conns.push(stream),
            Err(e) => panic!("connect #{i} failed: {e}"),
        }
    }
    // Every connection is really served: one ping round trip each.
    for (i, stream) in conns.iter_mut().enumerate() {
        stream.write_all(b"{\"cmd\":\"ping\"}\n").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp: Response = serde_json::from_str(line.trim()).unwrap();
        assert!(resp.ok, "ping on connection #{i} failed: {line}");
    }

    assert_eq!(
        manager.metrics().snapshot().reactor.registered_fds,
        CONNS as u64,
        "all connections must be registered with the poll set"
    );
    if let (Some(before), Some(during)) = (threads_before, process_threads()) {
        let delta = during.saturating_sub(before);
        assert!(
            delta < 50,
            "{CONNS} open connections grew the process by {delta} threads — \
             that is thread-per-connection, not a reactor"
        );
    }

    // Graceful shutdown with all connections still open: idle ones are
    // closed by the drain sweep, the gauge returns to zero.
    shutdown.signal();
    server_thread.join().unwrap().unwrap();
    let metrics = manager.metrics().snapshot();
    assert_eq!(metrics.admission.connections_active, 0);
    assert_eq!(metrics.reactor.registered_fds, 0);
    drop(conns);
}

/// The accept-queue/hard-cap shedding semantics survive the reactor: with
/// one slot and no queue, a second concurrent connection gets exactly one
/// `overloaded` line and a close, and the slot is reusable afterwards.
#[test]
fn hard_cap_shedding_semantics_unchanged() {
    let manager = Arc::new(SessionManager::in_memory());
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&manager),
        ServerConfig {
            max_connections: Some(1),
            accept_queue: 0,
            io_threads: Some(1),
            handlers: Some(1),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    // Occupy the only slot and prove it serves.
    let mut holder = Client::connect(addr).unwrap();
    holder.ping().unwrap();

    // Second connection: one overloaded line, then EOF.
    let rejected = TcpStream::connect(addr).unwrap();
    rejected
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(rejected);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let resp: Response = serde_json::from_str(line.trim()).unwrap();
    assert!(!resp.ok);
    assert_eq!(resp.code.as_deref(), Some("overloaded"));
    assert!(resp.retry_after_ms.is_some());
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "close after shed");

    // Freeing the slot readmits new connections.
    drop(holder);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut retry = Client::connect(addr).unwrap();
        if retry.ping().is_ok() {
            break;
        }
        assert!(Instant::now() < deadline, "freed slot was never readmitted");
        std::thread::sleep(Duration::from_millis(20));
    }

    shutdown.signal();
    server_thread.join().unwrap().unwrap();
}

/// PR 5's fault schedules over the reactor path: a hostile chaos proxy in
/// front of the reactor-backed server must leave the observable tuning
/// outcome exactly equal to the fault-free loopback run — the reactor
/// changes the connection engine, not the exactly-once semantics.
#[test]
fn chaos_proxy_over_reactor_keeps_exactly_once_semantics() {
    // The fault-free reference.
    let reference = {
        let manager = Arc::new(SessionManager::in_memory());
        let mut client = Client::loopback(manager);
        client
            .tune(&toy_spec("reactor-chaos"), |wire| Some(toy_cost(wire["X"])))
            .expect("fault-free run")
    };

    let manager = Arc::new(SessionManager::in_memory());
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&manager),
        ServerConfig {
            io_threads: Some(2),
            handlers: Some(2),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    let mut plan = ChaosPlan::hostile(0x5eac_7042);
    plan.delay_by = Duration::from_millis(1);
    let mut proxy = ChaosProxy::spawn(addr, plan).unwrap();
    let transport = ReconnectingTransport::tcp_with_timeout(
        &proxy.addr().to_string(),
        40,
        Duration::from_millis(1),
        Some(Duration::from_secs(5)),
    );
    let mut client = Client::new(transport);
    let resp = client
        .tune(&toy_spec("reactor-chaos"), |wire| Some(toy_cost(wire["X"])))
        .expect("chaos run must converge through retries");

    assert_eq!(resp.best_cost, reference.best_cost);
    assert_eq!(resp.best_config, reference.best_config);
    assert_eq!(resp.evaluations, reference.evaluations);
    assert_eq!(resp.valid_evaluations, reference.valid_evaluations);
    assert_eq!(resp.space_size.as_deref(), Some("16"));
    assert!(
        proxy.counters().total() > 0,
        "the proxy must actually inject faults"
    );

    proxy.stop();
    shutdown.signal();
    server_thread.join().unwrap().unwrap();
}
