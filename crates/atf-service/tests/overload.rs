//! Overload-protection invariants: under any storm of opens the service
//! answers every request explicitly (accept or `overloaded` with a
//! retry-after hint), shed counters match observed sheds exactly, admitted
//! sessions finish bit-identical to an unloaded run, per-tenant quota
//! accounting never leaks or goes negative across arbitrary interleavings
//! of open/finish/expire/forfeit (including retried opens hitting the
//! dedup window), graceful drain checkpoints journals to resumable
//! artifacts within the deadline, and the connection hard cap answers one
//! `overloaded` line instead of hanging the peer.

use atf_core::spec::{IntervalSpec, ParameterSpec, SearchSpec};
use atf_service::{
    AdmissionConfig, Client, ManagerConfig, Request, Response, Server, ServerConfig,
    SessionManager, TenantUsage, DEFAULT_TENANT,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An `open` for X in 1..=`end`, exhaustive — deterministic evaluations,
/// optimum at X=7 under [`toy_cost`].
fn open_request(kernel: &str, tenant: Option<&str>, end: u64) -> Request {
    let mut req = Request::new("open");
    req.kernel = Some(kernel.to_string());
    req.tenant = tenant.map(str::to_string);
    req.parameters = Some(vec![ParameterSpec {
        name: "X".into(),
        interval: Some(IntervalSpec {
            begin: 1,
            end,
            step: 1,
        }),
        set: None,
        constraint: None,
    }]);
    req.search = Some(SearchSpec {
        technique: "exhaustive".into(),
        seed: 0,
    });
    req
}

fn toy_cost(x: u64) -> f64 {
    (x as f64 - 7.0).abs()
}

/// The final-outcome fields the bit-identical check compares.
#[derive(Debug, PartialEq)]
struct Outcome {
    best_config: Option<BTreeMap<String, u64>>,
    best_cost: Option<f64>,
    evaluations: Option<u64>,
    valid_evaluations: Option<u64>,
    space_size: Option<String>,
}

fn outcome(resp: &Response) -> Outcome {
    Outcome {
        best_config: resp.best_config.clone(),
        best_cost: resp.best_cost,
        evaluations: resp.evaluations,
        valid_evaluations: resp.valid_evaluations,
        space_size: resp.space_size.clone(),
    }
}

/// Drives a live session to completion (ticketless next/report) and
/// finishes it; returns the finish response.
fn drive_and_finish(manager: &SessionManager, id: &str) -> Response {
    loop {
        let next = manager.handle(&Request::new("next").with_session(id));
        assert!(next.ok, "next must succeed mid-drive: {next:?}");
        if next.done == Some(true) {
            break;
        }
        let x = next.config.expect("config when not done")["X"];
        let mut report = Request::new("report").with_session(id);
        report.cost = Some(toy_cost(x));
        report.valid = Some(true);
        let r = manager.handle(&report);
        assert!(r.ok, "report must succeed mid-drive: {r:?}");
    }
    manager.handle(&Request::new("finish").with_session(id))
}

/// The fault-free, quota-free reference run.
fn unloaded_outcome() -> Outcome {
    let manager = SessionManager::in_memory();
    let opened = manager.handle(&open_request("storm-toy", None, 16));
    assert!(opened.ok, "{opened:?}");
    let finished = drive_and_finish(&manager, &opened.session.unwrap());
    assert!(finished.ok, "{finished:?}");
    outcome(&finished)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any storm of opens against a quota-limited service: every open is
    /// answered explicitly (admitted, or `overloaded` with a retry-after
    /// hint), the shed/admission counters match the observed answers
    /// exactly, and every admitted session finishes bit-identical to the
    /// unloaded run — zero lost or double-counted evaluations.
    #[test]
    fn storm_sheds_explicitly_and_admitted_sessions_finish_identically(
        ops in proptest::collection::vec(0u8..8, 1..48)
    ) {
        const MAX_SESSIONS: usize = 3;
        const MAX_PER_TENANT: usize = 2;
        let reference = unloaded_outcome();
        let manager = SessionManager::new(ManagerConfig {
            admission: AdmissionConfig {
                max_sessions: Some(MAX_SESSIONS),
                max_sessions_per_tenant: Some(MAX_PER_TENANT),
                ..AdmissionConfig::default()
            },
            ..ManagerConfig::default()
        }).unwrap();

        let mut held: Vec<(String, usize)> = Vec::new(); // (session id, tenant)
        let (mut admits, mut sheds) = (0u64, 0u64);
        for &op in &ops {
            if op < 4 {
                // Open for tenant `op`, held live (this is what overloads).
                let tenant = op as usize;
                let label = format!("tenant-{tenant}");
                let resp = manager.handle(&open_request("storm-toy", Some(&label), 16));
                prop_assert!(
                    resp.ok || resp.is_overloaded(),
                    "every open must be answered accept-or-overloaded: {resp:?}"
                );
                let tenant_held = held.iter().filter(|(_, t)| *t == tenant).count();
                let should_admit = held.len() < MAX_SESSIONS && tenant_held < MAX_PER_TENANT;
                if should_admit {
                    prop_assert!(resp.ok, "capacity was free, must admit: {resp:?}");
                    admits += 1;
                    held.push((resp.session.unwrap(), tenant));
                } else {
                    prop_assert!(resp.is_overloaded(), "quota exhausted, must shed: {resp:?}");
                    prop_assert!(
                        resp.retry_after_ms.is_some(),
                        "a shed must carry a retry-after hint"
                    );
                    sheds += 1;
                }
            } else if let Some((id, _)) = held.first().cloned() {
                // Drive the oldest held session to completion — its
                // capacity returns to the pool.
                let finished = drive_and_finish(&manager, &id);
                prop_assert!(finished.ok, "{finished:?}");
                prop_assert_eq!(outcome(&finished), unloaded_outcome());
                let _ = &reference; // same value; computed once for clarity
                held.remove(0);
            }
        }
        // Drain the stragglers: each still finishes bit-identical.
        for (id, _) in std::mem::take(&mut held) {
            let finished = drive_and_finish(&manager, &id);
            prop_assert!(finished.ok, "{finished:?}");
            prop_assert_eq!(outcome(&finished), unloaded_outcome());
        }

        let admission = manager.metrics().snapshot().admission;
        prop_assert_eq!(admission.admitted_sessions, admits, "admission counter drift");
        prop_assert_eq!(admission.shed_opens, sheds, "shed counter must match observed sheds");
        prop_assert!(
            manager.tenant_usage().is_empty(),
            "all capacity must return to the pool: {:?}",
            manager.tenant_usage()
        );
    }
}

/// Model session for the quota-accounting proptest.
struct ModelSession {
    id: String,
    tenant: usize,
    pending: Vec<u64>,
}

fn model_usage(live: &[ModelSession]) -> BTreeMap<String, TenantUsage> {
    let mut usage: BTreeMap<String, TenantUsage> = BTreeMap::new();
    for s in live {
        let u = usage.entry(format!("tenant-{}", s.tenant)).or_default();
        u.sessions += 1;
        u.inflight += s.pending.len();
    }
    usage.retain(|_, u| *u != TenantUsage::default());
    usage
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Per-tenant in-use accounting tracks a reference model exactly —
    /// never negative, never over cap, no leaked capacity — across
    /// arbitrary interleavings of open / duplicate (retried) open / next /
    /// report / finish / idle expiry.
    #[test]
    fn quota_accounting_matches_model_under_any_interleaving(
        ops in proptest::collection::vec((0u8..6, 0u8..3), 1..48)
    ) {
        const MAX_SESSIONS: usize = 3;
        const MAX_PER_TENANT: usize = 2;
        const MAX_INFLIGHT: usize = 2;
        let manager = SessionManager::new(ManagerConfig {
            // Idle timeout zero: `expire_idle` expires every live session.
            idle_timeout: Duration::ZERO,
            admission: AdmissionConfig {
                max_sessions: Some(MAX_SESSIONS),
                max_sessions_per_tenant: Some(MAX_PER_TENANT),
                max_inflight_per_tenant: Some(MAX_INFLIGHT),
                ..AdmissionConfig::default()
            },
            ..ManagerConfig::default()
        }).unwrap();

        let mut live: Vec<ModelSession> = Vec::new();
        let mut rid_counter = 0u64;
        // The most recent *admitted* open, for dedup-window retries.
        let mut last_open: Option<(Request, String)> = None;
        for &(op, tenant_byte) in &ops {
            let tenant = tenant_byte as usize;
            let label = format!("tenant-{tenant}");
            match op {
                // Open: big space (never done mid-test), window 5 so the
                // tenant in-flight cap (2) binds before the session window.
                0 => {
                    rid_counter += 1;
                    let mut req = open_request("quota-toy", Some(&label), 500);
                    req.request_id = Some(format!("rid-{rid_counter}"));
                    req.max_pending = Some(5);
                    let resp = manager.handle(&req);
                    let total = live.len();
                    let mine = live.iter().filter(|s| s.tenant == tenant).count();
                    if total < MAX_SESSIONS && mine < MAX_PER_TENANT {
                        prop_assert!(resp.ok, "{resp:?}");
                        let id = resp.session.unwrap();
                        last_open = Some((req, id.clone()));
                        live.push(ModelSession { id, tenant, pending: Vec::new() });
                    } else {
                        prop_assert!(resp.is_overloaded(), "{resp:?}");
                    }
                }
                // Retried open with the same request id: answered from the
                // dedup window with the same session id, accounting
                // untouched — the quota is charged exactly once.
                1 => {
                    if let Some((req, id)) = &last_open {
                        let resp = manager.handle(req);
                        prop_assert!(resp.ok, "{resp:?}");
                        prop_assert_eq!(resp.session.as_deref(), Some(id.as_str()));
                    }
                }
                // Next on the tenant's oldest session.
                2 => {
                    let inflight: usize =
                        live.iter().filter(|s| s.tenant == tenant).map(|s| s.pending.len()).sum();
                    if let Some(s) = live.iter_mut().find(|s| s.tenant == tenant) {
                        let resp = manager.handle(&Request::new("next").with_session(&s.id));
                        if inflight >= MAX_INFLIGHT {
                            prop_assert!(resp.is_overloaded(), "{resp:?}");
                        } else {
                            prop_assert!(resp.ok, "{resp:?}");
                            s.pending.push(resp.ticket.expect("ticket on handout"));
                        }
                    }
                }
                // Report the tenant's oldest pending ticket.
                3 => {
                    if let Some(s) =
                        live.iter_mut().find(|s| s.tenant == tenant && !s.pending.is_empty())
                    {
                        let ticket = s.pending.remove(0);
                        let mut req = Request::new("report").with_session(&s.id);
                        req.ticket = Some(ticket);
                        req.cost = Some(1.0);
                        req.valid = Some(true);
                        let resp = manager.handle(&req);
                        prop_assert!(resp.ok, "{resp:?}");
                    }
                }
                // Finish the tenant's oldest session: its slot and any
                // still-pending in-flight reservations return to the pool
                // even when nothing was measured (a `tuning` error reply).
                4 => {
                    if let Some(pos) = live.iter().position(|s| s.tenant == tenant) {
                        let s = live.remove(pos);
                        let resp = manager.handle(&Request::new("finish").with_session(&s.id));
                        prop_assert!(
                            resp.ok || resp.code.as_deref() == Some("tuning"),
                            "{resp:?}"
                        );
                    }
                }
                // Idle expiry: every live session (idle timeout is zero)
                // is swept out, pending reservations included.
                _ => {
                    manager.expire_idle();
                    live.clear();
                }
            }
            prop_assert_eq!(
                manager.tenant_usage(),
                model_usage(&live),
                "accounting drifted from the model after op {:?}",
                (op, tenant)
            );
        }
        // Tear down whatever is left: the pool must read empty.
        for s in std::mem::take(&mut live) {
            manager.handle(&Request::new("finish").with_session(&s.id));
        }
        prop_assert!(manager.tenant_usage().is_empty());
    }
}

/// A shed open retried with the *same* request id is re-admitted once
/// capacity frees — sheds are never remembered by the dedup window.
#[test]
fn retried_shed_open_readmits_after_capacity_frees() {
    let manager = SessionManager::new(ManagerConfig {
        admission: AdmissionConfig {
            max_sessions: Some(1),
            ..AdmissionConfig::default()
        },
        ..ManagerConfig::default()
    })
    .unwrap();

    let mut first = open_request("retry-toy", Some("a"), 16);
    first.request_id = Some("rid-first".into());
    let first_resp = manager.handle(&first);
    assert!(first_resp.ok, "{first_resp:?}");

    let mut second = open_request("retry-toy", Some("b"), 16);
    second.request_id = Some("rid-second".into());
    let shed = manager.handle(&second);
    assert!(shed.is_overloaded(), "{shed:?}");
    assert!(shed.retry_after_ms.is_some());

    // Capacity frees; the byte-identical retry must re-run admission.
    let finished = drive_and_finish(&manager, first_resp.session.as_ref().unwrap());
    assert!(finished.ok, "{finished:?}");
    let retried = manager.handle(&second);
    assert!(retried.ok, "the retried open must be admitted: {retried:?}");

    let admission = manager.metrics().snapshot().admission;
    assert_eq!(admission.admitted_sessions, 2);
    assert_eq!(admission.shed_opens, 1);
}

/// A ticket held past the evaluation deadline is forfeited on the next
/// `next` — and its in-flight reservation returns to the pool, so the
/// tenant's cap does not wedge shut on dead clients.
#[test]
fn forfeited_tickets_return_inflight_capacity() {
    let manager = SessionManager::new(ManagerConfig {
        eval_deadline: Some(Duration::ZERO),
        admission: AdmissionConfig {
            max_inflight_per_tenant: Some(1),
            ..AdmissionConfig::default()
        },
        ..ManagerConfig::default()
    })
    .unwrap();

    let mut open = open_request("forfeit-toy", None, 16);
    open.max_pending = Some(3);
    let opened = manager.handle(&open);
    assert!(opened.ok, "{opened:?}");
    let id = opened.session.unwrap();

    let first = manager.handle(&Request::new("next").with_session(&id));
    assert!(first.ok && first.ticket.is_some(), "{first:?}");
    // The cap is 1 and one ticket is out — but it is already past the
    // (zero) deadline, so the next call forfeits it first and the freed
    // reservation admits the new handout.
    std::thread::sleep(Duration::from_millis(2));
    let second = manager.handle(&Request::new("next").with_session(&id));
    assert!(
        second.ok && second.ticket.is_some(),
        "forfeiture must free the in-flight slot: {second:?}"
    );
    assert_ne!(first.ticket, second.ticket);
    let usage = manager.tenant_usage();
    assert_eq!(
        usage.get(DEFAULT_TENANT).map(|u| u.inflight),
        Some(1),
        "exactly one live reservation after the forfeit: {usage:?}"
    );
}

/// SIGINT mid-storm (modeled by the shutdown handle the self-pipe watcher
/// signals): the server drains within the deadline, checkpoints every live
/// session's journal, and a restarted service resumes the interrupted
/// session to a result bit-identical to an uninterrupted run.
#[test]
fn graceful_drain_leaves_resumable_journals() {
    let reference = unloaded_outcome();
    let dir = std::env::temp_dir().join(format!("atf-drain-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let journal_dir = dir.join("journals");
    let config = ManagerConfig {
        journal_dir: Some(journal_dir.clone()),
        ..ManagerConfig::default()
    };
    let drain_timeout = Duration::from_secs(5);

    let manager = Arc::new(SessionManager::new(config.clone()).unwrap());
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&manager),
        ServerConfig {
            read_poll: Duration::from_millis(25),
            drain_timeout,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    // A client mid-session: 5 of 16 evaluations done when the signal hits.
    let mut client = Client::connect(addr).unwrap();
    let mut spec = atf_service::SessionSpec::new("storm-toy");
    spec.parameters = vec![ParameterSpec {
        name: "X".into(),
        interval: Some(IntervalSpec {
            begin: 1,
            end: 16,
            step: 1,
        }),
        set: None,
        constraint: None,
    }];
    spec.search = Some(SearchSpec {
        technique: "exhaustive".into(),
        seed: 0,
    });
    let session = client.open(&spec).unwrap();
    for _ in 0..5 {
        let cfg = client.next(&session).unwrap().expect("not done yet");
        client.report(&session, Some(toy_cost(cfg["X"]))).unwrap();
    }

    let drain_started = Instant::now();
    shutdown.signal();
    server_thread.join().unwrap().unwrap();
    assert!(
        drain_started.elapsed() < drain_timeout + Duration::from_secs(2),
        "drain must finish within the deadline, took {:?}",
        drain_started.elapsed()
    );
    assert!(
        manager.metrics().snapshot().admission.drained_sessions >= 1,
        "the live session's journal must be checkpointed on drain"
    );
    let journal_files = std::fs::read_dir(&journal_dir).unwrap().count();
    assert!(journal_files >= 1, "a journal file must survive the drain");

    // Restart: the same key resumes from the checkpointed journal and
    // completes bit-identical to the uninterrupted run.
    let restarted = Arc::new(SessionManager::new(config).unwrap());
    let mut resume = open_request("storm-toy", None, 16);
    resume.resume = Some(true);
    let reopened = restarted.handle(&resume);
    assert!(reopened.ok, "{reopened:?}");
    assert_eq!(
        reopened.resumed,
        Some(5),
        "the five pre-drain evaluations must replay from the journal"
    );
    let finished = drive_and_finish(&restarted, &reopened.session.unwrap());
    assert!(finished.ok, "{finished:?}");
    assert_eq!(outcome(&finished), reference);
    std::fs::remove_dir_all(&dir).ok();
}

/// With every slot and queue position taken, a new connection is answered
/// with one `overloaded` line and closed — and once a slot frees, new
/// connections are served again.
#[test]
fn connection_hard_cap_rejects_with_overloaded_line() {
    let manager = Arc::new(SessionManager::in_memory());
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&manager),
        ServerConfig {
            accept_poll: Duration::from_millis(5),
            read_poll: Duration::from_millis(25),
            max_connections: Some(1),
            accept_queue: 0,
            reject_retry_after_ms: 125,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    // Occupy the only slot, proven by a served round trip.
    let first = TcpStream::connect(addr).unwrap();
    let mut first_writer = first.try_clone().unwrap();
    let mut first_reader = BufReader::new(first);
    first_writer.write_all(b"{\"cmd\":\"ping\"}\n").unwrap();
    let mut line = String::new();
    first_reader.read_line(&mut line).unwrap();
    assert!(serde_json::from_str::<Response>(line.trim()).unwrap().ok);

    // The second connection is hard-rejected: one overloaded line, close.
    let second = TcpStream::connect(addr).unwrap();
    second
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut second_reader = BufReader::new(second);
    let mut reject = String::new();
    second_reader.read_line(&mut reject).unwrap();
    let resp: Response = serde_json::from_str(reject.trim()).unwrap();
    assert!(resp.is_overloaded(), "{resp:?}");
    assert_eq!(resp.retry_after_ms, Some(125));
    let mut rest = String::new();
    assert_eq!(
        second_reader.read_line(&mut rest).unwrap(),
        0,
        "the rejected connection must be closed after the answer"
    );
    assert_eq!(
        manager.metrics().snapshot().admission.rejected_connections,
        1
    );

    // Free the slot; a fresh connection is served again.
    drop(first_reader);
    drop(first_writer);
    let deadline = Instant::now() + Duration::from_secs(5);
    let served = loop {
        let third = TcpStream::connect(addr).unwrap();
        third
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let mut w = third.try_clone().unwrap();
        let mut r = BufReader::new(third);
        w.write_all(b"{\"cmd\":\"ping\"}\n").unwrap();
        let mut reply = String::new();
        let _ = r.read_line(&mut reply);
        match serde_json::from_str::<Response>(reply.trim()) {
            Ok(resp) if resp.ok => break true,
            _ if Instant::now() > deadline => break false,
            // Still rejected (the old handler has not noticed the close
            // yet) — give it a read-poll tick and try again.
            _ => std::thread::sleep(Duration::from_millis(30)),
        }
    };
    assert!(served, "a freed slot must serve new connections");

    shutdown.signal();
    server_thread.join().unwrap().unwrap();
}
