//! The session manager: all live [`TuningSession`]s keyed by id, plus the
//! service-level [`TuningDatabase`] cache. Shared by every connection
//! thread (and by the in-process loopback client).
//!
//! Sessions live in N lock-striped shards (session-id hash affinity), and
//! the database persists as an append-only record log with periodic
//! compaction — see [`atf_core::db::DatabaseLog`]. Tenant accounting stays
//! behind one dedicated global lock so admission quotas hold exactly.

use crate::proto::{codes, config_to_wire, Request, Response};
use atf_core::cost::{CostError, FailureKind};
use atf_core::db::{DatabaseLog, TuningDatabase};
use atf_core::metrics::MetricsRegistry;
use atf_core::param::auto_group;
use atf_core::session::{Handout, TuningSession};
use atf_core::space::SearchSpace;
use atf_core::spec;
use atf_core::status::TuningStatus;
use atf_core::trace::{NullSink, TraceEvent, TraceSink};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many recent `request_id`s (and their responses) each dedup window
/// remembers. A retry that arrives after this many *other* id-carrying
/// requests have landed is no longer recognized — with the client's bounded
/// retry loop the practical distance between a request and its retries is a
/// handful, so 64 leaves a wide margin.
pub const DEDUP_WINDOW: usize = 64;

/// Checkpoint interval for service-side run journals: after this many
/// journal appends the journal is compacted into an atomically-renamed
/// checkpoint file, keeping resume-replay cost bounded for long sessions.
const SERVICE_CHECKPOINT_EVERY: usize = 64;

/// Tenant that `open`s without a `tenant` field are accounted under.
pub const DEFAULT_TENANT: &str = "default";

/// Admission-control limits. Every limit is opt-in (`None` = unlimited),
/// so a manager with the default config behaves exactly like the
/// pre-admission service.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Global cap on live sessions across all tenants.
    pub max_sessions: Option<usize>,
    /// Per-tenant cap on live sessions.
    pub max_sessions_per_tenant: Option<usize>,
    /// Per-tenant cap on in-flight (handed-out, unreported) evaluations
    /// summed over the tenant's sessions. A `next` beyond it is shed.
    pub max_inflight_per_tenant: Option<usize>,
    /// Retry-after hint attached to every shed (`overloaded`) response.
    pub retry_after: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_sessions: None,
            max_sessions_per_tenant: None,
            max_inflight_per_tenant: None,
            retry_after: Duration::from_millis(500),
        }
    }
}

/// Per-tenant in-use capacity, guarded by the manager's tenants lock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Live sessions owned by the tenant.
    pub sessions: usize,
    /// Handed-out, unreported evaluations across the tenant's sessions.
    pub inflight: usize,
}

/// Exactly-once memory: the responses of the most recent id-carrying
/// requests, so a retry of a request whose response was lost in transit is
/// answered from memory instead of executed twice.
#[derive(Default)]
struct DedupWindow {
    entries: VecDeque<(String, Response)>,
}

impl DedupWindow {
    fn get(&self, id: &str) -> Option<Response> {
        self.entries
            .iter()
            .find(|(k, _)| k == id)
            .map(|(_, resp)| resp.clone())
    }

    fn insert(&mut self, id: &str, response: &Response) {
        if self.entries.iter().any(|(k, _)| k == id) {
            return;
        }
        if self.entries.len() >= DEDUP_WINDOW {
            self.entries.pop_front();
        }
        self.entries.push_back((id.to_string(), response.clone()));
    }
}

/// Session-manager settings.
#[derive(Clone, Debug)]
pub struct ManagerConfig {
    /// Path the tuning database is loaded from and persisted to (`None` =
    /// in-memory only).
    pub db_path: Option<PathBuf>,
    /// Sessions idle longer than this are expired (their best-so-far is
    /// merged into the database first).
    pub idle_timeout: Duration,
    /// Directory for per-session run journals (`None` = no journaling).
    /// With a journal directory, `open` with `resume: true` continues a
    /// crashed run from its journal.
    pub journal_dir: Option<PathBuf>,
    /// Deadline for a handed-out configuration: when a client holds a
    /// pending configuration longer than this, the service reports it as a
    /// timeout failure and moves on (`None` = wait forever).
    pub eval_deadline: Option<Duration>,
    /// Directory of the persistent space cache (`None` = regenerate every
    /// open). With a cache, `open` keys the generated search space by a
    /// content hash of the parameter spec; a service restart followed by an
    /// `open` with an identical spec loads the space from disk instead of
    /// regenerating it (observable via the `space_cache_hits` metric).
    pub space_cache: Option<PathBuf>,
    /// Space-cache size caps (entry count, total bytes); exceeding either
    /// evicts least-recently-used entries after each store (`None` =
    /// unbounded, the pre-eviction behavior).
    pub space_cache_max_entries: Option<usize>,
    /// See [`ManagerConfig::space_cache_max_entries`]; the
    /// `--space-cache-max-mb` flag sets this in bytes.
    pub space_cache_max_bytes: Option<u64>,
    /// Admission-control limits (default: everything unlimited).
    pub admission: AdmissionConfig,
    /// Number of lock-striped session shards (`None` = one per available
    /// CPU). A session id hashes to a fixed shard, so operations on
    /// different sessions mostly take different locks; `1` reproduces the
    /// old single-lock manager exactly.
    pub shards: Option<usize>,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            db_path: None,
            idle_timeout: Duration::from_secs(15 * 60),
            journal_dir: None,
            eval_deadline: None,
            space_cache: None,
            space_cache_max_entries: None,
            space_cache_max_bytes: None,
            admission: AdmissionConfig::default(),
            shards: None,
        }
    }
}

struct ManagedSession {
    session: TuningSession<f64>,
    kernel: String,
    device: String,
    workload: String,
    /// Tenant the session's capacity is accounted under.
    tenant: String,
    last_touch: Instant,
    /// When each pending configuration was handed out, by ticket. Entries
    /// past the evaluation deadline are forfeited as timeout failures.
    pending_since: HashMap<u64, Instant>,
    /// Responses of recent id-carrying `next`/`report` requests, so retries
    /// after a lost ACK are answered idempotently.
    dedup: DedupWindow,
}

/// One line of the service's periodic `stats.ndjson` telemetry file.
#[derive(Serialize, Deserialize)]
struct StatsLine {
    session: String,
    kernel: String,
    stats: atf_core::metrics::MetricsSnapshot,
}

/// Renders nonzero failure counts as the wire map.
fn failures_to_wire(status: &TuningStatus) -> Option<BTreeMap<String, u64>> {
    let counts = status.failure_counts();
    if counts.is_empty() {
        return None;
    }
    Some(
        counts
            .into_iter()
            .map(|(kind, n)| (kind.label().to_string(), n))
            .collect(),
    )
}

/// Journal file name for a database key: sanitized so arbitrary kernel
/// names cannot escape the journal directory.
fn journal_file_name(kernel: &str, device: &str, workload: &str) -> String {
    let mut name = String::new();
    for part in [kernel, device, workload] {
        if !name.is_empty() {
            name.push('-');
        }
        name.extend(
            part.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }),
        );
    }
    name.push_str(".ndjson");
    name
}

/// All live sessions plus the result database. Every public method is
/// thread-safe; connection threads share one manager behind an `Arc`.
///
/// Sessions are lock-striped: a session id hashes (FNV-1a) to one of N
/// shards, each its own `Mutex<HashMap>`, so operations on different
/// sessions mostly take different locks. Tenant accounting stays global
/// behind the dedicated `tenants` lock — admission quotas are whole-service
/// invariants, and a per-shard split would admit up to N-1 sessions past a
/// cap during concurrent opens.
pub struct SessionManager {
    /// Live sessions, striped by session-id hash. Sweeps (idle expiry,
    /// stats, drain checkpointing) iterate shard by shard, never holding
    /// more than one shard lock at a time — no stop-the-world phase.
    shards: Vec<Mutex<HashMap<String, ManagedSession>>>,
    db: Mutex<TuningDatabase>,
    /// Append handle and compaction driver of the on-disk record log
    /// (`Some` iff `config.db_path` is). Lock order: *before* `db` —
    /// writers serialize on the log while `lookup` readers only touch
    /// `db`, and a compaction snapshots the index with only a brief `db`
    /// acquisition.
    db_log: Mutex<Option<DatabaseLog>>,
    config: ManagerConfig,
    next_id: AtomicU64,
    /// Manager-level dedup for `open`: a duplicated open must not create a
    /// twin session.
    open_dedup: Mutex<DedupWindow>,
    /// Manager-level dedup for `finish`: the session is gone after the
    /// first finish, so a retry must be answered from memory rather than
    /// with `unknown_session`.
    finish_dedup: Mutex<DedupWindow>,
    /// Whether the last stats-snapshot sweep failed: gates log-once
    /// reporting in [`SessionManager::sweep_stats`].
    stats_write_failed: AtomicBool,
    /// Per-tenant in-use capacity — the dedicated global accounting lock.
    /// Lock order: always *after* a shard lock (never take a shard lock
    /// while holding this).
    tenants: Mutex<HashMap<String, TenantUsage>>,
    /// Service-level metrics (admission, shedding, queue depths) — shared
    /// with the TCP server so its connection gauges land in the same
    /// snapshot, and served by a session-less `stats` request.
    metrics: Arc<MetricsRegistry>,
    /// Sink for `admission`/`shed`/`drain` trace events.
    trace: Arc<dyn TraceSink>,
}

impl SessionManager {
    /// A manager with the given settings; loads the database from
    /// `config.db_path` when the file exists (record log + checkpoint, or
    /// a legacy whole-file JSON database, which the first compaction
    /// migrates to the log format).
    pub fn new(config: ManagerConfig) -> std::io::Result<Self> {
        let (db, db_log) = match &config.db_path {
            Some(p) => {
                let (db, log) = DatabaseLog::open(p)?;
                (db, Some(log))
            }
            None => (TuningDatabase::new(), None),
        };
        let shard_count = config
            .shards
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .max(1);
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.set_shard_count(shard_count);
        Ok(SessionManager {
            shards: (0..shard_count)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            db: Mutex::new(db),
            db_log: Mutex::new(db_log),
            config,
            next_id: AtomicU64::new(1),
            open_dedup: Mutex::new(DedupWindow::default()),
            finish_dedup: Mutex::new(DedupWindow::default()),
            stats_write_failed: AtomicBool::new(false),
            tenants: Mutex::new(HashMap::new()),
            metrics,
            trace: Arc::new(NullSink),
        })
    }

    /// Number of session shards (1 = the old single-lock layout).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a session id lives in: FNV-1a of the id modulo the shard
    /// count. Stable for a given id, so every op on a session takes the
    /// same stripe.
    fn shard_of(&self, id: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in id.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// A manager with default settings and no persistence.
    pub fn in_memory() -> Self {
        Self::new(ManagerConfig::default()).expect("in-memory manager cannot fail")
    }

    /// Routes `admission`/`shed`/`drain` trace events to `sink`
    /// (builder-style; default is the no-op sink).
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = sink;
        self
    }

    /// The service-level metrics registry: admission and shed counters,
    /// session/tenant gauges, and (when a server is attached) connection
    /// and accept-queue gauges.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Per-tenant in-use capacity, for tests and diagnostics.
    pub fn tenant_usage(&self) -> BTreeMap<String, TenantUsage> {
        self.tenants
            .lock()
            .iter()
            .map(|(t, u)| (t.clone(), *u))
            .collect()
    }

    /// The tenant an `open` accounts under: its `tenant` field, or the
    /// default tenant when absent or empty.
    fn tenant_of(request: &Request) -> String {
        request
            .tenant
            .clone()
            .filter(|t| !t.is_empty())
            .unwrap_or_else(|| DEFAULT_TENANT.to_string())
    }

    /// Updates the session/tenant gauges from the tenants table (callers
    /// hold the tenants lock and pass it in).
    fn refresh_tenant_gauges(&self, tenants: &HashMap<String, TenantUsage>) {
        let sessions: usize = tenants.values().map(|u| u.sessions).sum();
        let active = tenants.values().filter(|u| u.sessions > 0).count();
        self.metrics.sessions_active.set(sessions as u64);
        self.metrics.tenants_active.set(active as u64);
    }

    /// Builds (and counts, and traces) one shed response.
    fn shed(&self, tenant: &str, reason: &str, is_open: bool) -> Response {
        let retry_after_ms =
            u64::try_from(self.config.admission.retry_after.as_millis()).unwrap_or(u64::MAX);
        if is_open {
            self.metrics.shed_opens.inc();
        } else {
            self.metrics.shed_requests.inc();
        }
        self.trace
            .emit(&TraceEvent::shed(tenant, reason, retry_after_ms));
        Response::overloaded(reason, retry_after_ms)
    }

    /// Reserves one session slot for `tenant`, or returns the shed
    /// response when a quota is exhausted. A successful reservation is
    /// held until the session leaves (finish, idle expiry) — error paths
    /// between admission and session insertion must release it.
    fn admit_session(&self, tenant: &str) -> Result<(), Box<Response>> {
        let a = self.config.admission.clone();
        let mut tenants = self.tenants.lock();
        if let Some(cap) = a.max_sessions {
            let live: usize = tenants.values().map(|u| u.sessions).sum();
            if live >= cap {
                drop(tenants);
                return Err(Box::new(self.shed(
                    tenant,
                    &format!("session quota exhausted ({live}/{cap} sessions live)"),
                    true,
                )));
            }
        }
        let usage = tenants.entry(tenant.to_string()).or_default();
        if let Some(cap) = a.max_sessions_per_tenant {
            if usage.sessions >= cap {
                let live = usage.sessions;
                drop(tenants);
                return Err(Box::new(self.shed(
                    tenant,
                    &format!("tenant session quota exhausted ({live}/{cap} sessions live)"),
                    true,
                )));
            }
        }
        usage.sessions += 1;
        let tenant_sessions = usage.sessions as u64;
        self.refresh_tenant_gauges(&tenants);
        drop(tenants);
        self.metrics.admitted_sessions.inc();
        self.trace
            .emit(&TraceEvent::admission(tenant, tenant_sessions));
        Ok(())
    }

    /// Returns a session's capacity to the pool: its slot plus any
    /// still-pending in-flight reservations it held.
    fn release_session(&self, tenant: &str, pending: usize) {
        let mut tenants = self.tenants.lock();
        if let Some(usage) = tenants.get_mut(tenant) {
            usage.sessions = usage.sessions.saturating_sub(1);
            usage.inflight = usage.inflight.saturating_sub(pending);
            if *usage == TenantUsage::default() {
                tenants.remove(tenant);
            }
        }
        self.refresh_tenant_gauges(&tenants);
    }

    /// Reserves one in-flight evaluation for `tenant`; `false` when the
    /// tenant's in-flight limit is reached.
    fn try_acquire_inflight(&self, tenant: &str) -> bool {
        let cap = self.config.admission.max_inflight_per_tenant;
        let mut tenants = self.tenants.lock();
        let usage = tenants.entry(tenant.to_string()).or_default();
        if let Some(cap) = cap {
            if usage.inflight >= cap {
                return false;
            }
        }
        usage.inflight += 1;
        true
    }

    /// Returns `n` in-flight reservations to the pool (reported,
    /// forfeited, or expired evaluations).
    fn release_inflight(&self, tenant: &str, n: usize) {
        let mut tenants = self.tenants.lock();
        if let Some(usage) = tenants.get_mut(tenant) {
            usage.inflight = usage.inflight.saturating_sub(n);
            if *usage == TenantUsage::default() {
                tenants.remove(tenant);
            }
        }
    }

    /// Handles one raw request line, returning the raw response line
    /// (without the trailing newline). This is the single entry point used
    /// by both the TCP server and the loopback client, so the full protocol
    /// encoding is exercised either way.
    pub fn handle_line(&self, line: &str) -> String {
        let response = match serde_json::from_str::<Request>(line) {
            Ok(request) => self.handle(&request),
            Err(e) => Response::error(codes::PARSE, e),
        };
        serde_json::to_string(&response)
            .unwrap_or_else(|_| "{\"ok\":false,\"code\":\"internal\"}".to_string())
    }

    /// Handles one parsed request.
    pub fn handle(&self, request: &Request) -> Response {
        match request.cmd.as_str() {
            "ping" => Response::ok(),
            "open" => self.open(request),
            "next" => self.next(request),
            "report" => self.report(request),
            "status" => self.status(request),
            "stats" => self.stats(request),
            "finish" => self.finish(request),
            "lookup" => self.lookup(request),
            other => Response::error(codes::UNKNOWN_CMD, format!("unknown cmd `{other}`")),
        }
    }

    fn open(&self, request: &Request) -> Response {
        // A retried `open` whose first response was lost must not create a
        // twin session tuning the same space.
        if let Some(rid) = &request.request_id {
            if let Some(cached) = self.open_dedup.lock().get(rid) {
                return cached;
            }
        }
        let response = self.open_inner(request);
        // Shed responses are deliberately *not* remembered: a shed has no
        // side effects to protect from replay, and a retry of the same
        // request id must re-run admission — capacity may have freed up.
        if let Some(rid) = &request.request_id {
            if !response.is_overloaded() {
                self.open_dedup.lock().insert(rid, &response);
            }
        }
        response
    }

    fn open_inner(&self, request: &Request) -> Response {
        let Some(parameters) = &request.parameters else {
            return Response::error(codes::BAD_REQUEST, "open: missing `parameters`");
        };
        let Some(kernel) = request.kernel.clone().filter(|k| !k.is_empty()) else {
            return Response::error(codes::BAD_REQUEST, "open: missing `kernel`");
        };
        if let Err(e) = spec::build_params(parameters) {
            return Response::error(codes::SPEC, e);
        }
        let technique = match spec::build_technique(&request.search.clone().unwrap_or_default()) {
            Ok(t) => t,
            Err(e) => return Response::error(codes::SPEC, e),
        };
        // Admission happens after the cheap spec validation (a malformed
        // open must not consume quota) but before the expensive space
        // generation (a shed open must not pay for it either).
        let tenant = Self::tenant_of(request);
        if let Err(shed) = self.admit_session(&tenant) {
            return *shed;
        }
        let admitted = self.open_admitted(request, parameters, kernel, technique, tenant.clone());
        if !admitted.ok {
            // The spec passed validation but the session never came to
            // life (space build, journal I/O): the slot goes back.
            self.release_session(&tenant, 0);
        }
        admitted
    }

    /// The post-admission tail of `open`: builds the space (through the
    /// cache when configured), the session, and its journal, then inserts
    /// the session under a fresh id.
    fn open_admitted(
        &self,
        request: &Request,
        parameters: &[spec::ParameterSpec],
        kernel: String,
        technique: Box<dyn atf_core::search::SearchTechnique>,
        tenant: String,
    ) -> Response {
        let params = match spec::build_params(parameters) {
            Ok(p) => p,
            Err(e) => return Response::error(codes::SPEC, e),
        };
        let groups = auto_group(params);
        // With a persistent space cache, probe it by the spec's content
        // hash before paying for generation; a miss generates (chunked,
        // intra-group parallel) and stores the result for the next open.
        let mut cache_hit = None;
        let gen_started = Instant::now();
        let space = match &self.config.space_cache {
            Some(dir) => {
                let cache = atf_core::spacegen::SpaceCache::new(dir).with_limits(
                    self.config.space_cache_max_entries,
                    self.config.space_cache_max_bytes,
                );
                let key = atf_core::spacegen::spec_key(parameters);
                match cache.load(&key) {
                    Some(cached) => {
                        cache_hit = Some(true);
                        SearchSpace::from_group_spaces(cached)
                    }
                    None => {
                        cache_hit = Some(false);
                        let generated = atf_core::spacegen::generate_groups_chunked(
                            &groups,
                            atf_core::spacegen::default_threads(),
                            &atf_core::trace::NullSink,
                        );
                        if let Err(e) = cache.store(&key, &generated) {
                            eprintln!("atf-service: could not store space cache entry: {e}");
                        }
                        SearchSpace::from_group_spaces(generated)
                    }
                }
            }
            None => SearchSpace::generate_parallel(&groups),
        };
        let space_gen = gen_started.elapsed();
        let space_size = space.len();
        let mut session = match TuningSession::new(space, technique) {
            Ok(s) => s,
            Err(e) => return Response::error(codes::TUNING, e),
        };
        session
            .metrics()
            .space_gen_micros
            .add(u64::try_from(space_gen.as_micros()).unwrap_or(u64::MAX));
        match cache_hit {
            Some(true) => session.metrics().space_cache_hits.inc(),
            Some(false) => session.metrics().space_cache_misses.inc(),
            None => {}
        }
        if let Some(a) = spec::build_abort(&request.abort.clone().unwrap_or_default()) {
            session = session.abort_condition(a);
        }
        if let Some(n) = request.breaker {
            session = session.circuit_breaker(n);
        }
        if let Some(w) = request.max_pending {
            session = session.max_pending(w as usize);
        }
        session = session.journal_checkpoint_every(SERVICE_CHECKPOINT_EVERY);
        let device = request
            .device
            .clone()
            .unwrap_or_else(|| "local".to_string());
        let workload = request.workload.clone().unwrap_or_default();

        // Journaling: attach a write-ahead journal keyed by
        // (kernel, device, workload); `resume: true` replays an existing
        // one so a crashed service or client continues where it stopped.
        let mut resumed = None;
        if let Some(dir) = &self.config.journal_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                return Response::error(
                    codes::TUNING,
                    format!("cannot create journal directory {dir:?}: {e}"),
                );
            }
            let path = dir.join(journal_file_name(&kernel, &device, &workload));
            if request.resume.unwrap_or(false) && path.exists() {
                match session.resume_from_journal(&path) {
                    Ok(n) => resumed = Some(n),
                    Err(e) => return Response::error(codes::TUNING, e),
                }
            } else {
                session = match session.journal_to(&path) {
                    Ok(s) => s,
                    Err(e) => return Response::error(codes::TUNING, e),
                };
            }
        }

        let id = format!("s{}", self.next_id.fetch_add(1, Ordering::Relaxed));
        let idx = self.shard_of(&id);
        {
            let mut shard = self.shards[idx].lock();
            shard.insert(
                id.clone(),
                ManagedSession {
                    session,
                    kernel,
                    device,
                    workload,
                    tenant,
                    last_touch: Instant::now(),
                    pending_since: HashMap::new(),
                    dedup: DedupWindow::default(),
                },
            );
            self.metrics.set_shard_sessions(idx, shard.len() as u64);
        }
        let mut resp = Response::ok();
        resp.session = Some(id);
        resp.space_size = Some(space_size.to_string());
        resp.resumed = resumed;
        resp
    }

    fn next(&self, request: &Request) -> Response {
        let eval_deadline = self.config.eval_deadline;
        let request_id = request.request_id.clone();
        self.with_session(request, |managed| {
            // A retried `next` whose response was lost gets the *same*
            // ticket and configuration back — not a second handout.
            if let Some(rid) = &request_id {
                if let Some(cached) = managed.dedup.get(rid) {
                    return cached;
                }
            }
            // A configuration held past the evaluation deadline is a client
            // that hung or died mid-measurement: forfeit its ticket as a
            // timeout failure and move on, rather than keeping a window
            // slot occupied forever. Each ticket's deadline runs from its
            // own handout.
            if let Some(deadline) = eval_deadline {
                let overdue: Vec<u64> = managed
                    .pending_since
                    .iter()
                    .filter(|(_, since)| since.elapsed() > deadline)
                    .map(|(&t, _)| t)
                    .collect();
                for ticket in overdue {
                    let _ = managed
                        .session
                        .report_ticket(ticket, Err(CostError::Timeout { limit: deadline }));
                    if managed.pending_since.remove(&ticket).is_some() {
                        // Forfeited capacity goes back to the pool.
                        self.release_inflight(&managed.tenant, 1);
                    }
                }
            }
            // Tenant in-flight cap: the reservation is taken before the
            // handout and returned when nothing was actually handed out.
            // A shed here is never remembered in the dedup window — a
            // retry must re-check, capacity may have freed up.
            if !self.try_acquire_inflight(&managed.tenant) {
                return self.shed(
                    &managed.tenant,
                    "tenant in-flight evaluation limit reached",
                    false,
                );
            }
            let mut resp = Response::ok();
            match managed.session.next_ticket() {
                Handout::Next(ticket, config) => {
                    managed.pending_since.insert(ticket, Instant::now());
                    resp.done = Some(false);
                    resp.ticket = Some(ticket);
                    resp.config = Some(config_to_wire(&config));
                }
                // Every window slot is handed out to some client: not done,
                // but nothing to serve until a report lands.
                Handout::Wait => {
                    self.release_inflight(&managed.tenant, 1);
                    resp.done = Some(false);
                    resp.retry = Some(true);
                }
                Handout::Done => {
                    self.release_inflight(&managed.tenant, 1);
                    resp.done = Some(true);
                }
            }
            if let Some(rid) = &request_id {
                managed.dedup.insert(rid, &resp);
            }
            resp
        })
    }

    fn report(&self, request: &Request) -> Response {
        let cost = request.cost;
        let valid = request.valid.unwrap_or(cost.is_some());
        let failure_kind = match request.failure.as_deref() {
            None => None,
            Some(label) => match FailureKind::from_label(label) {
                Some(kind) => Some(kind),
                None => {
                    return Response::error(
                        codes::BAD_REQUEST,
                        format!("report: unknown failure kind `{label}`"),
                    )
                }
            },
        };
        let wire_ticket = request.ticket;
        let request_id = request.request_id.clone();
        self.with_session(request, |managed| {
            // A report retried after a lost ACK must not be applied twice:
            // the remembered response (including its evaluation count) is
            // replayed instead.
            if let Some(rid) = &request_id {
                if let Some(cached) = managed.dedup.get(rid) {
                    return cached;
                }
            }
            let resp = (|| {
                let outcome = match (valid, cost) {
                    (true, Some(c)) => Ok(c),
                    // Claimed valid but no cost: the measurement is unusable.
                    (true, None) => Err(CostError::MeasurementFailed(
                        "report: `valid` without `cost`".into(),
                    )),
                    (false, _) => Err(CostError::from_kind(
                        failure_kind.unwrap_or(FailureKind::RunCrash),
                    )),
                };
                // Legacy clients omit the ticket: their report applies to the
                // oldest unreported configuration, which is the only one a
                // serial client can be measuring.
                let Some(ticket) = wire_ticket.or_else(|| managed.session.oldest_in_flight())
                else {
                    return Response::error(
                        codes::TUNING,
                        atf_core::tuner::TuningError::NoPendingConfiguration,
                    );
                };
                match managed.session.report_ticket(ticket, outcome) {
                    Ok(()) => {
                        if managed.pending_since.remove(&ticket).is_some() {
                            self.release_inflight(&managed.tenant, 1);
                        }
                        let mut resp = Response::ok();
                        resp.evaluations = Some(managed.session.status().evaluations());
                        resp.best_cost = managed.session.best_scalar_cost();
                        resp
                    }
                    Err(e) => Response::error(codes::TUNING, e),
                }
            })();
            if let Some(rid) = &request_id {
                managed.dedup.insert(rid, &resp);
            }
            resp
        })
    }

    fn status(&self, request: &Request) -> Response {
        self.with_session(request, |managed| {
            let status = managed.session.status();
            let mut resp = Response::ok();
            resp.evaluations = Some(status.evaluations());
            resp.valid_evaluations = Some(status.valid_evaluations());
            resp.failed_evaluations = Some(status.failed_evaluations());
            resp.space_size = Some(status.space_size().to_string());
            resp.improvements = Some(status.improvements().len() as u64);
            resp.best_cost = managed.session.best_scalar_cost();
            resp.best_config = managed
                .session
                .best()
                .map(|(config, _)| config_to_wire(config));
            resp.done = Some(managed.session.is_done());
            resp.failures = failures_to_wire(status);
            resp
        })
    }

    fn stats(&self, request: &Request) -> Response {
        // `stats` without a session is the service-level view: admission
        // and shed counters, session/tenant gauges, connection gauges.
        if request.session.is_none() {
            let mut resp = Response::ok();
            resp.stats = Some(self.metrics.snapshot());
            return resp;
        }
        self.with_session(request, |managed| {
            let mut resp = Response::ok();
            resp.stats = Some(managed.session.metrics().snapshot());
            resp.evaluations = Some(managed.session.status().evaluations());
            resp
        })
    }

    fn finish(&self, request: &Request) -> Response {
        // The first `finish` consumes the session; a retry after a lost
        // response would otherwise see `unknown_session` and lose the
        // final result. Answer it from the dedup window instead.
        if let Some(rid) = &request.request_id {
            if let Some(cached) = self.finish_dedup.lock().get(rid) {
                return cached;
            }
        }
        let response = self.finish_inner(request);
        if let Some(rid) = &request.request_id {
            self.finish_dedup.lock().insert(rid, &response);
        }
        response
    }

    fn finish_inner(&self, request: &Request) -> Response {
        let Some(id) = &request.session else {
            return Response::error(codes::BAD_REQUEST, "finish: missing `session`");
        };
        let idx = self.shard_of(id);
        let removed = {
            let mut shard = self.shards[idx].lock();
            let removed = shard.remove(id);
            if removed.is_some() {
                self.metrics.set_shard_sessions(idx, shard.len() as u64);
            }
            removed
        };
        let Some(managed) = removed else {
            return Response::error(codes::UNKNOWN_SESSION, format!("no session `{id}`"));
        };
        // The finished session's slot and any still-pending in-flight
        // reservations return to the pool.
        self.release_session(&managed.tenant, managed.pending_since.len());
        let failures = failures_to_wire(managed.session.status());
        match managed.session.finish() {
            Ok(result) => {
                self.merge_result(&managed.kernel, &managed.device, &managed.workload, &result);
                let mut resp = Response::ok();
                resp.best_config = Some(config_to_wire(&result.best_config));
                resp.best_cost = Some(result.best_cost);
                resp.evaluations = Some(result.evaluations);
                resp.valid_evaluations = Some(result.valid_evaluations);
                resp.failed_evaluations = Some(result.failed_evaluations);
                resp.space_size = Some(result.space_size.to_string());
                resp.improvements = Some(result.improvements.len() as u64);
                resp.failures = failures;
                resp
            }
            Err(e) => {
                let mut resp = Response::error(codes::TUNING, e);
                resp.failures = failures;
                resp
            }
        }
    }

    fn lookup(&self, request: &Request) -> Response {
        let Some(kernel) = &request.kernel else {
            return Response::error(codes::BAD_REQUEST, "lookup: missing `kernel`");
        };
        let device = request.device.as_deref().unwrap_or("local");
        let workload = request.workload.as_deref().unwrap_or("");
        let db = self.db.lock();
        match db.lookup(kernel, device, workload) {
            Some(record) => {
                let mut resp = Response::ok();
                resp.best_config = Some(config_to_wire(&record.config()));
                resp.best_cost = Some(record.cost);
                resp.evaluations = Some(record.evaluations);
                resp.space_size = Some(record.space_size.clone());
                resp.source = Some("database".to_string());
                resp
            }
            None => Response::error(
                codes::NOT_FOUND,
                format!("no record for ({kernel}, {device}, {workload})"),
            ),
        }
    }

    /// Merges a finished result into the database (monotone: an existing
    /// cheaper record wins) and, with a path configured, appends the
    /// accepted record to the on-disk log — O(record) bytes per store, not
    /// a whole-file rewrite. The log compacts into a checkpoint every
    /// [`atf_core::db::DB_COMPACT_EVERY`] appends.
    fn merge_result(
        &self,
        kernel: &str,
        device: &str,
        workload: &str,
        result: &atf_core::tuner::TuningResult<f64>,
    ) {
        // The log lock (when persisting) comes first: appends serialize on
        // it while the db index lock is held only for the store itself.
        let mut log_guard = if self.config.db_path.is_some() {
            Some(self.db_log.lock())
        } else {
            None
        };
        let (stored, record) = {
            let mut db = self.db.lock();
            let stored = db.store(
                kernel,
                device,
                workload,
                &result.best_config,
                result.best_cost,
                result.evaluations,
                result.space_size,
            );
            let record = if stored && log_guard.is_some() {
                db.record(kernel, device, workload)
            } else {
                None
            };
            (stored, record)
        };
        let Some(log) = log_guard.as_mut().and_then(|g| g.as_mut()) else {
            return;
        };
        // A pending legacy-format migration (or a full log) compacts
        // before the append lands in the fresh log.
        if log.should_compact() {
            self.compact_log(log);
        }
        if let (true, Some(record)) = (stored, record) {
            match log.append(&record) {
                Ok(()) => self.metrics.db_appends.inc(),
                Err(e) => eprintln!("atf-service: could not append to database log: {e}"),
            }
        }
    }

    /// Compacts the record log into a fresh checkpoint. The caller holds
    /// the log lock; the db lock is taken only long enough to clone the
    /// index, so readers and stores never wait behind compaction I/O.
    fn compact_log(&self, log: &mut DatabaseLog) {
        let snapshot = self.db.lock().clone();
        match log.compact(&snapshot) {
            Ok(report) => {
                self.metrics.db_compactions.inc();
                self.trace
                    .emit(&TraceEvent::db_compact(report.records, report.micros));
            }
            Err(e) => eprintln!("atf-service: could not compact database log: {e}"),
        }
    }

    /// One batched sweeper pass over the shards: a *single* lock
    /// acquisition per shard collects both the sessions idle past the
    /// timeout (removed from the table) and one stats snapshot per
    /// remaining live session. Snapshots are atomic-counter reads — cheap
    /// enough to take under a shard lock — but serialization, file I/O,
    /// and database merging all happen with no shard lock held. Shards
    /// are visited one at a time, so sessions elsewhere keep serving
    /// mid-sweep (they land in this batch or the next).
    fn sweep_shards(
        &self,
        expire: bool,
        stats: bool,
    ) -> (Vec<(String, ManagedSession)>, Vec<StatsLine>) {
        let timeout = self.config.idle_timeout;
        let mut expired: Vec<(String, ManagedSession)> = Vec::new();
        let mut lines: Vec<StatsLine> = Vec::new();
        for (idx, shard) in self.shards.iter().enumerate() {
            let mut sessions = shard.lock();
            if expire {
                let ids: Vec<String> = sessions
                    .iter()
                    .filter(|(_, m)| m.last_touch.elapsed() > timeout)
                    .map(|(id, _)| id.clone())
                    .collect();
                if !ids.is_empty() {
                    expired.extend(
                        ids.into_iter()
                            .filter_map(|id| sessions.remove(&id).map(|m| (id, m))),
                    );
                    self.metrics.set_shard_sessions(idx, sessions.len() as u64);
                }
            }
            if stats {
                // After expiry above, so a just-expired session leaves no
                // trailing stats line.
                lines.extend(sessions.iter().map(|(id, managed)| StatsLine {
                    session: id.clone(),
                    kernel: managed.kernel.clone(),
                    stats: managed.session.metrics().snapshot(),
                }));
            }
        }
        (expired, lines)
    }

    /// Finishes sessions removed by a sweep: returns their admission
    /// capacity and merges each best-so-far into the database. Runs with
    /// no shard lock held (takes the db lock, possibly appends to disk).
    fn finish_expired(&self, expired: Vec<(String, ManagedSession)>) -> usize {
        let count = expired.len();
        for (id, managed) in expired {
            let ManagedSession {
                session,
                kernel,
                device,
                workload,
                tenant,
                pending_since,
                ..
            } = managed;
            // Expired capacity returns to the pool before the (possibly
            // slow) database merge.
            self.release_session(&tenant, pending_since.len());
            match session.finish() {
                Ok(result) => {
                    self.merge_result(&kernel, &device, &workload, &result);
                    eprintln!(
                        "atf-service: expired idle session `{id}` (kernel `{kernel}`); \
                         merged best cost {} ({} evaluations) into the database",
                        result.best_cost, result.evaluations
                    );
                }
                Err(e) => {
                    eprintln!(
                        "atf-service: expired idle session `{id}` (kernel `{kernel}`); \
                         nothing to merge: {e}"
                    );
                }
            }
        }
        count
    }

    /// Serializes and appends stats lines to `stats.ndjson` in the
    /// journal directory (no-op without one); returns how many lines were
    /// written. No shard lock is held here.
    fn append_stats(&self, lines: Vec<StatsLine>) -> std::io::Result<usize> {
        let Some(dir) = &self.config.journal_dir else {
            return Ok(0);
        };
        let rendered: Vec<String> = lines
            .iter()
            .filter_map(|line| serde_json::to_string(line).ok())
            .collect();
        if rendered.is_empty() {
            return Ok(0);
        }
        std::fs::create_dir_all(dir)?;
        let mut out = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("stats.ndjson"))?;
        use std::io::Write;
        for line in &rendered {
            writeln!(out, "{line}")?;
        }
        Ok(rendered.len())
    }

    /// Appends one metrics-snapshot line per live session to
    /// `stats.ndjson` in the journal directory (no-op without one);
    /// returns how many lines were written. This leaves a coarse
    /// throughput/utilization timeline on disk next to the run journals.
    pub fn write_stats_snapshots(&self) -> std::io::Result<usize> {
        let (_, lines) = self.sweep_shards(false, true);
        self.append_stats(lines)
    }

    /// The server's periodic sweep: idle expiry and stats snapshotting in
    /// one batched pass — each shard lock is taken once per sweep instead
    /// of once per concern. Returns `(expired, stats lines written)`;
    /// stats failures are swallowed with the [`sweep_stats`] policy.
    ///
    /// [`sweep_stats`]: SessionManager::sweep_stats
    pub fn sweep(&self) -> (usize, usize) {
        // Stats snapshots are only collected when there is somewhere to
        // write them — without a journal dir the pass is expiry-only.
        let stats = self.config.journal_dir.is_some();
        let (expired, lines) = self.sweep_shards(true, stats);
        let count = self.finish_expired(expired);
        let written = self.log_stats_outcome(self.append_stats(lines));
        (count, written)
    }

    /// Sweep-safe stats snapshotting: a failed `stats.ndjson` append (full
    /// disk, permissions, the directory vanishing) must not kill the
    /// sweep thread or any session — the telemetry file is an observers'
    /// convenience, not session state. The first failure of an outage is
    /// logged; repeats stay quiet until a sweep succeeds again.
    pub fn sweep_stats(&self) -> usize {
        self.log_stats_outcome(self.write_stats_snapshots())
    }

    fn log_stats_outcome(&self, outcome: std::io::Result<usize>) -> usize {
        match outcome {
            Ok(n) => {
                self.stats_write_failed.store(false, Ordering::Relaxed);
                n
            }
            Err(e) => {
                if !self.stats_write_failed.swap(true, Ordering::Relaxed) {
                    eprintln!("atf-service: could not write stats snapshots (will keep sweeping, logged once per outage): {e}");
                }
                0
            }
        }
    }

    /// Persists the database now (used at shutdown): compacts the record
    /// log into an atomically-renamed checkpoint. The index is snapshotted
    /// under a brief db-lock acquisition and written with only the log
    /// lock held, so no wire op ever blocks behind persist file I/O.
    pub fn persist(&self) -> std::io::Result<()> {
        let mut log_guard = self.db_log.lock();
        if let Some(log) = log_guard.as_mut() {
            let snapshot = self.db.lock().clone();
            let report = log.compact(&snapshot)?;
            self.metrics.db_compactions.inc();
            self.trace
                .emit(&TraceEvent::db_compact(report.records, report.micros));
        }
        Ok(())
    }

    /// Test/chaos hook: every subsequent database append and compaction
    /// sleeps `delay` before touching the file system, simulating slow
    /// storage behind `persist` and `finish`.
    pub fn inject_db_io_delay(&self, delay: Duration) {
        if let Some(log) = self.db_log.lock().as_mut() {
            log.set_io_delay(delay);
        }
    }

    /// Graceful-drain hook: checkpoints every live session's run journal
    /// (fsync + compaction into the atomically-replaced checkpoint file)
    /// so each lands as the smallest resumable on-disk artifact, without
    /// finishing the sessions — a restarted service or client resumes
    /// them with `open{resume:true}`. Returns (live sessions, journals
    /// checkpointed); sessions without a journal are counted but skipped,
    /// and a checkpoint failure is logged, not fatal — the write-ahead
    /// tail is still on disk and resumable.
    pub fn checkpoint_sessions(&self) -> (usize, usize) {
        let mut total = 0usize;
        let mut checkpointed = 0usize;
        // One shard at a time: sessions on the other shards keep serving
        // while this shard's journals are checkpointed.
        for shard in &self.shards {
            let mut sessions = shard.lock();
            total += sessions.len();
            for (id, managed) in sessions.iter_mut() {
                match managed.session.checkpoint_journal() {
                    Ok(true) => checkpointed += 1,
                    Ok(false) => {}
                    Err(e) => {
                        eprintln!("atf-service: drain: could not checkpoint journal of `{id}`: {e}")
                    }
                }
            }
        }
        self.metrics.drained_sessions.add(checkpointed as u64);
        (total, checkpointed)
    }

    /// The manager's trace sink (the server emits its `drain` event here
    /// so one stream carries the whole admission/shed/drain story).
    pub fn trace_sink(&self) -> &Arc<dyn TraceSink> {
        &self.trace
    }

    /// Evicts sessions idle longer than the configured timeout; returns
    /// how many were expired. A session whose client finished measuring
    /// but never fetched the result (or simply vanished) still has a
    /// best-so-far — that is merged into the database before eviction, so
    /// an abandoned session's work is not thrown away.
    pub fn expire_idle(&self) -> usize {
        let (expired, _) = self.sweep_shards(true, false);
        self.finish_expired(expired)
    }

    /// Number of live sessions (summed shard by shard, no global lock).
    pub fn live_sessions(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Read access to the database (for tests and diagnostics).
    pub fn with_db<T>(&self, f: impl FnOnce(&TuningDatabase) -> T) -> T {
        f(&self.db.lock())
    }

    /// Mutable access to the in-memory database (for tests and benches);
    /// changes made here bypass the persistence log.
    pub fn with_db_mut<T>(&self, f: impl FnOnce(&mut TuningDatabase) -> T) -> T {
        f(&mut self.db.lock())
    }

    fn with_session(
        &self,
        request: &Request,
        f: impl FnOnce(&mut ManagedSession) -> Response,
    ) -> Response {
        let Some(id) = &request.session else {
            return Response::error(
                codes::BAD_REQUEST,
                format!("{}: missing `session`", request.cmd),
            );
        };
        let mut sessions = self.shards[self.shard_of(id)].lock();
        match sessions.get_mut(id) {
            Some(managed) => {
                managed.last_touch = Instant::now();
                f(managed)
            }
            None => Response::error(codes::UNKNOWN_SESSION, format!("no session `{id}`")),
        }
    }
}

impl std::fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionManager")
            .field("live_sessions", &self.live_sessions())
            .field("db_records", &self.with_db(|db| db.len()))
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atf_core::spec::{IntervalSpec, ParameterSpec, SearchSpec};

    fn open_request(kernel: &str) -> Request {
        let mut req = Request::new("open");
        req.kernel = Some(kernel.to_string());
        req.parameters = Some(vec![ParameterSpec {
            name: "X".into(),
            interval: Some(IntervalSpec {
                begin: 1,
                end: 10,
                step: 1,
            }),
            set: None,
            constraint: None,
        }]);
        req.search = Some(SearchSpec {
            technique: "exhaustive".into(),
            seed: 0,
        });
        req
    }

    fn drive_to_completion(m: &SessionManager, id: &str, f: impl Fn(u64) -> f64) -> Response {
        loop {
            let next = m.handle(&Request::new("next").with_session(id));
            assert!(next.ok, "{next:?}");
            if next.done == Some(true) {
                break;
            }
            let x = next.config.unwrap()["X"];
            let mut report = Request::new("report").with_session(id);
            report.cost = Some(f(x));
            let r = m.handle(&report);
            assert!(r.ok, "{r:?}");
        }
        m.handle(&Request::new("finish").with_session(id))
    }

    #[test]
    fn open_drive_finish_lookup() {
        let m = SessionManager::in_memory();
        let opened = m.handle(&open_request("toy"));
        assert!(opened.ok, "{opened:?}");
        assert_eq!(opened.space_size.as_deref(), Some("10"));
        let id = opened.session.unwrap();

        let finished = drive_to_completion(&m, &id, |x| (x as f64 - 7.0).abs());
        assert!(finished.ok, "{finished:?}");
        assert_eq!(finished.best_config.as_ref().unwrap()["X"], 7);
        assert_eq!(finished.best_cost, Some(0.0));
        assert_eq!(finished.evaluations, Some(10));
        assert_eq!(m.live_sessions(), 0);

        // The result is now served from the database without tuning.
        let mut lookup = Request::new("lookup");
        lookup.kernel = Some("toy".into());
        let found = m.handle(&lookup);
        assert!(found.ok, "{found:?}");
        assert_eq!(found.best_config.unwrap()["X"], 7);
        assert_eq!(found.source.as_deref(), Some("database"));
    }

    #[test]
    fn structured_errors() {
        let m = SessionManager::in_memory();
        let r = m.handle(&Request::new("warp"));
        assert_eq!(r.code.as_deref(), Some(codes::UNKNOWN_CMD));
        let r = m.handle(&Request::new("next").with_session("s99"));
        assert_eq!(r.code.as_deref(), Some(codes::UNKNOWN_SESSION));
        let r = m.handle(&Request::new("open"));
        assert_eq!(r.code.as_deref(), Some(codes::BAD_REQUEST));
        let r = m.handle(&Request::new("lookup"));
        assert_eq!(r.code.as_deref(), Some(codes::BAD_REQUEST));
        let line = m.handle_line("this is not json");
        let resp: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(resp.code.as_deref(), Some(codes::PARSE));

        // Report with nothing pending is a tuning-state error.
        let opened = m.handle(&open_request("t"));
        let id = opened.session.unwrap();
        let mut report = Request::new("report").with_session(&id);
        report.cost = Some(1.0);
        let r = m.handle(&report);
        assert_eq!(r.code.as_deref(), Some(codes::TUNING));
    }

    #[test]
    fn garbage_request_lines_yield_structured_errors() {
        // Fuzz-ish sweep: every malformed line a client (or a torn TCP
        // read) can produce must come back as a parseable failure
        // response with an error code — never a panic, never silence.
        let m = SessionManager::in_memory();
        let garbage = [
            "",
            "   ",
            "null",
            "true",
            "42",
            "\"just a string\"",
            "[1,2,3]",
            "{}",
            "{\"cmd\":",
            "{\"cmd\": \"open\", \"parameters\":",
            "{\"cmd\": 7}",
            "{\"cmd\": [\"open\"]}",
            "{\"cmd\": \"open\", \"parameters\": \"not a list\"}",
            "{\"cmd\": \"open\", \"parameters\": [{\"name\": 3}]}",
            "{\"cmd\": \"report\", \"session\": 17}",
            "{\"cmd\": \"report\", \"cost\": \"NaN\"}",
            "{\"cmd\": \"next\", \"session\": {\"nested\": true}}",
            "\u{0}\u{1}\u{2}",
            "{\"cmd\": \"open\"} trailing garbage",
            "{\"cmd\": \"open\", \"cmd\": \"open\"",
        ];
        for line in garbage {
            let reply = m.handle_line(line);
            let resp: Response = serde_json::from_str(&reply)
                .unwrap_or_else(|e| panic!("unparseable reply to {line:?}: {e}\n{reply}"));
            assert!(!resp.ok, "garbage line {line:?} must not succeed");
            assert!(resp.code.is_some(), "no error code for {line:?}");
        }
        // Truncations of a valid request: every strict prefix must fail
        // cleanly too (the full line succeeds).
        let full = "{\"cmd\": \"lookup\", \"kernel\": \"k\"}";
        for n in 0..full.len() {
            let reply = m.handle_line(&full[..n]);
            let resp: Response = serde_json::from_str(&reply).unwrap();
            assert!(!resp.ok, "prefix {:?} must not succeed", &full[..n]);
        }
        assert_eq!(m.live_sessions(), 0);
    }

    #[test]
    fn stats_op_snapshots_session_metrics() {
        let m = SessionManager::in_memory();
        let id = m.handle(&open_request("observed")).session.unwrap();

        // Three successes and one classified failure.
        for _ in 0..3 {
            let next = m.handle(&Request::new("next").with_session(&id));
            let x = next.config.unwrap()["X"];
            let mut report = Request::new("report").with_session(&id);
            report.cost = Some(x as f64);
            assert!(m.handle(&report).ok);
        }
        assert!(m
            .handle(&Request::new("next").with_session(&id))
            .config
            .is_some());
        let mut report = Request::new("report").with_session(&id);
        report.valid = Some(false);
        report.failure = Some("timeout".into());
        assert!(m.handle(&report).ok);

        let resp = m.handle(&Request::new("stats").with_session(&id));
        assert!(resp.ok, "{resp:?}");
        let stats = resp.stats.expect("stats payload");
        assert_eq!(stats.evaluations, 4);
        assert_eq!(stats.valid_evaluations, 3);
        assert_eq!(stats.failed_evaluations, 1);
        assert_eq!(stats.failures.get("timeout"), Some(&1));
        assert_eq!(stats.eval_latency.count, 4);
        assert_eq!(stats.window.capacity, 1);

        // The snapshot agrees with the status view of the same session.
        let status = m.handle(&Request::new("status").with_session(&id));
        assert_eq!(Some(stats.evaluations), status.evaluations);
        assert_eq!(Some(stats.failed_evaluations), status.failed_evaluations);

        // And it round-trips the wire encoding.
        let line =
            serde_json::to_string(&m.handle(&Request::new("stats").with_session(&id))).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.stats.unwrap().evaluations, 4);

        // Unknown session: structured error, same as every other op.
        let r = m.handle(&Request::new("stats").with_session("s404"));
        assert_eq!(r.code.as_deref(), Some(codes::UNKNOWN_SESSION));
    }

    #[test]
    fn stats_snapshots_are_written_to_the_journal_dir() {
        let dir = std::env::temp_dir().join(format!("atf-mgr-stats-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let manager = SessionManager::new(ManagerConfig {
            journal_dir: Some(dir.clone()),
            ..ManagerConfig::default()
        })
        .unwrap();
        // No sessions: nothing to write, no file.
        assert_eq!(manager.write_stats_snapshots().unwrap(), 0);

        let id = manager.handle(&open_request("snap")).session.unwrap();
        let next = manager.handle(&Request::new("next").with_session(&id));
        let mut report = Request::new("report").with_session(&id);
        report.cost = Some(next.config.unwrap()["X"] as f64);
        assert!(manager.handle(&report).ok);

        assert_eq!(manager.write_stats_snapshots().unwrap(), 1);
        assert_eq!(manager.write_stats_snapshots().unwrap(), 1);
        let text = std::fs::read_to_string(dir.join("stats.ndjson")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one line per sweep per live session");
        for line in lines {
            let parsed: StatsLine = serde_json::from_str(line).unwrap();
            assert_eq!(parsed.session, id);
            assert_eq!(parsed.kernel, "snap");
            assert_eq!(parsed.stats.evaluations, 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn database_merge_is_monotone() {
        let m = SessionManager::in_memory();

        // First run: cost minimum 3 (at X=4, cost |x-4|+3).
        let id = m.handle(&open_request("k")).session.unwrap();
        let r1 = drive_to_completion(&m, &id, |x| (x as f64 - 4.0).abs() + 3.0);
        assert_eq!(r1.best_cost, Some(3.0));

        // Second run over the same key finds something better; the record
        // must improve.
        let id = m.handle(&open_request("k")).session.unwrap();
        let r2 = drive_to_completion(&m, &id, |x| (x as f64 - 8.0).abs());
        assert_eq!(r2.best_cost, Some(0.0));
        let mut lookup = Request::new("lookup");
        lookup.kernel = Some("k".into());
        assert_eq!(m.handle(&lookup).best_cost, Some(0.0));

        // Third run is worse; the database keeps the cheaper record.
        let id = m.handle(&open_request("k")).session.unwrap();
        let r3 = drive_to_completion(&m, &id, |x| x as f64 + 50.0);
        assert_eq!(r3.best_cost, Some(51.0));
        assert_eq!(m.handle(&lookup).best_cost, Some(0.0));
    }

    #[test]
    fn sessions_are_concurrent_and_independent() {
        let m = SessionManager::in_memory();
        let a = m.handle(&open_request("ka")).session.unwrap();
        let b = m.handle(&open_request("kb")).session.unwrap();
        assert_ne!(a, b);
        assert_eq!(m.live_sessions(), 2);

        // Interleave the two sessions.
        let fa = drive_to_completion(&m, &a, |x| (x as f64 - 2.0).abs());
        let fb = drive_to_completion(&m, &b, |x| (x as f64 - 9.0).abs());
        assert_eq!(fa.best_config.unwrap()["X"], 2);
        assert_eq!(fb.best_config.unwrap()["X"], 9);
    }

    #[test]
    fn idle_sessions_expire() {
        let manager = SessionManager::new(ManagerConfig {
            idle_timeout: Duration::from_millis(0),
            ..ManagerConfig::default()
        })
        .unwrap();
        let id = manager.handle(&open_request("t")).session.unwrap();
        assert_eq!(manager.live_sessions(), 1);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(manager.expire_idle(), 1);
        let r = manager.handle(&Request::new("next").with_session(&id));
        assert_eq!(r.code.as_deref(), Some(codes::UNKNOWN_SESSION));
    }

    #[test]
    fn expired_sessions_merge_their_best_into_the_database() {
        let manager = SessionManager::new(ManagerConfig {
            idle_timeout: Duration::from_millis(0),
            ..ManagerConfig::default()
        })
        .unwrap();
        let id = manager.handle(&open_request("orphan")).session.unwrap();
        // Measure a few configurations, then vanish without `finish`.
        for _ in 0..3 {
            let next = manager.handle(&Request::new("next").with_session(&id));
            let x = next.config.unwrap()["X"];
            let mut report = Request::new("report").with_session(&id);
            report.cost = Some((x as f64 - 2.0).abs() + 1.0);
            assert!(manager.handle(&report).ok);
        }
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(manager.expire_idle(), 1);

        // The abandoned session's best (X=2, cost 1) is in the database.
        let mut lookup = Request::new("lookup");
        lookup.kernel = Some("orphan".into());
        let found = manager.handle(&lookup);
        assert!(found.ok, "{found:?}");
        assert_eq!(found.best_config.unwrap()["X"], 2);
        assert_eq!(found.best_cost, Some(1.0));
    }

    #[test]
    fn failure_kinds_are_counted_and_surfaced() {
        let m = SessionManager::in_memory();
        let id = m.handle(&open_request("flaky")).session.unwrap();

        // Two timeouts, one crash, one success.
        for failure in ["timeout", "timeout", "crash"] {
            let next = m.handle(&Request::new("next").with_session(&id));
            assert_eq!(next.done, Some(false));
            let mut report = Request::new("report").with_session(&id);
            report.valid = Some(false);
            report.failure = Some(failure.into());
            assert!(m.handle(&report).ok);
        }
        let next = m.handle(&Request::new("next").with_session(&id));
        let x = next.config.unwrap()["X"];
        let mut report = Request::new("report").with_session(&id);
        report.cost = Some(x as f64);
        assert!(m.handle(&report).ok);

        let status = m.handle(&Request::new("status").with_session(&id));
        let failures = status.failures.unwrap();
        assert_eq!(failures["timeout"], 2);
        assert_eq!(failures["crash"], 1);
        assert_eq!(status.failed_evaluations, Some(3));

        // An unknown label is rejected, not silently misfiled.
        let mut bad = Request::new("report").with_session(&id);
        bad.valid = Some(false);
        bad.failure = Some("gremlins".into());
        assert_eq!(m.handle(&bad).code.as_deref(), Some(codes::BAD_REQUEST));
    }

    #[test]
    fn breaker_aborts_a_session_with_a_structured_error() {
        let m = SessionManager::in_memory();
        let mut req = open_request("broken");
        req.breaker = Some(2);
        let id = m.handle(&req).session.unwrap();
        for _ in 0..2 {
            let next = m.handle(&Request::new("next").with_session(&id));
            assert_eq!(next.done, Some(false));
            let mut report = Request::new("report").with_session(&id);
            report.valid = Some(false);
            report.failure = Some("crash".into());
            assert!(m.handle(&report).ok);
        }
        // The breaker tripped: no more configurations, finish is an error.
        let next = m.handle(&Request::new("next").with_session(&id));
        assert_eq!(next.done, Some(true));
        let finished = m.handle(&Request::new("finish").with_session(&id));
        assert!(!finished.ok);
        assert_eq!(finished.code.as_deref(), Some(codes::TUNING));
        assert!(
            finished
                .error
                .as_deref()
                .unwrap()
                .contains("circuit breaker"),
            "{finished:?}"
        );
        assert_eq!(finished.failures.unwrap()["crash"], 2);
    }

    #[test]
    fn overdue_pending_config_is_timed_out_and_advanced() {
        let manager = SessionManager::new(ManagerConfig {
            eval_deadline: Some(Duration::from_millis(10)),
            ..ManagerConfig::default()
        })
        .unwrap();
        let id = manager.handle(&open_request("slow")).session.unwrap();
        let first = manager.handle(&Request::new("next").with_session(&id));
        let first_x = first.config.unwrap()["X"];
        assert_eq!(first.ticket, Some(1));

        // Within the deadline the window (1) is fully handed out: `next`
        // answers "retry later" rather than double-booking the ticket.
        let again = manager.handle(&Request::new("next").with_session(&id));
        assert!(again.config.is_none());
        assert_eq!(again.retry, Some(true));
        assert_eq!(again.done, Some(false));

        // Past the deadline, the held ticket is forfeited as a timeout and
        // the session advances to a new configuration under a new ticket.
        std::thread::sleep(Duration::from_millis(25));
        let advanced = manager.handle(&Request::new("next").with_session(&id));
        assert_ne!(advanced.config.unwrap()["X"], first_x);
        assert_eq!(advanced.ticket, Some(2));
        let status = manager.handle(&Request::new("status").with_session(&id));
        assert_eq!(status.failures.unwrap()["timeout"], 1);

        // The forfeited ticket's late report is rejected, not double-counted.
        let mut late = Request::new("report").with_session(&id);
        late.cost = Some(1.0);
        late.ticket = Some(1);
        let r = manager.handle(&late);
        assert_eq!(r.code.as_deref(), Some(codes::TUNING));
    }

    #[test]
    fn concurrent_clients_pull_distinct_tickets() {
        // One session, window 3: three clients each hold a distinct
        // configuration; reports land out of ticket order and the final
        // result equals an uninterrupted serial run.
        let m = SessionManager::in_memory();
        let mut req = open_request("shared");
        req.max_pending = Some(3);
        let id = m.handle(&req).session.unwrap();

        let cost = |x: u64| (x as f64 - 7.0).abs();
        loop {
            // Pull up to three tickets (as three clients would).
            let mut held: Vec<(u64, u64)> = Vec::new();
            let mut done = false;
            for _ in 0..3 {
                let next = m.handle(&Request::new("next").with_session(&id));
                assert!(next.ok, "{next:?}");
                if next.done == Some(true) {
                    done = true;
                    break;
                }
                if next.retry == Some(true) {
                    break;
                }
                held.push((next.ticket.unwrap(), next.config.unwrap()["X"]));
            }
            let tickets: std::collections::HashSet<u64> = held.iter().map(|&(t, _)| t).collect();
            assert_eq!(tickets.len(), held.len(), "tickets must be distinct");
            // Report newest-first: out of ticket order.
            for &(t, x) in held.iter().rev() {
                let mut report = Request::new("report").with_session(&id);
                report.cost = Some(cost(x));
                report.ticket = Some(t);
                assert!(m.handle(&report).ok);
            }
            if done && held.is_empty() {
                break;
            }
        }
        let finished = m.handle(&Request::new("finish").with_session(&id));
        assert!(finished.ok, "{finished:?}");
        assert_eq!(finished.best_config.unwrap()["X"], 7);
        assert_eq!(finished.best_cost, Some(0.0));
        assert_eq!(finished.evaluations, Some(10));
    }

    #[test]
    fn journaled_service_session_resumes_after_restart() {
        let dir = std::env::temp_dir().join(format!("atf-mgr-journal-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = ManagerConfig {
            journal_dir: Some(dir.clone()),
            ..ManagerConfig::default()
        };
        let cost = |x: u64| (x as f64 - 6.0).abs() + 0.5;

        // First lifetime: measure 4 of 10 evaluations, then "crash"
        // (drop the manager without `finish`).
        let manager = SessionManager::new(config.clone()).unwrap();
        let id = manager.handle(&open_request("journaled")).session.unwrap();
        for _ in 0..4 {
            let next = manager.handle(&Request::new("next").with_session(&id));
            let x = next.config.unwrap()["X"];
            let mut report = Request::new("report").with_session(&id);
            report.cost = Some(cost(x));
            assert!(manager.handle(&report).ok);
        }
        drop(manager);

        // Second lifetime: open with `resume` — 4 evaluations replay from
        // the journal, the remaining 6 are measured, the result matches an
        // uninterrupted exhaustive run.
        let manager = SessionManager::new(config).unwrap();
        let mut req = open_request("journaled");
        req.resume = Some(true);
        let opened = manager.handle(&req);
        assert!(opened.ok, "{opened:?}");
        assert_eq!(opened.resumed, Some(4));
        let id = opened.session.unwrap();
        let finished = drive_to_completion(&manager, &id, cost);
        assert!(finished.ok, "{finished:?}");
        assert_eq!(finished.best_config.unwrap()["X"], 6);
        assert_eq!(finished.best_cost, Some(0.5));
        assert_eq!(finished.evaluations, Some(10));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_next_with_same_request_id_returns_same_ticket() {
        let m = SessionManager::in_memory();
        let id = m.handle(&open_request("dedup-next")).session.unwrap();
        let mut next = Request::new("next").with_session(&id);
        next.request_id = Some("n-1".into());
        let first = m.handle(&next);
        assert_eq!(first.ticket, Some(1));
        let x = first.config.as_ref().unwrap()["X"];

        // The retry (same id) replays the same handout — no second ticket,
        // even though the window would normally answer `retry: true`.
        let replay = m.handle(&next);
        assert_eq!(replay.ticket, Some(1));
        assert_eq!(replay.config.unwrap()["X"], x);

        // A *different* id is a genuine new request.
        let mut other = Request::new("next").with_session(&id);
        other.request_id = Some("n-2".into());
        assert_eq!(m.handle(&other).retry, Some(true));
    }

    #[test]
    fn duplicate_report_with_same_request_id_is_not_double_counted() {
        let m = SessionManager::in_memory();
        let id = m.handle(&open_request("dedup-report")).session.unwrap();
        let next = m.handle(&Request::new("next").with_session(&id));
        let mut report = Request::new("report").with_session(&id);
        report.cost = Some(next.config.unwrap()["X"] as f64);
        report.ticket = next.ticket;
        report.request_id = Some("r-1".into());
        let first = m.handle(&report);
        assert!(first.ok, "{first:?}");
        assert_eq!(first.evaluations, Some(1));

        // The retry is replayed from the window: same response, still one
        // evaluation — not a `tuning` error, not a double count.
        let replay = m.handle(&report);
        assert!(replay.ok, "{replay:?}");
        assert_eq!(replay.evaluations, Some(1));
        let status = m.handle(&Request::new("status").with_session(&id));
        assert_eq!(status.evaluations, Some(1));
    }

    #[test]
    fn duplicate_open_does_not_create_a_twin_session() {
        let m = SessionManager::in_memory();
        let mut req = open_request("dedup-open");
        req.request_id = Some("o-1".into());
        let first = m.handle(&req);
        let replay = m.handle(&req);
        assert_eq!(first.session, replay.session);
        assert_eq!(m.live_sessions(), 1);
    }

    #[test]
    fn retried_finish_is_answered_from_the_dedup_window() {
        let m = SessionManager::in_memory();
        let id = m.handle(&open_request("dedup-finish")).session.unwrap();
        let finished = drive_to_completion(&m, &id, |x| (x as f64 - 3.0).abs());
        assert!(finished.ok);
        // drive_to_completion's finish carried no id; redo with one on a
        // fresh session to exercise the retry path.
        let id = m.handle(&open_request("dedup-finish2")).session.unwrap();
        loop {
            let next = m.handle(&Request::new("next").with_session(&id));
            if next.done == Some(true) {
                break;
            }
            let mut report = Request::new("report").with_session(&id);
            report.cost = Some(next.config.unwrap()["X"] as f64);
            assert!(m.handle(&report).ok);
        }
        let mut finish = Request::new("finish").with_session(&id);
        finish.request_id = Some("f-1".into());
        let first = m.handle(&finish);
        assert!(first.ok, "{first:?}");
        assert_eq!(first.best_cost, Some(1.0));

        // The session is gone, but the retry still gets the final result
        // instead of `unknown_session`.
        let replay = m.handle(&finish);
        assert!(replay.ok, "{replay:?}");
        assert_eq!(replay.best_cost, Some(1.0));
        assert_eq!(replay.best_config, first.best_config);

        // Without the id, the same retry would have failed.
        let bare = m.handle(&Request::new("finish").with_session(&id));
        assert_eq!(bare.code.as_deref(), Some(codes::UNKNOWN_SESSION));
    }

    #[test]
    fn sweep_stats_survives_a_failing_telemetry_file() {
        let dir = std::env::temp_dir().join(format!("atf-mgr-sweepfail-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let manager = SessionManager::new(ManagerConfig {
            journal_dir: Some(dir.clone()),
            ..ManagerConfig::default()
        })
        .unwrap();
        let id = manager.handle(&open_request("sweep")).session.unwrap();
        let next = manager.handle(&Request::new("next").with_session(&id));
        let mut report = Request::new("report").with_session(&id);
        report.cost = Some(next.config.unwrap()["X"] as f64);
        assert!(manager.handle(&report).ok);

        // Make the telemetry file unappendable: a directory squats on its
        // name. The sweep must not panic and must keep the session alive.
        std::fs::create_dir_all(dir.join("stats.ndjson")).unwrap();
        assert_eq!(manager.sweep_stats(), 0);
        assert_eq!(manager.sweep_stats(), 0);
        assert_eq!(manager.live_sessions(), 1);
        let status = manager.handle(&Request::new("status").with_session(&id));
        assert!(status.ok, "{status:?}");

        // Once the obstruction clears, sweeping resumes writing.
        std::fs::remove_dir_all(dir.join("stats.ndjson")).unwrap();
        assert_eq!(manager.sweep_stats(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn space_cache_hits_across_a_service_restart() {
        let dir = std::env::temp_dir().join(format!("atf-mgr-spacecache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = ManagerConfig {
            space_cache: Some(dir.clone()),
            ..ManagerConfig::default()
        };

        // First lifetime: the open misses the cache, generates, stores.
        let manager = SessionManager::new(config.clone()).unwrap();
        let opened = manager.handle(&open_request("cached"));
        assert!(opened.ok, "{opened:?}");
        let id = opened.session.unwrap();
        let stats = manager
            .handle(&Request::new("stats").with_session(&id))
            .stats
            .unwrap();
        assert_eq!(stats.space_cache_hits, 0);
        assert_eq!(stats.space_cache_misses, 1);
        drop(manager);

        // Second lifetime (fresh manager = restarted service): the same
        // spec hits the persisted entry, with an identical space.
        let manager = SessionManager::new(config).unwrap();
        let reopened = manager.handle(&open_request("cached"));
        assert!(reopened.ok, "{reopened:?}");
        assert_eq!(reopened.space_size, opened.space_size);
        let id = reopened.session.unwrap();
        let stats = manager
            .handle(&Request::new("stats").with_session(&id))
            .stats
            .unwrap();
        assert_eq!(stats.space_cache_hits, 1);
        assert_eq!(stats.space_cache_misses, 0);

        // The cached space drives tuning to the same result as a fresh one.
        let finished = drive_to_completion(&manager, &id, |x| (x as f64 - 7.0).abs());
        assert_eq!(finished.best_config.unwrap()["X"], 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_space_rejected_at_open() {
        let m = SessionManager::in_memory();
        let mut req = Request::new("open");
        req.kernel = Some("t".into());
        req.parameters = Some(vec![ParameterSpec {
            name: "X".into(),
            interval: Some(IntervalSpec {
                begin: 1,
                end: 10,
                step: 1,
            }),
            set: None,
            constraint: Some("less_than(0)".into()),
        }]);
        let r = m.handle(&req);
        assert!(!r.ok);
        assert_eq!(r.code.as_deref(), Some(codes::TUNING));
    }
}
