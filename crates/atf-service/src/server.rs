//! The TCP front end: a nonblocking accept loop handing each connection to
//! its own thread, all sharing one [`SessionManager`].
//!
//! Shutdown is condvar-signaled, not sleep-polled: the accept loop parks on
//! a [`ShutdownHandle`]'s condition variable between accept attempts, and
//! [`ShutdownHandle::signal`] wakes it immediately — so a programmatic stop
//! (or SIGINT, routed through a self-pipe watcher thread) takes effect with
//! bounded latency instead of "whenever the next poll tick comes around".

use crate::manager::SessionManager;
use crate::proto::Response;
use atf_core::trace::TraceEvent;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timing and overload-protection settings of a [`Server`]. The defaults
/// reproduce the historical hard-coded behavior: 25 ms accept poll, 5 s
/// sweep interval, 500 ms read poll, unbounded connections, 5 s drain.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Upper bound on how long the accept loop parks when no connection
    /// is waiting (it is woken early by [`ShutdownHandle::signal`]).
    pub accept_poll: Duration,
    /// How often the idle-expiry sweeper runs (idle sessions + stats
    /// snapshots).
    pub sweep_interval: Duration,
    /// Read timeout on connections so handler threads notice shutdown.
    pub read_poll: Duration,
    /// Bounded connection slots: at most this many connections are served
    /// concurrently (`None` = unbounded, one thread per connection).
    pub max_connections: Option<usize>,
    /// Accepted connections parked while every slot is taken. Beyond this
    /// the connection is hard-rejected: one `overloaded` response line,
    /// then close. Only meaningful with `max_connections`.
    pub accept_queue: usize,
    /// Graceful-drain deadline: after shutdown is signaled, how long to
    /// wait for in-flight connections to finish before checkpointing
    /// journals and exiting anyway.
    pub drain_timeout: Duration,
    /// Retry-after hint (milliseconds) on hard-rejected connections.
    pub reject_retry_after_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            accept_poll: Duration::from_millis(25),
            sweep_interval: Duration::from_secs(5),
            read_poll: Duration::from_millis(500),
            max_connections: None,
            accept_queue: 64,
            drain_timeout: Duration::from_secs(5),
            reject_retry_after_ms: 500,
        }
    }
}

struct ShutdownState {
    flag: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

/// A cloneable handle that stops a [`Server::run`] loop.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ShutdownState>,
}

impl ShutdownHandle {
    fn new() -> Self {
        ShutdownHandle {
            state: Arc::new(ShutdownState {
                flag: AtomicBool::new(false),
                lock: Mutex::new(()),
                cv: Condvar::new(),
            }),
        }
    }

    /// Requests shutdown and wakes the accept loop immediately.
    pub fn signal(&self) {
        self.state.flag.store(true, Ordering::SeqCst);
        let _guard = self.state.lock.lock();
        self.state.cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_signaled(&self) -> bool {
        self.state.flag.load(Ordering::SeqCst)
    }

    /// Parks until [`signal`](Self::signal) or for at most `timeout`.
    fn wait(&self, timeout: Duration) {
        if self.is_signaled() {
            return;
        }
        let mut guard = self.state.lock.lock();
        // Re-check under the lock: a signal between the check above and
        // acquiring the lock must not be missed.
        if !self.is_signaled() {
            self.state.cv.wait_for(&mut guard, timeout);
        }
    }
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownHandle")
            .field("signaled", &self.is_signaled())
            .finish()
    }
}

/// A running service endpoint. [`run`](Server::run) blocks until
/// [`shutdown`](Server::shutdown) is called (from another thread) or SIGINT
/// arrives after [`install_sigint`](Server::install_sigint).
pub struct Server {
    listener: TcpListener,
    manager: Arc<SessionManager>,
    shutdown: ShutdownHandle,
    config: ServerConfig,
}

impl Server {
    /// Binds the given address (e.g. `127.0.0.1:0` for an ephemeral port)
    /// with default [`ServerConfig`].
    pub fn bind(addr: &str, manager: Arc<SessionManager>) -> std::io::Result<Self> {
        Self::bind_with(addr, manager, ServerConfig::default())
    }

    /// Binds with explicit timing/overload settings.
    pub fn bind_with(
        addr: &str,
        manager: Arc<SessionManager>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            manager,
            shutdown: ShutdownHandle::new(),
            config,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops [`run`](Server::run) when
    /// [`ShutdownHandle::signal`] is called.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Requests a graceful stop (also callable through a clone of
    /// [`shutdown_handle`](Server::shutdown_handle)).
    pub fn shutdown(&self) {
        self.shutdown.signal();
    }

    /// Routes SIGINT to a graceful stop of this server: the
    /// async-signal-safe handler writes one byte to a pre-opened pipe, and
    /// a watcher thread blocked on that pipe signals the shutdown handle —
    /// which wakes the accept loop immediately. Uses `signal(2)`/`pipe(2)`
    /// directly so no extra dependency is needed. Installing it again (for
    /// another server) reroutes SIGINT to the most recent one.
    #[cfg(unix)]
    pub fn install_sigint(&self) {
        use std::sync::atomic::AtomicI32;

        /// Write end of the self-pipe, shared with the signal handler.
        static SIGNAL_PIPE_WRITE: AtomicI32 = AtomicI32::new(-1);

        extern "C" {
            fn pipe(fds: *mut i32) -> i32;
            fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
            fn write(fd: i32, buf: *const u8, count: usize) -> isize;
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_sigint(_sig: i32) {
            // Async-signal-safe: a single write(2) on the self-pipe.
            let fd = SIGNAL_PIPE_WRITE.load(Ordering::SeqCst);
            if fd >= 0 {
                unsafe {
                    write(fd, b"!".as_ptr(), 1);
                }
            }
        }

        const SIGINT: i32 = 2;
        let mut fds = [0i32; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return;
        }
        SIGNAL_PIPE_WRITE.store(fds[1], Ordering::SeqCst);
        let read_fd = fds[0];
        let handle = self.shutdown_handle();
        std::thread::spawn(move || {
            let mut buf = [0u8; 1];
            loop {
                let n = unsafe { read(read_fd, buf.as_mut_ptr(), 1) };
                if n > 0 {
                    handle.signal();
                    return;
                }
                if n == 0 {
                    return; // write end closed
                }
                // n < 0: interrupted — retry.
            }
        });
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }

    /// No-op off unix; stop the server with
    /// [`shutdown_handle`](Server::shutdown_handle) instead.
    #[cfg(not(unix))]
    pub fn install_sigint(&self) {}

    /// Serves until shutdown, then drains gracefully: stop accepting,
    /// answer queued connections with `overloaded`, join the idle-expiry
    /// sweeper (so drain never races a sweep that is removing sessions),
    /// wait up to the drain deadline for in-flight connections to finish
    /// the request they hold, checkpoint every live session's journal to
    /// a resumable artifact, and persist the database.
    pub fn run(self) -> std::io::Result<()> {
        let active = Arc::new(AtomicUsize::new(0));
        let mut queue: VecDeque<TcpStream> = VecDeque::new();

        // The idle-expiry sweeper runs in its own thread so a slow sweep
        // (database merges, stats I/O) never stalls the accept loop —
        // and, with configurable intervals, a long sweep period never
        // delays accept-side shutdown latency. It parks on the shutdown
        // condvar, so SIGINT wakes it immediately.
        let sweeper = {
            let manager = Arc::clone(&self.manager);
            let shutdown = self.shutdown.clone();
            let interval = self.config.sweep_interval;
            std::thread::spawn(move || loop {
                shutdown.wait(interval);
                // Checked *after* the park and before each sweep: once
                // shutdown is signaled no new sweep starts, so joining
                // this thread bounds the wait to at most one in-progress
                // sweep. Periodic observability rides along: one
                // metrics-snapshot line per live session into the journal
                // directory's stats.ndjson; `sweep_stats` swallows (and
                // logs once per outage) write failures — telemetry
                // trouble must never end the sweep.
                if shutdown.is_signaled() {
                    return;
                }
                manager.expire_idle();
                manager.sweep_stats();
            })
        };

        while !self.shutdown.is_signaled() {
            // Promote queued connections into freed slots first: FIFO, so
            // a parked client is served before a newly accepted one.
            if let Some(cap) = self.config.max_connections {
                while !queue.is_empty() && active.load(Ordering::SeqCst) < cap {
                    let stream = queue.pop_front().expect("queue nonempty");
                    self.manager.metrics().set_accept_queue_depth(queue.len());
                    self.spawn_connection(stream, &active);
                }
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => match self.config.max_connections {
                    None => self.spawn_connection(stream, &active),
                    Some(cap) if active.load(Ordering::SeqCst) < cap => {
                        self.spawn_connection(stream, &active)
                    }
                    Some(_) if queue.len() < self.config.accept_queue => {
                        queue.push_back(stream);
                        self.manager.metrics().set_accept_queue_depth(queue.len());
                    }
                    // Hard cap: every slot and queue position is taken.
                    // One explicit `overloaded` line, then close — a
                    // storm gets answers, not hangs.
                    Some(_) => self.reject_connection(stream),
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.shutdown.wait(self.config.accept_poll);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // ---- graceful drain ----
        let drain_started = Instant::now();
        // Queued-but-never-served connections get an explicit answer
        // instead of a silent close.
        for stream in queue.drain(..) {
            self.reject_connection(stream);
        }
        self.manager.metrics().set_accept_queue_depth(0);
        // Join the sweeper before touching journals: once the signal is
        // up no new sweep starts, so this waits out at most one
        // in-progress sweep — drain and the idle-expiry sweeper never
        // operate on the session table at the same time.
        let _ = sweeper.join();
        // In-flight connections notice the signal within one read poll
        // and exit right after answering the request they hold.
        while active.load(Ordering::SeqCst) > 0
            && drain_started.elapsed() < self.config.drain_timeout
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        let within_deadline = active.load(Ordering::SeqCst) == 0;
        // Every live session's journal lands as a compact, resumable
        // checkpoint; the sessions themselves stay unfinished so a
        // restart resumes them with `open{resume:true}`.
        let (live, checkpointed) = self.manager.checkpoint_sessions();
        let micros = u64::try_from(drain_started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.manager
            .trace_sink()
            .emit(&TraceEvent::drain(live as u64, micros, within_deadline));
        if live > 0 {
            eprintln!(
                "atf-service: drained {live} session(s), {checkpointed} journal(s) checkpointed, \
                 in {:.1} ms{}",
                micros as f64 / 1000.0,
                if within_deadline {
                    ""
                } else {
                    " (drain deadline elapsed with connections still open)"
                }
            );
        }
        self.manager.persist()
    }

    /// Spawns one connection handler, keeping the active-connection count
    /// and gauge in step with the thread's lifetime.
    fn spawn_connection(&self, stream: TcpStream, active: &Arc<AtomicUsize>) {
        let manager = Arc::clone(&self.manager);
        let shutdown = self.shutdown.clone();
        let active = Arc::clone(active);
        let read_poll = self.config.read_poll;
        let n = active.fetch_add(1, Ordering::SeqCst) + 1;
        manager.metrics().connections_active.set(n as u64);
        std::thread::spawn(move || {
            serve_connection(stream, Arc::clone(&manager), shutdown, read_poll);
            let left = active.fetch_sub(1, Ordering::SeqCst).saturating_sub(1);
            manager.metrics().connections_active.set(left as u64);
        });
    }

    /// Hard-cap rejection: one `overloaded` response line with the
    /// retry-after hint, then close.
    fn reject_connection(&self, mut stream: TcpStream) {
        let reason = "connection hard cap: every slot and queue position taken";
        self.manager.metrics().rejected_connections.inc();
        self.manager.trace_sink().emit(&TraceEvent::shed(
            "connection",
            reason,
            self.config.reject_retry_after_ms,
        ));
        if let Ok(line) = serde_json::to_string(&Response::overloaded(
            reason,
            self.config.reject_retry_after_ms,
        )) {
            let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
            let _ = stream.write_all(line.as_bytes());
            let _ = stream.write_all(b"\n");
            let _ = stream.flush();
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    manager: Arc<SessionManager>,
    shutdown: ShutdownHandle,
    read_poll: Duration,
) {
    if stream.set_read_timeout(Some(read_poll)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shutdown.is_signaled() {
            return;
        }
        // A timed-out read may leave a partial line in `line`; the next
        // read_line appends to it, so only clear after handling a full line.
        match reader.read_line(&mut line) {
            Ok(0) => return, // peer closed
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let reply = manager.handle_line(trimmed);
                    if writer
                        .write_all(reply.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_wakes_a_parked_waiter_immediately() {
        let handle = ShutdownHandle::new();
        let waiter = handle.clone();
        let started = Instant::now();
        let t = std::thread::spawn(move || {
            // Far longer than the test should take: only an early wake
            // lets it finish fast.
            waiter.wait(Duration::from_secs(30));
            waiter.is_signaled()
        });
        std::thread::sleep(Duration::from_millis(20));
        handle.signal();
        assert!(t.join().unwrap());
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "signal must wake the waiter, not wait out the timeout"
        );
    }

    #[test]
    fn wait_after_signal_returns_at_once() {
        let handle = ShutdownHandle::new();
        handle.signal();
        let started = Instant::now();
        handle.wait(Duration::from_secs(30));
        assert!(started.elapsed() < Duration::from_secs(1));
    }
}
