//! The TCP front end: a nonblocking accept loop handing each connection to
//! its own thread, all sharing one [`SessionManager`].

use crate::manager::SessionManager;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Set by the SIGINT handler; checked by every server's accept loop.
static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);

/// How long the accept loop sleeps when no connection is waiting.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// How often idle sessions are swept.
const SWEEP_INTERVAL: Duration = Duration::from_secs(5);
/// Read timeout on connections so handler threads notice shutdown.
const READ_POLL: Duration = Duration::from_millis(500);

/// A running service endpoint. [`run`](Server::run) blocks until
/// [`shutdown`](Server::shutdown) is called (from another thread) or SIGINT
/// arrives after [`install_sigint`](Server::install_sigint).
pub struct Server {
    listener: TcpListener,
    manager: Arc<SessionManager>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the given address (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str, manager: Arc<SessionManager>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            manager,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops [`run`](Server::run) when
    /// [`shutdown`](Server::shutdown) flips it.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Requests a graceful stop (also callable through a clone of
    /// [`shutdown_handle`](Server::shutdown_handle)).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Routes SIGINT to a graceful stop of every running server in this
    /// process. Uses `signal(2)` directly so no extra dependency is needed.
    #[cfg(unix)]
    pub fn install_sigint(&self) {
        extern "C" fn on_sigint(_sig: i32) {
            SIGINT_RECEIVED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }

    /// No-op off unix; stop the server with
    /// [`shutdown_handle`](Server::shutdown_handle) instead.
    #[cfg(not(unix))]
    pub fn install_sigint(&self) {}

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGINT_RECEIVED.load(Ordering::SeqCst)
    }

    /// Serves until shutdown, then persists the database. Connection
    /// threads poll the same flag and drain on their own.
    pub fn run(self) -> std::io::Result<()> {
        let mut last_sweep = Instant::now();
        while !self.stopping() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let manager = Arc::clone(&self.manager);
                    let shutdown = Arc::clone(&self.shutdown);
                    std::thread::spawn(move || serve_connection(stream, manager, shutdown));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            if last_sweep.elapsed() >= SWEEP_INTERVAL {
                let expired = self.manager.expire_idle();
                if expired > 0 {
                    eprintln!("atf-service: expired {expired} idle session(s)");
                }
                last_sweep = Instant::now();
            }
        }
        self.manager.persist()
    }
}

fn serve_connection(stream: TcpStream, manager: Arc<SessionManager>, shutdown: Arc<AtomicBool>) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) || SIGINT_RECEIVED.load(Ordering::SeqCst) {
            return;
        }
        // A timed-out read may leave a partial line in `line`; the next
        // read_line appends to it, so only clear after handling a full line.
        match reader.read_line(&mut line) {
            Ok(0) => return, // peer closed
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let reply = manager.handle_line(trimmed);
                    if writer
                        .write_all(reply.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}
