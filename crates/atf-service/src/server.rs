//! The TCP front end: a nonblocking accept loop feeding the `poll(2)`
//! reactor in [`crate::reactor`] — a small set of event-loop threads owns
//! every connection socket, and a fixed handler pool serves the framed
//! request lines against one shared [`SessionManager`]. Connection count
//! is bounded by file descriptors, not threads.
//!
//! Shutdown is condvar-signaled, not sleep-polled: the accept loop parks on
//! a [`ShutdownHandle`]'s condition variable between accept attempts, and
//! [`ShutdownHandle::signal`] wakes it immediately — so a programmatic stop
//! (or SIGINT, routed through a self-pipe watcher thread) takes effect with
//! bounded latency instead of "whenever the next poll tick comes around".
//! The signal also pokes every reactor loop's wake pipe, so the graceful
//! drain — final read sweep, answer every buffered request, flush, close —
//! starts at once on every connection.

use crate::manager::SessionManager;
use crate::proto::Response;
use atf_core::trace::TraceEvent;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timing and overload-protection settings of a [`Server`]. The defaults
/// keep the historical accept/sweep/drain behavior: 25 ms accept poll, 5 s
/// sweep interval, 5 s drain — with the reactor's far higher default
/// connection ceiling (4096 slots instead of one thread per connection).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Upper bound on how long the accept loop parks when no connection
    /// is waiting (it is woken early by [`ShutdownHandle::signal`]).
    pub accept_poll: Duration,
    /// How often the idle-expiry sweeper runs (idle sessions + stats
    /// snapshots, one batched pass per shard).
    pub sweep_interval: Duration,
    /// Read timeout used by the non-unix thread-per-connection fallback so
    /// its handler threads notice shutdown. The `poll(2)` reactor path
    /// (every unix target) is event-driven and ignores this.
    pub read_poll: Duration,
    /// Bounded connection slots: at most this many connections are open
    /// concurrently (`None` = bounded only by file descriptors). The
    /// reactor holds idle connections for the price of an fd and two
    /// buffers, so the default is 4096 — far above the old
    /// thread-per-connection comfort zone.
    pub max_connections: Option<usize>,
    /// Accepted connections parked while every slot is taken. Beyond this
    /// the connection is hard-rejected: one `overloaded` response line,
    /// then close. Only meaningful with `max_connections`.
    pub accept_queue: usize,
    /// Graceful-drain deadline: after shutdown is signaled, how long to
    /// wait for open connections to be answered and flushed before
    /// force-closing, checkpointing journals, and exiting anyway.
    pub drain_timeout: Duration,
    /// Retry-after hint (milliseconds) on hard-rejected connections.
    pub reject_retry_after_ms: u64,
    /// Event-loop threads owning the connection sockets. `None` picks a
    /// small automatic count from available parallelism (1–4).
    pub io_threads: Option<usize>,
    /// Handler threads serving framed request lines against the session
    /// manager. `None` sizes the pool from available parallelism (2–16).
    pub handlers: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            accept_poll: Duration::from_millis(25),
            sweep_interval: Duration::from_secs(5),
            read_poll: Duration::from_millis(500),
            max_connections: Some(4096),
            accept_queue: 64,
            drain_timeout: Duration::from_secs(5),
            reject_retry_after_ms: 500,
            io_threads: None,
            handlers: None,
        }
    }
}

impl ServerConfig {
    fn parallelism() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The io-thread count actually used (auto: parallelism/4, clamped
    /// to 1–4 — poll loops are cheap, and fewer loops batch better).
    pub fn resolved_io_threads(&self) -> usize {
        self.io_threads
            .unwrap_or_else(|| (Self::parallelism() / 4).clamp(1, 4))
            .max(1)
    }

    /// The handler-pool size actually used (auto: parallelism, clamped
    /// to 2–16 — handlers mostly run short critical sections on the
    /// sharded manager).
    pub fn resolved_handlers(&self) -> usize {
        self.handlers
            .unwrap_or_else(|| Self::parallelism().clamp(2, 16))
            .max(1)
    }
}

struct ShutdownState {
    flag: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
    /// Reactor loops to poke on signal, so a drain starts immediately
    /// instead of after the next poll park. Holding the `Arc` keeps the
    /// wake pipes open for as long as any handle might signal them.
    #[cfg(unix)]
    wakers: Mutex<Vec<Arc<crate::reactor::IoShared>>>,
}

/// A cloneable handle that stops a [`Server::run`] loop.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ShutdownState>,
}

impl ShutdownHandle {
    fn new() -> Self {
        ShutdownHandle {
            state: Arc::new(ShutdownState {
                flag: AtomicBool::new(false),
                lock: Mutex::new(()),
                cv: Condvar::new(),
                #[cfg(unix)]
                wakers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Requests shutdown and wakes the accept loop and every reactor
    /// event loop immediately.
    pub fn signal(&self) {
        self.state.flag.store(true, Ordering::SeqCst);
        {
            let _guard = self.state.lock.lock();
            self.state.cv.notify_all();
        }
        #[cfg(unix)]
        for waker in self.state.wakers.lock().iter() {
            waker.wake_for_shutdown();
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_signaled(&self) -> bool {
        self.state.flag.load(Ordering::SeqCst)
    }

    /// Parks until [`signal`](Self::signal) or for at most `timeout`.
    pub(crate) fn wait(&self, timeout: Duration) {
        if self.is_signaled() {
            return;
        }
        let mut guard = self.state.lock.lock();
        // Re-check under the lock: a signal between the check above and
        // acquiring the lock must not be missed.
        if !self.is_signaled() {
            self.state.cv.wait_for(&mut guard, timeout);
        }
    }

    /// Registers a reactor loop for immediate wakeup on signal. If the
    /// signal already fired, the loop is woken right away.
    #[cfg(unix)]
    pub(crate) fn register_waker(&self, waker: Arc<crate::reactor::IoShared>) {
        if self.is_signaled() {
            waker.wake_for_shutdown();
        }
        self.state.wakers.lock().push(waker);
    }
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownHandle")
            .field("signaled", &self.is_signaled())
            .finish()
    }
}

/// A running service endpoint. [`run`](Server::run) blocks until
/// [`shutdown`](Server::shutdown) is called (from another thread) or SIGINT
/// arrives after [`install_sigint`](Server::install_sigint).
pub struct Server {
    listener: TcpListener,
    manager: Arc<SessionManager>,
    shutdown: ShutdownHandle,
    config: ServerConfig,
}

impl Server {
    /// Binds the given address (e.g. `127.0.0.1:0` for an ephemeral port)
    /// with default [`ServerConfig`].
    pub fn bind(addr: &str, manager: Arc<SessionManager>) -> std::io::Result<Self> {
        Self::bind_with(addr, manager, ServerConfig::default())
    }

    /// Binds with explicit timing/overload settings.
    pub fn bind_with(
        addr: &str,
        manager: Arc<SessionManager>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            manager,
            shutdown: ShutdownHandle::new(),
            config,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops [`run`](Server::run) when
    /// [`ShutdownHandle::signal`] is called.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Requests a graceful stop (also callable through a clone of
    /// [`shutdown_handle`](Server::shutdown_handle)).
    pub fn shutdown(&self) {
        self.shutdown.signal();
    }

    /// Routes SIGINT to a graceful stop of this server: the
    /// async-signal-safe handler writes one byte to a pre-opened pipe, and
    /// a watcher thread blocked on that pipe signals the shutdown handle —
    /// which wakes the accept loop immediately. Uses `signal(2)`/`pipe(2)`
    /// directly so no extra dependency is needed. Installing it again (for
    /// another server) reroutes SIGINT to the most recent one and retires
    /// the previous install completely: its pipe fds are closed and its
    /// watcher thread joined, so repeated installs leak nothing.
    #[cfg(unix)]
    pub fn install_sigint(&self) {
        use std::sync::atomic::AtomicI32;

        /// Write end of the self-pipe, shared with the signal handler.
        static SIGNAL_PIPE_WRITE: AtomicI32 = AtomicI32::new(-1);
        /// The previous install's write fd and watcher thread, retired
        /// (fd closed → watcher sees EOF → joined) by the next install.
        /// The lock also serializes concurrent installs.
        static PREVIOUS: std::sync::Mutex<Option<(i32, std::thread::JoinHandle<()>)>> =
            std::sync::Mutex::new(None);

        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_sigint(_sig: i32) {
            // Async-signal-safe: a single write(2) on the self-pipe.
            let fd = SIGNAL_PIPE_WRITE.load(Ordering::SeqCst);
            if fd >= 0 {
                crate::reactor::write_byte(fd);
            }
        }

        const SIGINT: i32 = 2;
        let mut previous = match PREVIOUS.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let Some((read_fd, write_fd)) = crate::reactor::make_pipe() else {
            return;
        };
        let handle = self.shutdown_handle();
        let watcher = std::thread::spawn(move || {
            let mut buf = [0u8; 1];
            loop {
                let n = crate::reactor::read_byte(read_fd, &mut buf);
                if n > 0 {
                    // Keep watching after a signal: a reinstall retires
                    // this thread via EOF, repeated SIGINTs are idempotent.
                    handle.signal();
                    continue;
                }
                if n == 0 {
                    break; // write end closed (reinstall)
                }
                if std::io::Error::last_os_error().kind() != std::io::ErrorKind::Interrupted {
                    break;
                }
            }
            crate::reactor::close_fd(read_fd);
        });
        let stale_write = SIGNAL_PIPE_WRITE.swap(write_fd, Ordering::SeqCst);
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
        if let Some((old_write, old_watcher)) = previous.take() {
            debug_assert_eq!(old_write, stale_write);
            // Closing the stale write end EOFs the old watcher's read(2);
            // it closes its read end and exits, so the join is bounded.
            crate::reactor::close_fd(old_write);
            let _ = old_watcher.join();
        }
        *previous = Some((write_fd, watcher));
    }

    /// No-op off unix; stop the server with
    /// [`shutdown_handle`](Server::shutdown_handle) instead.
    #[cfg(not(unix))]
    pub fn install_sigint(&self) {}

    /// Serves until shutdown, then drains gracefully: stop accepting,
    /// answer queued connections with `overloaded`, join the idle-expiry
    /// sweeper (so drain never races a sweep that is removing sessions),
    /// sweep every open connection for requests the kernel has already
    /// received — each one is answered and flushed before its connection
    /// closes — wait up to the drain deadline, checkpoint every live
    /// session's journal to a resumable artifact, and persist the
    /// database.
    pub fn run(self) -> std::io::Result<()> {
        // The idle-expiry sweeper runs in its own thread so a slow sweep
        // (database merges, stats I/O) never stalls the accept loop —
        // and, with configurable intervals, a long sweep period never
        // delays accept-side shutdown latency. It parks on the shutdown
        // condvar, so SIGINT wakes it immediately.
        let sweeper = {
            let manager = Arc::clone(&self.manager);
            let shutdown = self.shutdown.clone();
            let interval = self.config.sweep_interval;
            std::thread::spawn(move || loop {
                shutdown.wait(interval);
                // Checked *after* the park and before each sweep: once
                // shutdown is signaled no new sweep starts, so joining
                // this thread bounds the wait to at most one in-progress
                // sweep. One batched pass takes each shard lock once for
                // both idle expiry and the per-session stats snapshot;
                // stats write failures are swallowed (and logged once per
                // outage) — telemetry trouble must never end the sweep.
                if shutdown.is_signaled() {
                    return;
                }
                manager.sweep();
            })
        };

        let served = self.serve_connections();

        // ---- graceful drain ----
        let drain_started = Instant::now();
        // Join the sweeper before touching journals: once the signal is
        // up no new sweep starts, so this waits out at most one
        // in-progress sweep — drain and the idle-expiry sweeper never
        // operate on the session table at the same time.
        self.shutdown.signal();
        let _ = sweeper.join();
        let (active, within_deadline) = served?;
        debug_assert_eq!(active, 0, "connection engine joined with conns open");
        // Every live session's journal lands as a compact, resumable
        // checkpoint; the sessions themselves stay unfinished so a
        // restart resumes them with `open{resume:true}`.
        let (live, checkpointed) = self.manager.checkpoint_sessions();
        let micros = u64::try_from(drain_started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.manager
            .trace_sink()
            .emit(&TraceEvent::drain(live as u64, micros, within_deadline));
        if live > 0 {
            eprintln!(
                "atf-service: drained {live} session(s), {checkpointed} journal(s) checkpointed, \
                 in {:.1} ms{}",
                micros as f64 / 1000.0,
                if within_deadline {
                    ""
                } else {
                    " (drain deadline elapsed with connections still open)"
                }
            );
        }
        self.manager.persist()
    }

    /// The unix connection engine: accept into the `poll(2)` reactor,
    /// shed past the hard cap, and at shutdown wait out the drain before
    /// tearing the reactor down. Returns `(still_open, within_deadline)`.
    #[cfg(unix)]
    fn serve_connections(&self) -> std::io::Result<(usize, bool)> {
        let io_threads = self.config.resolved_io_threads();
        let handlers = self.config.resolved_handlers();
        let metrics = Arc::clone(self.manager.metrics());
        metrics.set_reactor_threads(io_threads, handlers);
        self.manager
            .trace_sink()
            .emit(&TraceEvent::reactor(io_threads, handlers));
        let reactor = crate::reactor::Reactor::start(
            Arc::clone(&self.manager),
            self.shutdown.clone(),
            io_threads,
            handlers,
        )?;
        let mut queue: VecDeque<TcpStream> = VecDeque::new();
        let mut fatal: Option<std::io::Error> = None;

        while !self.shutdown.is_signaled() {
            // Promote queued connections into freed slots first: FIFO, so
            // a parked client is served before a newly accepted one.
            if let Some(cap) = self.config.max_connections {
                while !queue.is_empty() && reactor.active() < cap {
                    let stream = queue.pop_front().expect("queue nonempty");
                    metrics.set_accept_queue_depth(queue.len());
                    reactor.dispatch(stream);
                }
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => match self.config.max_connections {
                    None => reactor.dispatch(stream),
                    Some(cap) if reactor.active() < cap => reactor.dispatch(stream),
                    Some(_) if queue.len() < self.config.accept_queue => {
                        queue.push_back(stream);
                        metrics.set_accept_queue_depth(queue.len());
                    }
                    // Hard cap: every slot and queue position is taken.
                    // One explicit `overloaded` line, then close — a
                    // storm gets answers, not hangs.
                    Some(_) => self.reject_connection(stream),
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.shutdown.wait(self.config.accept_poll);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // Tear the reactor down before surfacing the error —
                    // the drain below still runs so open connections are
                    // answered, not abandoned.
                    self.shutdown.signal();
                    fatal = Some(e);
                    break;
                }
            }
        }

        // Queued-but-never-served connections get an explicit answer
        // instead of a silent close.
        let drain_started = Instant::now();
        for stream in queue.drain(..) {
            self.reject_connection(stream);
        }
        metrics.set_accept_queue_depth(0);
        // The reactor loops were woken by the signal and are running the
        // final read sweep: every request with bytes already in the
        // kernel gets framed, served, and flushed before its connection
        // closes. Wait for that to finish (or the deadline).
        while reactor.active() > 0 && drain_started.elapsed() < self.config.drain_timeout {
            std::thread::sleep(Duration::from_millis(5));
        }
        let within_deadline = reactor.active() == 0;
        reactor.stop_and_join();
        match fatal {
            Some(e) => Err(e),
            None => Ok((0, within_deadline)),
        }
    }

    /// Non-unix fallback: thread-per-connection with the same shedding and
    /// drain-the-buffered-requests semantics.
    #[cfg(not(unix))]
    fn serve_connections(&self) -> std::io::Result<(usize, bool)> {
        use std::sync::atomic::AtomicUsize;

        let active = Arc::new(AtomicUsize::new(0));
        let mut queue: VecDeque<TcpStream> = VecDeque::new();
        while !self.shutdown.is_signaled() {
            if let Some(cap) = self.config.max_connections {
                while !queue.is_empty() && active.load(Ordering::SeqCst) < cap {
                    let stream = queue.pop_front().expect("queue nonempty");
                    self.manager.metrics().set_accept_queue_depth(queue.len());
                    self.spawn_connection(stream, &active);
                }
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => match self.config.max_connections {
                    None => self.spawn_connection(stream, &active),
                    Some(cap) if active.load(Ordering::SeqCst) < cap => {
                        self.spawn_connection(stream, &active)
                    }
                    Some(_) if queue.len() < self.config.accept_queue => {
                        queue.push_back(stream);
                        self.manager.metrics().set_accept_queue_depth(queue.len());
                    }
                    Some(_) => self.reject_connection(stream),
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.shutdown.wait(self.config.accept_poll);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        let drain_started = Instant::now();
        for stream in queue.drain(..) {
            self.reject_connection(stream);
        }
        self.manager.metrics().set_accept_queue_depth(0);
        while active.load(Ordering::SeqCst) > 0
            && drain_started.elapsed() < self.config.drain_timeout
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        let open = active.load(Ordering::SeqCst);
        Ok((0, open == 0))
    }

    /// Spawns one connection handler, keeping the active-connection count
    /// and gauge in step with the thread's lifetime. Gauge updates are
    /// atomic inc/dec — a computed-then-set pair from two racing threads
    /// can strand the gauge at a stale value forever.
    #[cfg(not(unix))]
    fn spawn_connection(&self, stream: TcpStream, active: &Arc<std::sync::atomic::AtomicUsize>) {
        let manager = Arc::clone(&self.manager);
        let shutdown = self.shutdown.clone();
        let active = Arc::clone(active);
        let read_poll = self.config.read_poll;
        active.fetch_add(1, Ordering::SeqCst);
        manager.metrics().connections_active.inc();
        std::thread::spawn(move || {
            serve_connection(stream, Arc::clone(&manager), shutdown, read_poll);
            active.fetch_sub(1, Ordering::SeqCst);
            manager.metrics().connections_active.dec();
        });
    }

    /// Hard-cap rejection: one `overloaded` response line with the
    /// retry-after hint, then close.
    fn reject_connection(&self, mut stream: TcpStream) {
        let reason = "connection hard cap: every slot and queue position taken";
        self.manager.metrics().rejected_connections.inc();
        self.manager.trace_sink().emit(&TraceEvent::shed(
            "connection",
            reason,
            self.config.reject_retry_after_ms,
        ));
        if let Ok(line) = serde_json::to_string(&Response::overloaded(
            reason,
            self.config.reject_retry_after_ms,
        )) {
            let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
            let _ = stream.set_nonblocking(false);
            let _ = stream.write_all(line.as_bytes());
            let _ = stream.write_all(b"\n");
            let _ = stream.flush();
        }
    }
}

#[cfg(not(unix))]
fn serve_connection(
    stream: TcpStream,
    manager: Arc<SessionManager>,
    shutdown: ShutdownHandle,
    read_poll: Duration,
) {
    use std::io::{BufRead, BufReader};

    if stream.set_read_timeout(Some(read_poll)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut draining = false;
    loop {
        // Shutdown is observed *between* requests, but the connection
        // does not close until every line already buffered (in the
        // BufReader or the kernel) has been answered: switch the read
        // timeout down and keep serving until a read yields nothing.
        if !draining && shutdown.is_signaled() {
            draining = true;
            if reader
                .get_ref()
                .set_read_timeout(Some(Duration::from_millis(10)))
                .is_err()
            {
                return;
            }
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // peer closed
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let reply = manager.handle_line(trimmed);
                    if writer
                        .write_all(reply.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if draining {
                    return; // buffered requests all answered
                }
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_wakes_a_parked_waiter_immediately() {
        let handle = ShutdownHandle::new();
        let waiter = handle.clone();
        let started = Instant::now();
        let t = std::thread::spawn(move || {
            // Far longer than the test should take: only an early wake
            // lets it finish fast.
            waiter.wait(Duration::from_secs(30));
            waiter.is_signaled()
        });
        std::thread::sleep(Duration::from_millis(20));
        handle.signal();
        assert!(t.join().unwrap());
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "signal must wake the waiter, not wait out the timeout"
        );
    }

    #[test]
    fn wait_after_signal_returns_at_once() {
        let handle = ShutdownHandle::new();
        handle.signal();
        let started = Instant::now();
        handle.wait(Duration::from_secs(30));
        assert!(started.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn config_resolves_sane_thread_counts() {
        let config = ServerConfig::default();
        let io = config.resolved_io_threads();
        let handlers = config.resolved_handlers();
        assert!((1..=4).contains(&io));
        assert!((2..=16).contains(&handlers));
        let pinned = ServerConfig {
            io_threads: Some(2),
            handlers: Some(7),
            ..ServerConfig::default()
        };
        assert_eq!(pinned.resolved_io_threads(), 2);
        assert_eq!(pinned.resolved_handlers(), 7);
        let zeroed = ServerConfig {
            io_threads: Some(0),
            handlers: Some(0),
            ..ServerConfig::default()
        };
        assert_eq!(zeroed.resolved_io_threads(), 1, "0 is clamped up");
        assert_eq!(zeroed.resolved_handlers(), 1);
    }
}
