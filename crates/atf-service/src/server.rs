//! The TCP front end: a nonblocking accept loop handing each connection to
//! its own thread, all sharing one [`SessionManager`].
//!
//! Shutdown is condvar-signaled, not sleep-polled: the accept loop parks on
//! a [`ShutdownHandle`]'s condition variable between accept attempts, and
//! [`ShutdownHandle::signal`] wakes it immediately — so a programmatic stop
//! (or SIGINT, routed through a self-pipe watcher thread) takes effect with
//! bounded latency instead of "whenever the next poll tick comes around".

use crate::manager::SessionManager;
use parking_lot::{Condvar, Mutex};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound on how long the accept loop parks when no connection is
/// waiting (it is woken early by [`ShutdownHandle::signal`]).
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// How often idle sessions are swept.
const SWEEP_INTERVAL: Duration = Duration::from_secs(5);
/// Read timeout on connections so handler threads notice shutdown.
const READ_POLL: Duration = Duration::from_millis(500);

struct ShutdownState {
    flag: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

/// A cloneable handle that stops a [`Server::run`] loop.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ShutdownState>,
}

impl ShutdownHandle {
    fn new() -> Self {
        ShutdownHandle {
            state: Arc::new(ShutdownState {
                flag: AtomicBool::new(false),
                lock: Mutex::new(()),
                cv: Condvar::new(),
            }),
        }
    }

    /// Requests shutdown and wakes the accept loop immediately.
    pub fn signal(&self) {
        self.state.flag.store(true, Ordering::SeqCst);
        let _guard = self.state.lock.lock();
        self.state.cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_signaled(&self) -> bool {
        self.state.flag.load(Ordering::SeqCst)
    }

    /// Parks until [`signal`](Self::signal) or for at most `timeout`.
    fn wait(&self, timeout: Duration) {
        if self.is_signaled() {
            return;
        }
        let mut guard = self.state.lock.lock();
        // Re-check under the lock: a signal between the check above and
        // acquiring the lock must not be missed.
        if !self.is_signaled() {
            self.state.cv.wait_for(&mut guard, timeout);
        }
    }
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownHandle")
            .field("signaled", &self.is_signaled())
            .finish()
    }
}

/// A running service endpoint. [`run`](Server::run) blocks until
/// [`shutdown`](Server::shutdown) is called (from another thread) or SIGINT
/// arrives after [`install_sigint`](Server::install_sigint).
pub struct Server {
    listener: TcpListener,
    manager: Arc<SessionManager>,
    shutdown: ShutdownHandle,
}

impl Server {
    /// Binds the given address (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str, manager: Arc<SessionManager>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            manager,
            shutdown: ShutdownHandle::new(),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops [`run`](Server::run) when
    /// [`ShutdownHandle::signal`] is called.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Requests a graceful stop (also callable through a clone of
    /// [`shutdown_handle`](Server::shutdown_handle)).
    pub fn shutdown(&self) {
        self.shutdown.signal();
    }

    /// Routes SIGINT to a graceful stop of this server: the
    /// async-signal-safe handler writes one byte to a pre-opened pipe, and
    /// a watcher thread blocked on that pipe signals the shutdown handle —
    /// which wakes the accept loop immediately. Uses `signal(2)`/`pipe(2)`
    /// directly so no extra dependency is needed. Installing it again (for
    /// another server) reroutes SIGINT to the most recent one.
    #[cfg(unix)]
    pub fn install_sigint(&self) {
        use std::sync::atomic::AtomicI32;

        /// Write end of the self-pipe, shared with the signal handler.
        static SIGNAL_PIPE_WRITE: AtomicI32 = AtomicI32::new(-1);

        extern "C" {
            fn pipe(fds: *mut i32) -> i32;
            fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
            fn write(fd: i32, buf: *const u8, count: usize) -> isize;
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_sigint(_sig: i32) {
            // Async-signal-safe: a single write(2) on the self-pipe.
            let fd = SIGNAL_PIPE_WRITE.load(Ordering::SeqCst);
            if fd >= 0 {
                unsafe {
                    write(fd, b"!".as_ptr(), 1);
                }
            }
        }

        const SIGINT: i32 = 2;
        let mut fds = [0i32; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return;
        }
        SIGNAL_PIPE_WRITE.store(fds[1], Ordering::SeqCst);
        let read_fd = fds[0];
        let handle = self.shutdown_handle();
        std::thread::spawn(move || {
            let mut buf = [0u8; 1];
            loop {
                let n = unsafe { read(read_fd, buf.as_mut_ptr(), 1) };
                if n > 0 {
                    handle.signal();
                    return;
                }
                if n == 0 {
                    return; // write end closed
                }
                // n < 0: interrupted — retry.
            }
        });
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }

    /// No-op off unix; stop the server with
    /// [`shutdown_handle`](Server::shutdown_handle) instead.
    #[cfg(not(unix))]
    pub fn install_sigint(&self) {}

    /// Serves until shutdown, then persists the database. Connection
    /// threads poll the same handle and drain on their own.
    pub fn run(self) -> std::io::Result<()> {
        let mut last_sweep = Instant::now();
        while !self.shutdown.is_signaled() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let manager = Arc::clone(&self.manager);
                    let shutdown = self.shutdown.clone();
                    std::thread::spawn(move || serve_connection(stream, manager, shutdown));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.shutdown.wait(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            if last_sweep.elapsed() >= SWEEP_INTERVAL {
                self.manager.expire_idle();
                // Periodic observability: one metrics-snapshot line per
                // live session into the journal directory's stats.ndjson.
                // `sweep_stats` swallows (and logs once per outage) write
                // failures — telemetry trouble must never end the sweep.
                self.manager.sweep_stats();
                last_sweep = Instant::now();
            }
        }
        self.manager.persist()
    }
}

fn serve_connection(stream: TcpStream, manager: Arc<SessionManager>, shutdown: ShutdownHandle) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shutdown.is_signaled() {
            return;
        }
        // A timed-out read may leave a partial line in `line`; the next
        // read_line appends to it, so only clear after handling a full line.
        match reader.read_line(&mut line) {
            Ok(0) => return, // peer closed
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let reply = manager.handle_line(trimmed);
                    if writer
                        .write_all(reply.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_wakes_a_parked_waiter_immediately() {
        let handle = ShutdownHandle::new();
        let waiter = handle.clone();
        let started = Instant::now();
        let t = std::thread::spawn(move || {
            // Far longer than the test should take: only an early wake
            // lets it finish fast.
            waiter.wait(Duration::from_secs(30));
            waiter.is_signaled()
        });
        std::thread::sleep(Duration::from_millis(20));
        handle.signal();
        assert!(t.join().unwrap());
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "signal must wake the waiter, not wait out the timeout"
        );
    }

    #[test]
    fn wait_after_signal_returns_at_once() {
        let handle = ShutdownHandle::new();
        handle.signal();
        let started = Instant::now();
        handle.wait(Duration::from_secs(30));
        assert!(started.elapsed() < Duration::from_secs(1));
    }
}
