//! The wire protocol: one JSON object per line, in both directions.
//!
//! Requests and responses are flat structs — every command uses the same
//! envelope with the irrelevant fields absent. See the README's "Service
//! mode" section for the per-command field reference.

use atf_core::metrics::MetricsSnapshot;
use atf_core::spec::{AbortSpec, ParameterSpec, SearchSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Machine-readable error codes carried by failure [`Response`]s.
pub mod codes {
    /// The request line is not valid JSON or not a request object.
    pub const PARSE: &str = "parse";
    /// The request is well-formed but missing required fields.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The `cmd` value is not a known command.
    pub const UNKNOWN_CMD: &str = "unknown_cmd";
    /// No live session has the given id (never opened, finished, or
    /// expired).
    pub const UNKNOWN_SESSION: &str = "unknown_session";
    /// The tuning specification could not be built.
    pub const SPEC: &str = "spec";
    /// Tuning failed (empty space, nothing measurable, report without a
    /// pending configuration).
    pub const TUNING: &str = "tuning";
    /// `lookup` found no record for the key.
    pub const NOT_FOUND: &str = "not_found";
    /// The service shed the request to protect itself: the global or
    /// per-tenant session quota is exhausted, the tenant's in-flight
    /// evaluation limit is reached, or every connection slot is taken.
    /// The response carries `retry_after_ms` — well-behaved clients wait
    /// at least that long before retrying.
    pub const OVERLOADED: &str = "overloaded";
}

/// A client request. `cmd` selects the command; the other fields are the
/// union of all commands' inputs (absent fields are simply omitted from the
/// JSON).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Request {
    /// One of `open`, `next`, `report`, `status`, `stats`, `finish`,
    /// `lookup`, `ping`.
    pub cmd: String,
    /// Client-generated idempotency key. When present on a state-changing
    /// command (`open`, `next`, `report`, `finish`), the manager remembers
    /// the response in a bounded dedup window and answers a *retry* of the
    /// same id with the remembered response instead of executing the
    /// command again — so a report retried after a lost ACK is never
    /// double-counted, and a retried `next` re-receives the same ticket.
    /// Ids must be unique per logical request and reused verbatim across
    /// its retries ([`crate::Client`] does this automatically).
    #[serde(default)]
    pub request_id: Option<String>,
    /// Session id (`next`/`report`/`status`/`finish`).
    #[serde(default)]
    pub session: Option<String>,
    /// Kernel (program) name — database key (`open`/`lookup`).
    #[serde(default)]
    pub kernel: Option<String>,
    /// Device name — database key (`open`/`lookup`; default `local`).
    #[serde(default)]
    pub device: Option<String>,
    /// Workload label — database key (`open`/`lookup`; default empty).
    #[serde(default)]
    pub workload: Option<String>,
    /// `open`: tenant id for quota accounting. Sessions opened without a
    /// tenant are pooled under the default tenant. Not a database key —
    /// two tenants tuning the same kernel share cached results.
    #[serde(default)]
    pub tenant: Option<String>,
    /// Tuning parameters (`open`).
    #[serde(default)]
    pub parameters: Option<Vec<ParameterSpec>>,
    /// Search-technique selection (`open`; default ensemble).
    #[serde(default)]
    pub search: Option<SearchSpec>,
    /// Abort conditions (`open`; default `evaluations(S)`).
    #[serde(default)]
    pub abort: Option<AbortSpec>,
    /// Measured cost (`report`; omit when the measurement failed).
    #[serde(default)]
    pub cost: Option<f64>,
    /// Whether the measurement succeeded (`report`; default `true` when
    /// `cost` is present, `false` otherwise).
    #[serde(default)]
    pub valid: Option<bool>,
    /// Failure-taxonomy label of a failed measurement (`report`; one of
    /// [`atf_core::cost::FailureKind::label`]'s values — `timeout`,
    /// `compile`, `crash`, `bad_output`, `transient`, `invalid`).
    #[serde(default)]
    pub failure: Option<String>,
    /// `open`: resume from this key's run journal if one exists (requires
    /// the service to run with a journal directory).
    #[serde(default)]
    pub resume: Option<bool>,
    /// `open`: trip the session's circuit breaker after this many
    /// consecutive failed evaluations.
    #[serde(default)]
    pub breaker: Option<u32>,
    /// `open`: maximum number of simultaneously pending configurations
    /// (default 1). Raise it so several clients can pull distinct
    /// configurations from one session concurrently.
    #[serde(default)]
    pub max_pending: Option<u64>,
    /// `report`: ticket of the configuration the cost belongs to (from the
    /// `next` response). Omitted by serial clients — the report then applies
    /// to the oldest unreported configuration.
    #[serde(default)]
    pub ticket: Option<u64>,
}

impl Request {
    /// A request with only `cmd` set.
    pub fn new(cmd: &str) -> Self {
        Request {
            cmd: cmd.to_string(),
            ..Default::default()
        }
    }

    /// Sets the session id.
    pub fn with_session(mut self, session: &str) -> Self {
        self.session = Some(session.to_string());
        self
    }
}

/// A service response. `ok` distinguishes success from failure; on failure
/// `code` holds a machine-readable error class ([`codes`]) and `error` the
/// human-readable message. The remaining fields are the union of all
/// commands' outputs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Response {
    /// Whether the request succeeded.
    pub ok: bool,
    /// Error code on failure (see [`codes`]).
    #[serde(default)]
    pub code: Option<String>,
    /// Error message on failure.
    #[serde(default)]
    pub error: Option<String>,
    /// Session id (`open`).
    #[serde(default)]
    pub session: Option<String>,
    /// `next`: `true` once the session has no more configurations.
    #[serde(default)]
    pub done: Option<bool>,
    /// `next`: the configuration to measure.
    #[serde(default)]
    pub config: Option<BTreeMap<String, u64>>,
    /// Best configuration (`finish`/`lookup`/`status` once known).
    #[serde(default)]
    pub best_config: Option<BTreeMap<String, u64>>,
    /// Best scalar cost (`finish`/`lookup`/`status` once known).
    #[serde(default)]
    pub best_cost: Option<f64>,
    /// Total evaluations so far (`report`/`status`/`finish`).
    #[serde(default)]
    pub evaluations: Option<u64>,
    /// Successful evaluations (`status`/`finish`).
    #[serde(default)]
    pub valid_evaluations: Option<u64>,
    /// Failed evaluations (`status`/`finish`).
    #[serde(default)]
    pub failed_evaluations: Option<u64>,
    /// Search-space size as a string (`open`/`status`/`finish`; stringified
    /// because `S` is a `u128`).
    #[serde(default)]
    pub space_size: Option<String>,
    /// Number of best-cost improvements (`status`/`finish`).
    #[serde(default)]
    pub improvements: Option<u64>,
    /// `lookup`: where the answer came from (always `"database"`).
    #[serde(default)]
    pub source: Option<String>,
    /// Failed evaluations by taxonomy label (`status`/`finish`; only
    /// nonzero kinds appear).
    #[serde(default)]
    pub failures: Option<BTreeMap<String, u64>>,
    /// `open` with `resume`: how many evaluations were replayed from the
    /// run journal.
    #[serde(default)]
    pub resumed: Option<u64>,
    /// `next`: ticket identifying the handed-out configuration; echo it in
    /// the matching `report`.
    #[serde(default)]
    pub ticket: Option<u64>,
    /// `next`: `true` when no configuration is available *right now* (every
    /// window slot is handed out) but the session is not done — report a
    /// pending ticket or ask again shortly.
    #[serde(default)]
    pub retry: Option<bool>,
    /// `stats`: the session's full metrics snapshot (latency histogram,
    /// failure taxonomy, window occupancy, throughput).
    #[serde(default)]
    pub stats: Option<MetricsSnapshot>,
    /// On an [`codes::OVERLOADED`] failure: how long (milliseconds) the
    /// client should wait before retrying the same request.
    #[serde(default)]
    pub retry_after_ms: Option<u64>,
}

impl Response {
    /// A bare success response.
    pub fn ok() -> Self {
        Response {
            ok: true,
            ..Default::default()
        }
    }

    /// A failure response with an error code and message.
    pub fn error(code: &str, message: impl std::fmt::Display) -> Self {
        Response {
            ok: false,
            code: Some(code.to_string()),
            error: Some(message.to_string()),
            ..Default::default()
        }
    }

    /// A load-shedding response: [`codes::OVERLOADED`] plus the
    /// retry-after hint.
    pub fn overloaded(message: impl std::fmt::Display, retry_after_ms: u64) -> Self {
        let mut resp = Response::error(codes::OVERLOADED, message);
        resp.retry_after_ms = Some(retry_after_ms);
        resp
    }

    /// Whether this is a load-shedding ([`codes::OVERLOADED`]) response.
    pub fn is_overloaded(&self) -> bool {
        !self.ok && self.code.as_deref() == Some(codes::OVERLOADED)
    }
}

/// Renders a [`atf_core::config::Config`] as the wire map. Service-built
/// spaces come from [`ParameterSpec`]s, whose values are always `u64`.
pub fn config_to_wire(config: &atf_core::config::Config) -> BTreeMap<String, u64> {
    config
        .iter()
        .map(|(name, value)| {
            let v = value
                .as_u64()
                .or_else(|| value.as_f64().map(|f| f as u64))
                .unwrap_or_default();
            (name.to_string(), v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request {
            cmd: "open".into(),
            kernel: Some("saxpy".into()),
            parameters: Some(vec![ParameterSpec {
                name: "WPT".into(),
                interval: None,
                set: Some(vec![1, 2, 4]),
                constraint: None,
            }]),
            ..Default::default()
        };
        let line = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back.cmd, "open");
        assert_eq!(back.kernel.as_deref(), Some("saxpy"));
        assert_eq!(back.parameters.unwrap()[0].set, Some(vec![1, 2, 4]));
        assert!(back.session.is_none());
    }

    #[test]
    fn response_round_trips() {
        let mut resp = Response::ok();
        resp.config = Some(BTreeMap::from([("WPT".to_string(), 4u64)]));
        resp.best_cost = Some(1.5);
        resp.space_size = Some("12".into());
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(back.ok);
        assert_eq!(back.config.unwrap()["WPT"], 4);
        assert_eq!(back.best_cost, Some(1.5));
        assert_eq!(back.space_size.as_deref(), Some("12"));
    }

    #[test]
    fn error_response_shape() {
        let resp = Response::error(codes::UNKNOWN_SESSION, "no session `s9`");
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(!back.ok);
        assert_eq!(back.code.as_deref(), Some(codes::UNKNOWN_SESSION));
        assert!(back.error.unwrap().contains("s9"));
    }

    #[test]
    fn overloaded_response_round_trips() {
        let resp = Response::overloaded("session quota exhausted", 750);
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(back.is_overloaded());
        assert_eq!(back.retry_after_ms, Some(750));
        // Old peers ignore the hint; new peers default it to absent.
        let old: Response = serde_json::from_str("{\"ok\":true}").unwrap();
        assert_eq!(old.retry_after_ms, None);
        assert!(!old.is_overloaded());
    }

    #[test]
    fn tenant_field_round_trips_and_defaults() {
        let mut req = Request::new("open");
        req.tenant = Some("acme".into());
        let line = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back.tenant.as_deref(), Some("acme"));
        let old: Request = serde_json::from_str("{\"cmd\":\"open\"}").unwrap();
        assert_eq!(old.tenant, None);
    }

    #[test]
    fn malformed_request_is_a_parse_error() {
        assert!(serde_json::from_str::<Request>("{\"no_cmd\": 1}").is_err());
        assert!(serde_json::from_str::<Request>("[1,2,3]").is_err());
        assert!(serde_json::from_str::<Request>("{{{{").is_err());
    }
}
