//! Client side of the protocol: one generic [`Client`] over a [`Transport`]
//! that either crosses TCP ([`TcpTransport`]) or stays in-process
//! ([`Loopback`]). Both go through the same line encoding, so loopback
//! tests exercise the full protocol minus the socket.

use crate::manager::SessionManager;
use crate::proto::{codes, Request, Response};
use atf_core::spec::{AbortSpec, ParameterSpec, SearchSpec};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(std::io::Error),
    /// The service replied with something that is not a valid response (or
    /// closed the connection mid-exchange).
    Protocol(String),
    /// The service replied with a structured error.
    Remote {
        /// Machine-readable error class ([`crate::proto::codes`]).
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote { code, message } => {
                write!(f, "service error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Carries one request line to the service and brings the response line
/// back.
pub trait Transport {
    /// Sends `line` (no trailing newline) and returns the response line.
    fn round_trip(&mut self, line: &str) -> Result<String, ClientError>;
}

/// A [`Transport`] over a TCP connection.
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpTransport {
    /// Connects to a service endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(TcpTransport {
            reader: BufReader::new(stream),
            writer,
        })
    }
}

impl Transport for TcpTransport {
    fn round_trip(&mut self, line: &str) -> Result<String, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "service closed the connection".to_string(),
            ));
        }
        Ok(reply)
    }
}

/// An in-process [`Transport`] that hands lines straight to a
/// [`SessionManager`] — the service without the socket, for integration
/// tests and the CLI's `run` mode.
pub struct Loopback(pub Arc<SessionManager>);

impl Transport for Loopback {
    fn round_trip(&mut self, line: &str) -> Result<String, ClientError> {
        Ok(self.0.handle_line(line))
    }
}

/// Everything `open` needs: the database key plus the tuning specification.
#[derive(Clone, Debug, Default)]
pub struct SessionSpec {
    /// Kernel (program) name — database key.
    pub kernel: String,
    /// Device name — database key (service defaults to `local`).
    pub device: Option<String>,
    /// Workload label — database key (service defaults to empty).
    pub workload: Option<String>,
    /// Tuning parameters.
    pub parameters: Vec<ParameterSpec>,
    /// Search-technique selection (service defaults to ensemble).
    pub search: Option<SearchSpec>,
    /// Abort conditions (service defaults to `evaluations(S)`).
    pub abort: Option<AbortSpec>,
    /// Ask the service to resume this key's run journal, if it keeps one.
    pub resume: bool,
    /// Circuit-breaker threshold: abort the session after this many
    /// consecutive failed evaluations.
    pub breaker: Option<u32>,
    /// Maximum number of simultaneously pending configurations (default 1).
    /// Raise it so several clients can pull distinct configurations from
    /// this session concurrently (see [`Client::next_ticket`]).
    pub max_pending: Option<u64>,
}

impl SessionSpec {
    /// A spec for the given kernel; fill in the parameters before opening.
    pub fn new(kernel: &str) -> Self {
        SessionSpec {
            kernel: kernel.to_string(),
            ..Default::default()
        }
    }
}

/// A wire-level tuning configuration, as served by `next`.
pub type WireConfig = BTreeMap<String, u64>;

/// Outcome of a ticketed `next` request (see [`Client::next_ticket`]).
#[derive(Clone, Debug, PartialEq)]
pub enum WireHandout {
    /// A configuration to measure; echo the ticket in the report.
    Next(u64, WireConfig),
    /// Nothing available *right now* — every window slot is handed out to
    /// some client. Ask again shortly.
    Retry,
    /// The session has no more configurations.
    Done,
}

/// A protocol client over any [`Transport`].
pub struct Client<T: Transport> {
    transport: T,
}

/// An in-process client (see [`Loopback`]).
pub type LoopbackClient = Client<Loopback>;

impl Client<TcpTransport> {
    /// Connects to a service endpoint over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Ok(Client::new(TcpTransport::connect(addr)?))
    }
}

impl Client<Loopback> {
    /// A client talking to an in-process [`SessionManager`].
    pub fn loopback(manager: Arc<SessionManager>) -> Self {
        Client::new(Loopback(manager))
    }
}

impl<T: Transport> Client<T> {
    /// A client over an already-established transport.
    pub fn new(transport: T) -> Self {
        Client { transport }
    }

    /// Sends one request; a failure response becomes
    /// [`ClientError::Remote`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let line = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("could not encode request: {e}")))?;
        let reply = self.transport.round_trip(&line)?;
        let response: Response = serde_json::from_str(reply.trim())
            .map_err(|e| ClientError::Protocol(format!("bad response line: {e}")))?;
        if response.ok {
            Ok(response)
        } else {
            Err(ClientError::Remote {
                code: response.code.unwrap_or_else(|| "unknown".to_string()),
                message: response.error.unwrap_or_default(),
            })
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Request::new("ping")).map(|_| ())
    }

    /// Opens a session; returns its id.
    pub fn open(&mut self, spec: &SessionSpec) -> Result<String, ClientError> {
        self.open_resumable(spec).map(|(session, _)| session)
    }

    /// Opens a session and also returns how many evaluations the service
    /// replayed from its run journal (0 unless the spec asked to resume).
    pub fn open_resumable(&mut self, spec: &SessionSpec) -> Result<(String, u64), ClientError> {
        let mut req = Request::new("open");
        req.kernel = Some(spec.kernel.clone());
        req.device = spec.device.clone();
        req.workload = spec.workload.clone();
        req.parameters = Some(spec.parameters.clone());
        req.search = spec.search.clone();
        req.abort = spec.abort.clone();
        req.resume = spec.resume.then_some(true);
        req.breaker = spec.breaker;
        req.max_pending = spec.max_pending;
        let resp = self.request(&req)?;
        let session = resp
            .session
            .ok_or_else(|| ClientError::Protocol("open reply without a session id".to_string()))?;
        Ok((session, resp.resumed.unwrap_or(0)))
    }

    /// The next configuration to measure, or `None` when the session is
    /// done.
    pub fn next(&mut self, session: &str) -> Result<Option<WireConfig>, ClientError> {
        let resp = self.request(&Request::new("next").with_session(session))?;
        if resp.done == Some(true) {
            Ok(None)
        } else {
            resp.config.map(Some).ok_or_else(|| {
                ClientError::Protocol("next reply with neither config nor done".to_string())
            })
        }
    }

    /// The next configuration with its ticket — the multi-client form of
    /// [`next`](Self::next). Several clients can hold distinct tickets of
    /// one session (opened with a `max_pending` window) at the same time;
    /// each reports under its own ticket via
    /// [`report_ticket`](Self::report_ticket).
    pub fn next_ticket(&mut self, session: &str) -> Result<WireHandout, ClientError> {
        let resp = self.request(&Request::new("next").with_session(session))?;
        if resp.done == Some(true) {
            return Ok(WireHandout::Done);
        }
        if resp.retry == Some(true) {
            return Ok(WireHandout::Retry);
        }
        match (resp.ticket, resp.config) {
            (Some(ticket), Some(config)) => Ok(WireHandout::Next(ticket, config)),
            _ => Err(ClientError::Protocol(
                "next reply with neither config nor done".to_string(),
            )),
        }
    }

    /// Reports the measured cost for the pending configuration (`None` =
    /// the measurement failed).
    pub fn report(&mut self, session: &str, cost: Option<f64>) -> Result<Response, ClientError> {
        let mut req = Request::new("report").with_session(session);
        req.cost = cost;
        req.valid = Some(cost.is_some());
        self.request(&req)
    }

    /// Reports the measured cost of one ticket (`None` = the measurement
    /// failed) — the multi-client form of [`report`](Self::report).
    pub fn report_ticket(
        &mut self,
        session: &str,
        ticket: u64,
        cost: Option<f64>,
    ) -> Result<Response, ClientError> {
        let mut req = Request::new("report").with_session(session);
        req.ticket = Some(ticket);
        req.cost = cost;
        req.valid = Some(cost.is_some());
        self.request(&req)
    }

    /// Reports a failed measurement with its taxonomy class, so the
    /// service's failure counters (and circuit breaker) see *why* it
    /// failed, not just that it did.
    pub fn report_failure(
        &mut self,
        session: &str,
        kind: atf_core::cost::FailureKind,
    ) -> Result<Response, ClientError> {
        let mut req = Request::new("report").with_session(session);
        req.valid = Some(false);
        req.failure = Some(kind.label().to_string());
        self.request(&req)
    }

    /// Live progress of a session.
    pub fn status(&mut self, session: &str) -> Result<Response, ClientError> {
        self.request(&Request::new("status").with_session(session))
    }

    /// The session's metrics snapshot: eval-latency histogram, failure
    /// taxonomy counts, window occupancy, and throughput.
    pub fn stats(
        &mut self,
        session: &str,
    ) -> Result<atf_core::metrics::MetricsSnapshot, ClientError> {
        let resp = self.request(&Request::new("stats").with_session(session))?;
        resp.stats
            .ok_or_else(|| ClientError::Protocol("stats reply without stats".to_string()))
    }

    /// Finishes a session: the service merges the result into its database
    /// and returns it.
    pub fn finish(&mut self, session: &str) -> Result<Response, ClientError> {
        self.request(&Request::new("finish").with_session(session))
    }

    /// The stored best result for a database key, if any (`Ok(None)` when
    /// the service has no record).
    pub fn lookup(
        &mut self,
        kernel: &str,
        device: Option<&str>,
        workload: Option<&str>,
    ) -> Result<Option<Response>, ClientError> {
        let mut req = Request::new("lookup");
        req.kernel = Some(kernel.to_string());
        req.device = device.map(str::to_string);
        req.workload = workload.map(str::to_string);
        match self.request(&req) {
            Ok(resp) => Ok(Some(resp)),
            Err(ClientError::Remote { code, .. }) if code == codes::NOT_FOUND => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Runs a whole tuning session: opens, drives next/report with the
    /// given cost function (`None` = measurement failed), finishes, and
    /// returns the final result response.
    pub fn tune(
        &mut self,
        spec: &SessionSpec,
        mut cost: impl FnMut(&WireConfig) -> Option<f64>,
    ) -> Result<Response, ClientError> {
        let session = self.open(spec)?;
        while let Some(config) = self.next(&session)? {
            let measured = cost(&config);
            self.report(&session, measured)?;
        }
        self.finish(&session)
    }

    /// Like [`tune`](Self::tune), but the cost closure classifies its
    /// failures: `Err(kind)` reports the taxonomy class to the service
    /// instead of a bare invalid measurement. Honours the spec's `resume`
    /// and `breaker` fields; a tripped breaker surfaces as
    /// [`ClientError::Remote`] from the final `finish`.
    pub fn tune_classified(
        &mut self,
        spec: &SessionSpec,
        mut cost: impl FnMut(&WireConfig) -> Result<f64, atf_core::cost::FailureKind>,
    ) -> Result<Response, ClientError> {
        let (session, _replayed) = self.open_resumable(spec)?;
        while let Some(config) = self.next(&session)? {
            match cost(&config) {
                Ok(measured) => self.report(&session, Some(measured))?,
                Err(kind) => self.report_failure(&session, kind)?,
            };
        }
        self.finish(&session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atf_core::spec::IntervalSpec;

    fn toy_spec(kernel: &str) -> SessionSpec {
        let mut spec = SessionSpec::new(kernel);
        spec.parameters = vec![ParameterSpec {
            name: "X".into(),
            interval: Some(IntervalSpec {
                begin: 1,
                end: 16,
                step: 1,
            }),
            set: None,
            constraint: None,
        }];
        spec.search = Some(SearchSpec {
            technique: "exhaustive".into(),
            seed: 0,
        });
        spec
    }

    #[test]
    fn loopback_tune_and_lookup() {
        let manager = Arc::new(SessionManager::in_memory());
        let mut client = Client::loopback(Arc::clone(&manager));
        client.ping().unwrap();

        let result = client
            .tune(&toy_spec("toy"), |cfg| Some((cfg["X"] as f64 - 11.0).abs()))
            .unwrap();
        assert_eq!(result.best_config.as_ref().unwrap()["X"], 11);
        assert_eq!(result.best_cost, Some(0.0));
        assert_eq!(result.evaluations, Some(16));

        let hit = client.lookup("toy", None, None).unwrap().unwrap();
        assert_eq!(hit.best_config.unwrap()["X"], 11);
        assert_eq!(hit.source.as_deref(), Some("database"));
        assert!(client.lookup("other", None, None).unwrap().is_none());
    }

    #[test]
    fn remote_errors_surface_with_codes() {
        let manager = Arc::new(SessionManager::in_memory());
        let mut client = Client::loopback(manager);
        let err = client.next("s404").unwrap_err();
        match err {
            ClientError::Remote { code, .. } => assert_eq!(code, codes::UNKNOWN_SESSION),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn concurrent_clients_share_one_session() {
        // Three clients (threads) pull tickets from one window-3 session;
        // the merged result equals a serial exhaustive run.
        let manager = Arc::new(SessionManager::in_memory());
        let mut opener = Client::loopback(Arc::clone(&manager));
        let mut spec = toy_spec("shared");
        spec.max_pending = Some(3);
        let session = opener.open(&spec).unwrap();

        std::thread::scope(|scope| {
            for _ in 0..3 {
                let manager = Arc::clone(&manager);
                let session = session.clone();
                scope.spawn(move || {
                    let mut client = Client::loopback(manager);
                    loop {
                        match client.next_ticket(&session).unwrap() {
                            WireHandout::Next(ticket, config) => {
                                let cost = (config["X"] as f64 - 11.0).abs();
                                client.report_ticket(&session, ticket, Some(cost)).unwrap();
                            }
                            WireHandout::Retry => std::thread::yield_now(),
                            WireHandout::Done => break,
                        }
                    }
                });
            }
        });

        let result = opener.finish(&session).unwrap();
        assert_eq!(result.best_config.as_ref().unwrap()["X"], 11);
        assert_eq!(result.best_cost, Some(0.0));
        assert_eq!(result.evaluations, Some(16));
    }

    #[test]
    fn failed_measurements_are_reported() {
        let manager = Arc::new(SessionManager::in_memory());
        let mut client = Client::loopback(manager);
        // Every odd X fails to measure; the best must come from even X only.
        let result = client
            .tune(&toy_spec("half"), |cfg| {
                let x = cfg["X"];
                (x % 2 == 0).then(|| (x as f64 - 9.0).abs())
            })
            .unwrap();
        assert_eq!(result.best_config.as_ref().unwrap()["X"], 8);
        assert_eq!(result.valid_evaluations, Some(8));
        assert_eq!(result.failed_evaluations, Some(8));
    }
}
