//! Client side of the protocol: one generic [`Client`] over a [`Transport`]
//! that either crosses TCP ([`TcpTransport`]) or stays in-process
//! ([`Loopback`]). Both go through the same line encoding, so loopback
//! tests exercise the full protocol minus the socket.

use crate::manager::SessionManager;
use crate::proto::{codes, Request, Response};
use atf_core::spec::{AbortSpec, ParameterSpec, SearchSpec};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(std::io::Error),
    /// The service replied with something that is not a valid response (or
    /// closed the connection mid-exchange).
    Protocol(String),
    /// The service did not answer within the transport's read/write
    /// timeout: a hung (but not closed) peer. Retriable — the request may
    /// or may not have been applied, which is exactly what `request_id`
    /// deduplication exists for.
    Timeout(String),
    /// The service replied with a structured error.
    Remote {
        /// Machine-readable error class ([`crate::proto::codes`]).
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Timeout(m) => write!(f, "timed out: {m}"),
            ClientError::Remote { code, message } => {
                write!(f, "service error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Carries one request line to the service and brings the response line
/// back.
pub trait Transport {
    /// Sends `line` (no trailing newline) and returns the response line.
    fn round_trip(&mut self, line: &str) -> Result<String, ClientError>;
}

/// Default per-request socket read/write timeout: a hung (SIGSTOPped,
/// deadlocked, partitioned-but-not-reset) service must not block a client
/// forever.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A [`Transport`] over a TCP connection, with per-request read/write
/// timeouts so a hung peer surfaces as [`ClientError::Timeout`] instead of
/// blocking forever.
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpTransport {
    /// Connects to a service endpoint with the default I/O timeout
    /// ([`DEFAULT_IO_TIMEOUT`]).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with_timeout(addr, Some(DEFAULT_IO_TIMEOUT))
    }

    /// Connects with an explicit per-request read/write timeout (`None` =
    /// wait forever, the pre-hardening behavior).
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        io_timeout: Option<Duration>,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        let writer = stream.try_clone()?;
        Ok(TcpTransport {
            reader: BufReader::new(stream),
            writer,
        })
    }
}

/// Maps a socket error to [`ClientError`]: timeout kinds (`WouldBlock` on
/// unix, `TimedOut` on windows) become [`ClientError::Timeout`].
fn io_to_client_error(e: std::io::Error, during: &str) -> ClientError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            ClientError::Timeout(format!("no answer from the service while {during}"))
        }
        _ => ClientError::Io(e),
    }
}

impl Transport for TcpTransport {
    fn round_trip(&mut self, line: &str) -> Result<String, ClientError> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| io_to_client_error(e, "sending the request"))?;
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| io_to_client_error(e, "waiting for the response"))?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "service closed the connection".to_string(),
            ));
        }
        Ok(reply)
    }
}

/// A self-healing [`Transport`] wrapper: on a transport-level failure
/// (connection error, protocol desync, timeout) it drops the connection,
/// sleeps a jittered exponential backoff, reconnects through its factory,
/// and resends the *same* request line — same bytes, same `request_id` —
/// up to a retry budget. Together with the service's dedup window this
/// gives exactly-once observable semantics over an at-least-once wire.
///
/// Structured service errors ([`ClientError::Remote`]) are not transport
/// failures and are never retried here — the transport returns them as
/// ordinary response lines. The one exception is load shedding: an
/// `overloaded` reply (see [`crate::proto::codes::OVERLOADED`]) keeps the
/// healthy connection, sleeps at least the service's `retry_after_ms` hint
/// (or the normal backoff, whichever is longer), and resends the same line.
/// The service never dedup-caches shed replies, so the retry re-enters
/// admission and succeeds as soon as capacity frees up. Once the retry
/// budget is spent the overloaded reply is returned as-is, surfacing as
/// [`ClientError::Remote`] to the caller.
pub struct ReconnectingTransport<T: Transport> {
    factory: Box<dyn FnMut() -> Result<T, ClientError> + Send>,
    inner: Option<T>,
    retries: u32,
    backoff: Duration,
    reconnects: u64,
    /// xorshift64 state for backoff jitter (decorrelates clients that fail
    /// together; any nonzero seed works).
    jitter: u64,
}

impl<T: Transport> ReconnectingTransport<T> {
    /// Wraps a connection factory. `retries` is how many times one request
    /// is re-sent after a transport failure; `backoff` is the base delay
    /// before the first retry, doubling each attempt with ±50% jitter.
    pub fn new(
        factory: impl FnMut() -> Result<T, ClientError> + Send + 'static,
        retries: u32,
        backoff: Duration,
    ) -> Self {
        ReconnectingTransport {
            factory: Box::new(factory),
            inner: None,
            retries,
            backoff,
            reconnects: 0,
            jitter: 0x5eed_0d1e_c0de_feed,
        }
    }

    /// How many times the transport re-established a connection (for tests
    /// and diagnostics).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn connected(&mut self) -> Result<&mut T, ClientError> {
        if self.inner.is_none() {
            self.inner = Some((self.factory)()?);
        }
        Ok(self.inner.as_mut().expect("just connected"))
    }

    /// Backoff before retry number `attempt` (1-based): `backoff * 2^(a-1)`
    /// scaled by a jitter factor in [0.5, 1.5).
    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let factor = 0.5 + (self.jitter >> 11) as f64 / (1u64 << 53) as f64;
        let base = self.backoff.as_secs_f64() * f64::from(2u32.saturating_pow(attempt - 1));
        Duration::from_secs_f64((base * factor).min(60.0))
    }
}

impl<T: Transport> Transport for ReconnectingTransport<T> {
    fn round_trip(&mut self, line: &str) -> Result<String, ClientError> {
        let mut attempt = 0u32;
        loop {
            let result = self
                .connected()
                .and_then(|transport| transport.round_trip(line));
            match result {
                Ok(reply) => match serde_json::from_str::<Response>(reply.trim()) {
                    Ok(resp) if resp.is_overloaded() && attempt < self.retries => {
                        // Load shedding, not a failure: the service
                        // answered and the connection is healthy, so keep
                        // it. Wait at least the service's retry-after hint
                        // (longer if the exponential backoff says so) and
                        // resend the same line — sheds are never
                        // dedup-cached, so the retry re-enters admission.
                        attempt += 1;
                        let backoff = self.backoff_delay(attempt);
                        let hinted = Duration::from_millis(resp.retry_after_ms.unwrap_or(0));
                        std::thread::sleep(backoff.max(hinted));
                    }
                    Ok(_) => return Ok(reply),
                    Err(_) => {
                        // A reply that is not a protocol response means the
                        // stream is corrupt or desynchronised (e.g. garbage
                        // bytes injected mid-stream): treat it like a
                        // connection failure so the request is retried on a
                        // fresh connection instead of surfacing a parse
                        // error.
                        self.inner = None;
                        if attempt >= self.retries {
                            return Err(ClientError::Protocol(
                                "unparseable response line".to_string(),
                            ));
                        }
                        attempt += 1;
                        self.reconnects += 1;
                        std::thread::sleep(self.backoff_delay(attempt));
                    }
                },
                Err(e) => {
                    // The connection is suspect after any failure: drop it
                    // so the next attempt starts from a fresh connect.
                    self.inner = None;
                    if attempt >= self.retries {
                        return Err(e);
                    }
                    attempt += 1;
                    self.reconnects += 1;
                    std::thread::sleep(self.backoff_delay(attempt));
                }
            }
        }
    }
}

impl ReconnectingTransport<TcpTransport> {
    /// A self-healing TCP transport for the given address, with the default
    /// per-request I/O timeout.
    pub fn tcp(addr: &str, retries: u32, backoff: Duration) -> Self {
        Self::tcp_with_timeout(addr, retries, backoff, Some(DEFAULT_IO_TIMEOUT))
    }

    /// Like [`tcp`](Self::tcp) with an explicit per-request I/O timeout.
    pub fn tcp_with_timeout(
        addr: &str,
        retries: u32,
        backoff: Duration,
        io_timeout: Option<Duration>,
    ) -> Self {
        let addr = addr.to_string();
        Self::new(
            move || TcpTransport::connect_with_timeout(addr.as_str(), io_timeout),
            retries,
            backoff,
        )
    }
}

/// An in-process [`Transport`] that hands lines straight to a
/// [`SessionManager`] — the service without the socket, for integration
/// tests and the CLI's `run` mode.
pub struct Loopback(pub Arc<SessionManager>);

impl Transport for Loopback {
    fn round_trip(&mut self, line: &str) -> Result<String, ClientError> {
        Ok(self.0.handle_line(line))
    }
}

/// Everything `open` needs: the database key plus the tuning specification.
#[derive(Clone, Debug, Default)]
pub struct SessionSpec {
    /// Kernel (program) name — database key.
    pub kernel: String,
    /// Device name — database key (service defaults to `local`).
    pub device: Option<String>,
    /// Workload label — database key (service defaults to empty).
    pub workload: Option<String>,
    /// Tenant this session is accounted against for admission control
    /// (service defaults to `default`). Purely an accounting label: it does
    /// not partition the database.
    pub tenant: Option<String>,
    /// Tuning parameters.
    pub parameters: Vec<ParameterSpec>,
    /// Search-technique selection (service defaults to ensemble).
    pub search: Option<SearchSpec>,
    /// Abort conditions (service defaults to `evaluations(S)`).
    pub abort: Option<AbortSpec>,
    /// Ask the service to resume this key's run journal, if it keeps one.
    pub resume: bool,
    /// Circuit-breaker threshold: abort the session after this many
    /// consecutive failed evaluations.
    pub breaker: Option<u32>,
    /// Maximum number of simultaneously pending configurations (default 1).
    /// Raise it so several clients can pull distinct configurations from
    /// this session concurrently (see [`Client::next_ticket`]).
    pub max_pending: Option<u64>,
}

impl SessionSpec {
    /// A spec for the given kernel; fill in the parameters before opening.
    pub fn new(kernel: &str) -> Self {
        SessionSpec {
            kernel: kernel.to_string(),
            ..Default::default()
        }
    }
}

/// A wire-level tuning configuration, as served by `next`.
pub type WireConfig = BTreeMap<String, u64>;

/// Outcome of a ticketed `next` request (see [`Client::next_ticket`]).
#[derive(Clone, Debug, PartialEq)]
pub enum WireHandout {
    /// A configuration to measure; echo the ticket in the report.
    Next(u64, WireConfig),
    /// Nothing available *right now* — every window slot is handed out to
    /// some client. Ask again shortly.
    Retry,
    /// The session has no more configurations.
    Done,
}

/// A process-unique idempotency key: pid + process-start nanos as a prefix,
/// plus a monotone counter. Unique across concurrent clients in one process
/// and across client processes sharing one service.
fn next_request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    static PREFIX: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    let prefix = PREFIX.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        format!("{:x}.{:x}", std::process::id(), nanos)
    });
    format!("{prefix}.{}", COUNTER.fetch_add(1, Ordering::Relaxed))
}

/// A protocol client over any [`Transport`].
pub struct Client<T: Transport> {
    transport: T,
}

/// An in-process client (see [`Loopback`]).
pub type LoopbackClient = Client<Loopback>;

impl Client<TcpTransport> {
    /// Connects to a service endpoint over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Ok(Client::new(TcpTransport::connect(addr)?))
    }
}

impl Client<Loopback> {
    /// A client talking to an in-process [`SessionManager`].
    pub fn loopback(manager: Arc<SessionManager>) -> Self {
        Client::new(Loopback(manager))
    }
}

impl<T: Transport> Client<T> {
    /// A client over an already-established transport.
    pub fn new(transport: T) -> Self {
        Client { transport }
    }

    /// Sends one request; a failure response becomes
    /// [`ClientError::Remote`].
    ///
    /// State-changing commands (`open`, `next`, `report`, `finish`) are
    /// stamped with a fresh `request_id` unless the caller set one. The id
    /// goes into the serialized line *before* the transport sees it, so a
    /// retrying transport ([`ReconnectingTransport`]) resends the same id
    /// and the service's dedup window keeps retries exactly-once.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let stamped: Request;
        let request = match request.cmd.as_str() {
            "open" | "next" | "report" | "finish" if request.request_id.is_none() => {
                stamped = Request {
                    request_id: Some(next_request_id()),
                    ..request.clone()
                };
                &stamped
            }
            _ => request,
        };
        let line = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("could not encode request: {e}")))?;
        let reply = self.transport.round_trip(&line)?;
        let response: Response = serde_json::from_str(reply.trim())
            .map_err(|e| ClientError::Protocol(format!("bad response line: {e}")))?;
        if response.ok {
            Ok(response)
        } else {
            Err(ClientError::Remote {
                code: response.code.unwrap_or_else(|| "unknown".to_string()),
                message: response.error.unwrap_or_default(),
            })
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Request::new("ping")).map(|_| ())
    }

    /// Opens a session; returns its id.
    pub fn open(&mut self, spec: &SessionSpec) -> Result<String, ClientError> {
        self.open_resumable(spec).map(|(session, _)| session)
    }

    /// Opens a session and also returns how many evaluations the service
    /// replayed from its run journal (0 unless the spec asked to resume).
    pub fn open_resumable(&mut self, spec: &SessionSpec) -> Result<(String, u64), ClientError> {
        let mut req = Request::new("open");
        req.kernel = Some(spec.kernel.clone());
        req.device = spec.device.clone();
        req.workload = spec.workload.clone();
        req.tenant = spec.tenant.clone();
        req.parameters = Some(spec.parameters.clone());
        req.search = spec.search.clone();
        req.abort = spec.abort.clone();
        req.resume = spec.resume.then_some(true);
        req.breaker = spec.breaker;
        req.max_pending = spec.max_pending;
        let resp = self.request(&req)?;
        let session = resp
            .session
            .ok_or_else(|| ClientError::Protocol("open reply without a session id".to_string()))?;
        Ok((session, resp.resumed.unwrap_or(0)))
    }

    /// The next configuration to measure, or `None` when the session is
    /// done.
    pub fn next(&mut self, session: &str) -> Result<Option<WireConfig>, ClientError> {
        let resp = self.request(&Request::new("next").with_session(session))?;
        if resp.done == Some(true) {
            Ok(None)
        } else {
            resp.config.map(Some).ok_or_else(|| {
                ClientError::Protocol("next reply with neither config nor done".to_string())
            })
        }
    }

    /// The next configuration with its ticket — the multi-client form of
    /// [`next`](Self::next). Several clients can hold distinct tickets of
    /// one session (opened with a `max_pending` window) at the same time;
    /// each reports under its own ticket via
    /// [`report_ticket`](Self::report_ticket).
    pub fn next_ticket(&mut self, session: &str) -> Result<WireHandout, ClientError> {
        let resp = self.request(&Request::new("next").with_session(session))?;
        if resp.done == Some(true) {
            return Ok(WireHandout::Done);
        }
        if resp.retry == Some(true) {
            return Ok(WireHandout::Retry);
        }
        match (resp.ticket, resp.config) {
            (Some(ticket), Some(config)) => Ok(WireHandout::Next(ticket, config)),
            _ => Err(ClientError::Protocol(
                "next reply with neither config nor done".to_string(),
            )),
        }
    }

    /// Reports the measured cost for the pending configuration (`None` =
    /// the measurement failed).
    pub fn report(&mut self, session: &str, cost: Option<f64>) -> Result<Response, ClientError> {
        let mut req = Request::new("report").with_session(session);
        req.cost = cost;
        req.valid = Some(cost.is_some());
        self.request(&req)
    }

    /// Reports the measured cost of one ticket (`None` = the measurement
    /// failed) — the multi-client form of [`report`](Self::report).
    pub fn report_ticket(
        &mut self,
        session: &str,
        ticket: u64,
        cost: Option<f64>,
    ) -> Result<Response, ClientError> {
        let mut req = Request::new("report").with_session(session);
        req.ticket = Some(ticket);
        req.cost = cost;
        req.valid = Some(cost.is_some());
        self.request(&req)
    }

    /// Reports a failed measurement with its taxonomy class, so the
    /// service's failure counters (and circuit breaker) see *why* it
    /// failed, not just that it did.
    pub fn report_failure(
        &mut self,
        session: &str,
        kind: atf_core::cost::FailureKind,
    ) -> Result<Response, ClientError> {
        let mut req = Request::new("report").with_session(session);
        req.valid = Some(false);
        req.failure = Some(kind.label().to_string());
        self.request(&req)
    }

    /// Live progress of a session.
    pub fn status(&mut self, session: &str) -> Result<Response, ClientError> {
        self.request(&Request::new("status").with_session(session))
    }

    /// The session's metrics snapshot: eval-latency histogram, failure
    /// taxonomy counts, window occupancy, and throughput.
    pub fn stats(
        &mut self,
        session: &str,
    ) -> Result<atf_core::metrics::MetricsSnapshot, ClientError> {
        let resp = self.request(&Request::new("stats").with_session(session))?;
        resp.stats
            .ok_or_else(|| ClientError::Protocol("stats reply without stats".to_string()))
    }

    /// Finishes a session: the service merges the result into its database
    /// and returns it.
    pub fn finish(&mut self, session: &str) -> Result<Response, ClientError> {
        self.request(&Request::new("finish").with_session(session))
    }

    /// The stored best result for a database key, if any (`Ok(None)` when
    /// the service has no record).
    pub fn lookup(
        &mut self,
        kernel: &str,
        device: Option<&str>,
        workload: Option<&str>,
    ) -> Result<Option<Response>, ClientError> {
        let mut req = Request::new("lookup");
        req.kernel = Some(kernel.to_string());
        req.device = device.map(str::to_string);
        req.workload = workload.map(str::to_string);
        match self.request(&req) {
            Ok(resp) => Ok(Some(resp)),
            Err(ClientError::Remote { code, .. }) if code == codes::NOT_FOUND => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Runs a whole tuning session: opens, drives next/report with the
    /// given cost function (`None` = measurement failed), finishes, and
    /// returns the final result response.
    pub fn tune(
        &mut self,
        spec: &SessionSpec,
        mut cost: impl FnMut(&WireConfig) -> Option<f64>,
    ) -> Result<Response, ClientError> {
        let session = self.open(spec)?;
        while let Some(config) = self.next(&session)? {
            let measured = cost(&config);
            self.report(&session, measured)?;
        }
        self.finish(&session)
    }

    /// Like [`tune`](Self::tune), but the cost closure classifies its
    /// failures: `Err(kind)` reports the taxonomy class to the service
    /// instead of a bare invalid measurement. Honours the spec's `resume`
    /// and `breaker` fields; a tripped breaker surfaces as
    /// [`ClientError::Remote`] from the final `finish`.
    pub fn tune_classified(
        &mut self,
        spec: &SessionSpec,
        mut cost: impl FnMut(&WireConfig) -> Result<f64, atf_core::cost::FailureKind>,
    ) -> Result<Response, ClientError> {
        let (session, _replayed) = self.open_resumable(spec)?;
        while let Some(config) = self.next(&session)? {
            match cost(&config) {
                Ok(measured) => self.report(&session, Some(measured))?,
                Err(kind) => self.report_failure(&session, kind)?,
            };
        }
        self.finish(&session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atf_core::spec::IntervalSpec;

    fn toy_spec(kernel: &str) -> SessionSpec {
        let mut spec = SessionSpec::new(kernel);
        spec.parameters = vec![ParameterSpec {
            name: "X".into(),
            interval: Some(IntervalSpec {
                begin: 1,
                end: 16,
                step: 1,
            }),
            set: None,
            constraint: None,
        }];
        spec.search = Some(SearchSpec {
            technique: "exhaustive".into(),
            seed: 0,
        });
        spec
    }

    #[test]
    fn loopback_tune_and_lookup() {
        let manager = Arc::new(SessionManager::in_memory());
        let mut client = Client::loopback(Arc::clone(&manager));
        client.ping().unwrap();

        let result = client
            .tune(&toy_spec("toy"), |cfg| Some((cfg["X"] as f64 - 11.0).abs()))
            .unwrap();
        assert_eq!(result.best_config.as_ref().unwrap()["X"], 11);
        assert_eq!(result.best_cost, Some(0.0));
        assert_eq!(result.evaluations, Some(16));

        let hit = client.lookup("toy", None, None).unwrap().unwrap();
        assert_eq!(hit.best_config.unwrap()["X"], 11);
        assert_eq!(hit.source.as_deref(), Some("database"));
        assert!(client.lookup("other", None, None).unwrap().is_none());
    }

    #[test]
    fn remote_errors_surface_with_codes() {
        let manager = Arc::new(SessionManager::in_memory());
        let mut client = Client::loopback(manager);
        let err = client.next("s404").unwrap_err();
        match err {
            ClientError::Remote { code, .. } => assert_eq!(code, codes::UNKNOWN_SESSION),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn concurrent_clients_share_one_session() {
        // Three clients (threads) pull tickets from one window-3 session;
        // the merged result equals a serial exhaustive run.
        let manager = Arc::new(SessionManager::in_memory());
        let mut opener = Client::loopback(Arc::clone(&manager));
        let mut spec = toy_spec("shared");
        spec.max_pending = Some(3);
        let session = opener.open(&spec).unwrap();

        std::thread::scope(|scope| {
            for _ in 0..3 {
                let manager = Arc::clone(&manager);
                let session = session.clone();
                scope.spawn(move || {
                    let mut client = Client::loopback(manager);
                    loop {
                        match client.next_ticket(&session).unwrap() {
                            WireHandout::Next(ticket, config) => {
                                let cost = (config["X"] as f64 - 11.0).abs();
                                client.report_ticket(&session, ticket, Some(cost)).unwrap();
                            }
                            WireHandout::Retry => std::thread::yield_now(),
                            WireHandout::Done => break,
                        }
                    }
                });
            }
        });

        let result = opener.finish(&session).unwrap();
        assert_eq!(result.best_config.as_ref().unwrap()["X"], 11);
        assert_eq!(result.best_cost, Some(0.0));
        assert_eq!(result.evaluations, Some(16));
    }

    #[test]
    fn overloaded_reply_is_retried_after_the_hint() {
        use std::sync::atomic::AtomicU32;
        use std::time::Instant;

        struct Shed(Arc<AtomicU32>);
        impl Transport for Shed {
            fn round_trip(&mut self, _line: &str) -> Result<String, ClientError> {
                let n = self.0.fetch_add(1, Ordering::SeqCst);
                if n == 0 {
                    Ok(serde_json::to_string(&Response::overloaded("busy", 25)).unwrap())
                } else {
                    Ok(serde_json::to_string(&Response::ok()).unwrap())
                }
            }
        }

        let calls = Arc::new(AtomicU32::new(0));
        let factory_calls = Arc::clone(&calls);
        let mut transport = ReconnectingTransport::new(
            move || Ok(Shed(Arc::clone(&factory_calls))),
            3,
            Duration::from_millis(1),
        );
        let started = Instant::now();
        let reply = transport.round_trip("{\"cmd\":\"ping\"}").unwrap();
        let resp: Response = serde_json::from_str(reply.trim()).unwrap();
        assert!(resp.ok, "the retry after the shed must succeed");
        assert!(
            started.elapsed() >= Duration::from_millis(25),
            "the service's retry_after_ms hint must be honoured"
        );
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(
            transport.reconnects(),
            0,
            "a shed keeps the healthy connection — no reconnect"
        );
    }

    #[test]
    fn exhausted_retry_budget_surfaces_the_overloaded_reply() {
        struct AlwaysShed;
        impl Transport for AlwaysShed {
            fn round_trip(&mut self, _line: &str) -> Result<String, ClientError> {
                Ok(serde_json::to_string(&Response::overloaded("busy", 1)).unwrap())
            }
        }
        let transport = ReconnectingTransport::new(|| Ok(AlwaysShed), 2, Duration::from_millis(1));
        let mut client = Client::new(transport);
        match client.ping().unwrap_err() {
            ClientError::Remote { code, .. } => assert_eq!(code, codes::OVERLOADED),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn failed_measurements_are_reported() {
        let manager = Arc::new(SessionManager::in_memory());
        let mut client = Client::loopback(manager);
        // Every odd X fails to measure; the best must come from even X only.
        let result = client
            .tune(&toy_spec("half"), |cfg| {
                let x = cfg["X"];
                (x % 2 == 0).then(|| (x as f64 - 9.0).abs())
            })
            .unwrap();
        assert_eq!(result.best_config.as_ref().unwrap()["X"], 8);
        assert_eq!(result.valid_evaluations, Some(8));
        assert_eq!(result.failed_evaluations, Some(8));
    }
}
