//! Deterministic fault injection for the service wire: a seeded
//! [`ChaosPlan`] drives a [`ChaosTransport`] (in-process, wraps any
//! [`Transport`]) or a [`ChaosProxy`] (a real TCP listener in front of a
//! real server), injecting connection drops, lost responses, duplicated
//! deliveries, garbage bytes, partial writes, and delays at chosen protocol
//! points. Every fault draw comes from one `ChaCha8Rng`, so a failing
//! schedule is replayable from its seed alone.
//!
//! The point of the harness is the equivalence obligation it enforces (see
//! `tests/chaos.rs`): with a retrying client and `request_id` dedup, *any*
//! fault schedule must produce the same final tuning result as the
//! fault-free run, with zero double-counted evaluations.

use crate::client::{ClientError, Transport};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Probabilities of each fault, per request. The remainder (`1 - sum`) is
/// the chance of a clean round trip; rates are clamped during the draw, so
/// plans whose rates sum above 1 simply never deliver cleanly.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// RNG seed: the whole fault schedule replays from this one value.
    pub seed: u64,
    /// Connection dies before the request reaches the service (the safe
    /// retry case — no state changed).
    pub drop_before: f64,
    /// Request reaches the service and is applied, but the response is
    /// lost (the lost-ACK case — the retry *must* be deduplicated).
    pub drop_after: f64,
    /// Request is delivered twice back-to-back (a retransmit burst); the
    /// first response is returned.
    pub duplicate: f64,
    /// Request is delivered, but the client reads garbage bytes instead of
    /// the response.
    pub garbage: f64,
    /// Only a prefix of the request line is delivered (a torn write); the
    /// service sees an unparseable line and the client sees the connection
    /// die.
    pub partial: f64,
    /// The round trip is delayed by [`delay_by`](Self::delay_by).
    pub delay: f64,
    /// How long a delayed round trip stalls.
    pub delay_by: Duration,
}

impl ChaosPlan {
    /// A moderately hostile default plan (~30% of requests faulted) for the
    /// given seed.
    pub fn hostile(seed: u64) -> Self {
        ChaosPlan {
            seed,
            drop_before: 0.06,
            drop_after: 0.08,
            duplicate: 0.05,
            garbage: 0.04,
            partial: 0.04,
            delay: 0.03,
            delay_by: Duration::from_millis(1),
        }
    }

    /// A plan that never injects anything (the fault-free reference).
    pub fn calm(seed: u64) -> Self {
        ChaosPlan {
            seed,
            drop_before: 0.0,
            drop_after: 0.0,
            duplicate: 0.0,
            garbage: 0.0,
            partial: 0.0,
            delay: 0.0,
            delay_by: Duration::ZERO,
        }
    }
}

/// Which fault a request drew.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    None,
    DropBefore,
    DropAfter,
    Duplicate,
    Garbage,
    Partial,
    Delay,
}

/// How many of each fault a [`ChaosState`] injected so far.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosCounters {
    /// Requests lost before delivery.
    pub drops_before: u64,
    /// Responses lost after delivery (lost ACKs).
    pub drops_after: u64,
    /// Requests delivered twice.
    pub duplicates: u64,
    /// Responses replaced by garbage bytes.
    pub garbage: u64,
    /// Requests torn mid-line.
    pub partials: u64,
    /// Delayed round trips.
    pub delays: u64,
}

impl ChaosCounters {
    /// Total injected faults.
    pub fn total(&self) -> u64 {
        self.drops_before
            + self.drops_after
            + self.duplicates
            + self.garbage
            + self.partials
            + self.delays
    }
}

/// The shared, seeded fault source. One state is shared by every transport
/// a reconnecting client creates, so the schedule marches on across
/// reconnects instead of restarting from the seed.
pub struct ChaosState {
    rng: ChaCha8Rng,
    counters: ChaosCounters,
}

impl ChaosState {
    /// A state at the start of the plan's schedule.
    pub fn new(plan: &ChaosPlan) -> Arc<Mutex<Self>> {
        Arc::new(Mutex::new(ChaosState {
            rng: ChaCha8Rng::seed_from_u64(plan.seed),
            counters: ChaosCounters::default(),
        }))
    }

    /// Injection counts so far.
    pub fn counters(&self) -> ChaosCounters {
        self.counters
    }

    fn draw(&mut self, plan: &ChaosPlan) -> Fault {
        let roll: f64 = self.rng.gen();
        let mut edge = 0.0;
        for (rate, fault) in [
            (plan.drop_before, Fault::DropBefore),
            (plan.drop_after, Fault::DropAfter),
            (plan.duplicate, Fault::Duplicate),
            (plan.garbage, Fault::Garbage),
            (plan.partial, Fault::Partial),
            (plan.delay, Fault::Delay),
        ] {
            edge += rate;
            if roll < edge {
                match fault {
                    Fault::DropBefore => self.counters.drops_before += 1,
                    Fault::DropAfter => self.counters.drops_after += 1,
                    Fault::Duplicate => self.counters.duplicates += 1,
                    Fault::Garbage => self.counters.garbage += 1,
                    Fault::Partial => self.counters.partials += 1,
                    Fault::Delay => self.counters.delays += 1,
                    Fault::None => {}
                }
                return fault;
            }
        }
        Fault::None
    }

    /// A random cut point for a partial write, clamped to a UTF-8 boundary.
    fn cut_point(&mut self, line: &str) -> usize {
        if line.is_empty() {
            return 0;
        }
        let mut cut = self.rng.gen_range(0..line.len());
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        cut
    }

    fn garbage_line(&mut self) -> String {
        let len = self.rng.gen_range(1..40);
        (0..len)
            .map(|_| char::from(self.rng.gen_range(b' '..b'~')))
            .collect()
    }
}

/// A [`Transport`] wrapper that injects the plan's faults around an inner
/// transport. Intended for the in-process [`crate::client::Loopback`]
/// transport, where "deliver the request" is a direct manager call — the
/// byte-level equivalent for real sockets is [`ChaosProxy`].
pub struct ChaosTransport<T: Transport> {
    inner: T,
    plan: ChaosPlan,
    state: Arc<Mutex<ChaosState>>,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` with faults drawn from `state` (share one state across
    /// the transports of a reconnecting client).
    pub fn new(inner: T, plan: ChaosPlan, state: Arc<Mutex<ChaosState>>) -> Self {
        ChaosTransport { inner, plan, state }
    }

    /// Injection counts so far (shared across all transports on `state`).
    pub fn counters(&self) -> ChaosCounters {
        self.state.lock().counters
    }
}

fn dropped(at: &str) -> ClientError {
    ClientError::Io(std::io::Error::new(
        std::io::ErrorKind::ConnectionReset,
        format!("chaos: connection dropped {at}"),
    ))
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn round_trip(&mut self, line: &str) -> Result<String, ClientError> {
        let fault = self.state.lock().draw(&self.plan);
        match fault {
            Fault::None => self.inner.round_trip(line),
            // The request never reaches the service: the retry is trivially
            // safe, no state changed.
            Fault::DropBefore => Err(dropped("before the request was sent")),
            // The service applies the request, the client never learns: the
            // canonical lost ACK. Only request_id dedup makes the retry safe.
            Fault::DropAfter => {
                let _lost = self.inner.round_trip(line)?;
                Err(dropped("after the request was applied"))
            }
            // A retransmit burst: the service sees the line twice. The
            // second application must be absorbed by the dedup window.
            Fault::Duplicate => {
                let first = self.inner.round_trip(line)?;
                let _duplicate = self.inner.round_trip(line)?;
                Ok(first)
            }
            // The request lands, the response bytes are trashed in flight.
            Fault::Garbage => {
                let _lost = self.inner.round_trip(line)?;
                Ok(self.state.lock().garbage_line())
            }
            // A torn write: the service sees an unparseable prefix (and
            // answers with a parse error nobody reads); no session state
            // changes, so the retry is safe.
            Fault::Partial => {
                let cut = self.state.lock().cut_point(line);
                let _parse_error = self.inner.round_trip(&line[..cut]);
                Err(dropped("mid-write"))
            }
            Fault::Delay => {
                std::thread::sleep(self.plan.delay_by);
                self.inner.round_trip(line)
            }
        }
    }
}

/// A chaos TCP proxy: listens on an ephemeral port, forwards each request
/// line to the upstream service, and injects the plan's faults at the
/// socket level (closing connections, tearing writes, trashing responses).
/// Point a [`crate::client::ReconnectingTransport`] at
/// [`addr`](ChaosProxy::addr) to drive a real server through a hostile
/// network.
pub struct ChaosProxy {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    state: Arc<Mutex<ChaosState>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Spawns the proxy in front of `upstream` (e.g. a
    /// [`crate::Server`]'s local address).
    pub fn spawn(upstream: std::net::SocketAddr, plan: ChaosPlan) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = ChaosState::new(&plan);
        let shared_state = Arc::clone(&state);
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((conn, _peer)) => {
                        let plan = plan.clone();
                        let state = Arc::clone(&state);
                        std::thread::spawn(move || proxy_connection(conn, upstream, plan, state));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            }
        });
        Ok(ChaosProxy {
            addr,
            stop,
            state: shared_state,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address — connect clients here.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Injection counts so far, across every proxied connection.
    pub fn counters(&self) -> ChaosCounters {
        self.state.lock().counters
    }

    /// Stops the accept loop (live connections drain on their own).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One proxied connection: request lines flow client → upstream, response
/// lines flow back, and each exchange draws one fault. Connection-killing
/// faults end the proxied connection — the self-healing client reconnects
/// and the accept loop serves it a fresh one.
fn proxy_connection(
    client: TcpStream,
    upstream_addr: std::net::SocketAddr,
    plan: ChaosPlan,
    state: Arc<Mutex<ChaosState>>,
) {
    let Ok(upstream) = TcpStream::connect(upstream_addr) else {
        return;
    };
    upstream.set_nodelay(true).ok();
    client.set_nodelay(true).ok();
    let Ok(mut client_writer) = client.try_clone() else {
        return;
    };
    let Ok(mut upstream_writer) = upstream.try_clone() else {
        return;
    };
    let mut client_reader = BufReader::new(client);
    let mut upstream_reader = BufReader::new(upstream);
    let mut line = String::new();
    loop {
        line.clear();
        match client_reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let fault = state.lock().draw(&plan);
        // Forward the request (whole or torn), unless it is dropped first.
        match fault {
            Fault::DropBefore => return,
            Fault::Partial => {
                let cut = state.lock().cut_point(line.trim_end());
                let _ = upstream_writer.write_all(&line.as_bytes()[..cut]);
                let _ = upstream_writer.flush();
                return;
            }
            Fault::Duplicate => {
                // Two deliveries; only the first response goes back, the
                // second is swallowed below.
                if upstream_writer.write_all(line.as_bytes()).is_err()
                    || upstream_writer.write_all(line.as_bytes()).is_err()
                    || upstream_writer.flush().is_err()
                {
                    return;
                }
            }
            _ => {
                if upstream_writer.write_all(line.as_bytes()).is_err()
                    || upstream_writer.flush().is_err()
                {
                    return;
                }
            }
        }
        let mut reply = String::new();
        match upstream_reader.read_line(&mut reply) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if fault == Fault::Duplicate {
            let mut second = String::new();
            if matches!(upstream_reader.read_line(&mut second), Ok(0) | Err(_)) {
                return;
            }
        }
        match fault {
            Fault::DropAfter => return,
            Fault::Garbage => {
                let garbage = state.lock().garbage_line();
                let _ = client_writer.write_all(garbage.as_bytes());
                let _ = client_writer.write_all(b"\n");
                let _ = client_writer.flush();
                return;
            }
            Fault::Delay => std::thread::sleep(plan.delay_by),
            _ => {}
        }
        if client_writer.write_all(reply.as_bytes()).is_err() || client_writer.flush().is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, Loopback};
    use crate::manager::SessionManager;

    #[test]
    fn calm_plan_injects_nothing() {
        let manager = Arc::new(SessionManager::in_memory());
        let plan = ChaosPlan::calm(7);
        let state = ChaosState::new(&plan);
        let transport = ChaosTransport::new(Loopback(manager), plan, Arc::clone(&state));
        let mut client = Client::new(transport);
        for _ in 0..50 {
            client.ping().unwrap();
        }
        assert_eq!(state.lock().counters.total(), 0);
    }

    #[test]
    fn fault_schedule_replays_from_its_seed() {
        let plan = ChaosPlan::hostile(42);
        let draw_schedule = |plan: &ChaosPlan| {
            let state = ChaosState::new(plan);
            let mut guard = state.lock();
            (0..200).map(|_| guard.draw(plan)).collect::<Vec<_>>()
        };
        assert_eq!(draw_schedule(&plan), draw_schedule(&plan));
        assert_ne!(
            draw_schedule(&plan),
            draw_schedule(&ChaosPlan::hostile(43)),
            "different seeds must give different schedules"
        );
    }

    #[test]
    fn hostile_plan_injects_every_kind() {
        let plan = ChaosPlan::hostile(1);
        let state = ChaosState::new(&plan);
        {
            let mut guard = state.lock();
            for _ in 0..2000 {
                guard.draw(&plan);
            }
        }
        let counters = state.lock().counters;
        assert!(counters.drops_before > 0);
        assert!(counters.drops_after > 0);
        assert!(counters.duplicates > 0);
        assert!(counters.garbage > 0);
        assert!(counters.partials > 0);
        assert!(counters.delays > 0);
        assert!(counters.total() < 2000, "faults must not be certain");
    }

    #[test]
    fn cut_points_stay_on_char_boundaries() {
        let plan = ChaosPlan::hostile(3);
        let state = ChaosState::new(&plan);
        let line = "{\"cmd\":\"open\",\"kernel\":\"saxpy-α-β-γ\"}";
        let mut guard = state.lock();
        for _ in 0..200 {
            let cut = guard.cut_point(line);
            assert!(line.is_char_boundary(cut));
        }
    }
}
