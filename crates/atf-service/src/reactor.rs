//! The event-driven connection engine behind [`crate::server::Server`]: a
//! `poll(2)`-based reactor owning every connection socket, so thousands of
//! mostly-idle connections cost file descriptors and buffer space — not a
//! thread each.
//!
//! Layout: `io_threads` poll loops each own a disjoint set of nonblocking
//! sockets (round-robin assignment at accept). A loop reads whatever the
//! kernel has, frames it into NDJSON request lines, and hands complete
//! lines to a fixed pool of `handlers` threads that call
//! [`SessionManager::handle_line`]; responses travel back through a
//! per-loop completion queue and a self-pipe wakeup, and are flushed from
//! per-connection write buffers. Requests of one connection are served
//! strictly in arrival order (at most one line of a connection is with the
//! pool at a time), preserving the wire contract of the former
//! thread-per-connection server.
//!
//! The `poll`/`pipe`/`fcntl` calls are minimal hand-declared FFI in the
//! repo's vendored-only style — the same approach as the self-pipe SIGINT
//! handler that preceded this module.
//!
//! Shutdown honors the "answered, never hung up on" contract: when the
//! shutdown flag rises, each loop performs one final read sweep per
//! connection — slurping every byte the kernel has already acknowledged,
//! framing and dispatching the complete lines — and then only flushes;
//! a connection closes once its last buffered request has been answered
//! (or the drain deadline forces the issue).

#![cfg(unix)]

use crate::manager::SessionManager;
use crate::server::ShutdownHandle;
use atf_core::metrics::MetricsRegistry;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---- minimal poll/pipe FFI ------------------------------------------------

#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLNVAL: i16 = 0x020;

#[cfg(target_os = "linux")]
type Nfds = u64;
#[cfg(not(target_os = "linux"))]
type Nfds = u32;

#[cfg(target_os = "linux")]
const O_NONBLOCK: i32 = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: i32 = 0x0004;

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: Nfds, timeout_ms: i32) -> i32;
    fn pipe(fds: *mut i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
}

/// Opens a plain (blocking) pipe; `(read_fd, write_fd)` on success.
pub(crate) fn make_pipe() -> Option<(i32, i32)> {
    let mut fds = [0i32; 2];
    if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
        return None;
    }
    Some((fds[0], fds[1]))
}

/// Closes a raw fd (errors ignored — close is best-effort teardown).
pub(crate) fn close_fd(fd: i32) {
    unsafe {
        close(fd);
    }
}

/// Writes one byte to `fd`. Async-signal-safe (a single `write(2)`); a
/// full pipe or closed peer is ignored — a pending byte already wakes.
pub(crate) fn write_byte(fd: i32) {
    unsafe {
        write(fd, b"!".as_ptr(), 1);
    }
}

/// Blocking single-byte read used by the SIGINT watcher; returns the raw
/// `read(2)` result (1 data, 0 EOF, -1 error/EINTR).
pub(crate) fn read_byte(fd: i32, buf: &mut [u8; 1]) -> isize {
    unsafe { read(fd, buf.as_mut_ptr(), 1) }
}

fn set_nonblocking_fd(fd: i32) -> bool {
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    flags >= 0 && unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } >= 0
}

// ---- wakeups --------------------------------------------------------------

/// Self-pipe waker: any thread calls [`wake`](WakePipe::wake) (one
/// nonblocking byte), the owning poll loop has the read end in its set and
/// drains it at the top of every iteration.
pub(crate) struct WakePipe {
    read_fd: i32,
    write_fd: i32,
}

impl WakePipe {
    fn new() -> std::io::Result<Self> {
        let (read_fd, write_fd) = make_pipe().ok_or_else(std::io::Error::last_os_error)?;
        if !set_nonblocking_fd(read_fd) || !set_nonblocking_fd(write_fd) {
            close_fd(read_fd);
            close_fd(write_fd);
            return Err(std::io::Error::last_os_error());
        }
        Ok(WakePipe { read_fd, write_fd })
    }

    /// Wakes the owning poll loop (idempotent while a byte is pending).
    pub(crate) fn wake(&self) {
        write_byte(self.write_fd);
    }

    fn drain(&self) {
        let mut scratch = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, scratch.as_mut_ptr(), scratch.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        close_fd(self.read_fd);
        close_fd(self.write_fd);
    }
}

// ---- handler pool ---------------------------------------------------------

/// One framed request line on its way to the handler pool, tagged with the
/// connection token and the poll loop that owns the connection.
struct Job {
    token: u64,
    line: String,
    io: Arc<IoShared>,
}

struct HandlerPool {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    stop: AtomicBool,
    metrics: Arc<MetricsRegistry>,
}

impl HandlerPool {
    fn push(&self, job: Job) {
        let mut queue = self.queue.lock();
        queue.push_back(job);
        self.metrics.set_reactor_queue_depth(queue.len());
        self.cv.notify_one();
    }

    /// Lets handler threads exit once the queue is empty. Queued jobs are
    /// still served first — only a drain past its deadline leaves work
    /// behind, and those connections are force-closed anyway.
    fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _guard = self.queue.lock();
        self.cv.notify_all();
    }
}

fn handler_loop(pool: Arc<HandlerPool>, manager: Arc<SessionManager>) {
    loop {
        let job = {
            let mut queue = pool.queue.lock();
            loop {
                if let Some(job) = queue.pop_front() {
                    pool.metrics.set_reactor_queue_depth(queue.len());
                    break job;
                }
                if pool.stop.load(Ordering::SeqCst) {
                    return;
                }
                pool.cv.wait(&mut queue);
            }
        };
        pool.metrics.reactor_handler_busy();
        let started = Instant::now();
        let reply = manager.handle_line(&job.line);
        pool.metrics.reactor_handler_idle(started.elapsed());
        let was_empty = {
            let mut done = job.io.completions.lock();
            let was_empty = done.is_empty();
            done.push((job.token, reply));
            was_empty
        };
        // The loop drains its wake pipe *before* taking completions, so
        // one byte per batch suffices: pushes onto a nonempty queue ride
        // the wakeup that is already pending.
        if was_empty {
            job.io.wake.wake();
        }
    }
}

// ---- per-connection state -------------------------------------------------

/// Reads stop once a connection has this many undispatched complete lines
/// (per-connection pipelining backpressure).
const PIPELINE_LIMIT: usize = 64;
/// A connection sending more than this without a newline is cut off.
const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;
/// Compact the write buffer once this many bytes are already flushed.
const WRITE_COMPACT_BYTES: usize = 64 * 1024;
/// Poll park when nothing is ready (wakeups arrive via the self-pipe).
const POLL_PARK_MS: i32 = 250;

struct Conn {
    stream: TcpStream,
    fd: i32,
    /// Bytes received but not yet framed into complete lines.
    read_buf: Vec<u8>,
    /// How far `read_buf` has been scanned for a newline (avoid rescans).
    scanned: usize,
    /// Complete request lines awaiting dispatch. Serial per connection:
    /// at most one line is with the handler pool at a time, so responses
    /// return in request order.
    pending: VecDeque<String>,
    /// Whether a line of this connection is currently with the pool.
    dispatched: bool,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Peer sent EOF — no more reads; flush, answer, then close.
    peer_closed: bool,
    /// Drain mode: the final read sweep ran; only flushing remains.
    draining: bool,
    /// Socket error — close as soon as the loop sweeps.
    failed: bool,
}

impl Conn {
    fn new(stream: TcpStream, fd: i32) -> Self {
        Conn {
            stream,
            fd,
            read_buf: Vec::new(),
            scanned: 0,
            pending: VecDeque::new(),
            dispatched: false,
            write_buf: Vec::new(),
            write_pos: 0,
            peer_closed: false,
            draining: false,
            failed: false,
        }
    }

    fn wants_read(&self) -> bool {
        !self.peer_closed && !self.draining && !self.failed && self.pending.len() < PIPELINE_LIMIT
    }

    fn has_unwritten(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// Whether every received request has been answered and flushed.
    fn idle(&self) -> bool {
        self.pending.is_empty() && !self.dispatched && !self.has_unwritten()
    }

    fn closable(&self) -> bool {
        self.failed || ((self.peer_closed || self.draining) && self.idle())
    }
}

enum SocketRead {
    /// Kernel buffer drained; connection stays open.
    Blocked,
    /// Peer closed its write side.
    Eof,
    /// Hard socket error (or a line over [`MAX_LINE_BYTES`]).
    Error,
}

fn fill_from_socket(conn: &mut Conn, scratch: &mut [u8]) -> SocketRead {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => return SocketRead::Eof,
            Ok(n) => {
                conn.read_buf.extend_from_slice(&scratch[..n]);
                if conn.read_buf.len() > MAX_LINE_BYTES {
                    return SocketRead::Error;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return SocketRead::Blocked,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return SocketRead::Error,
        }
    }
}

/// Frames `read_buf` into complete lines, appending nonempty ones to
/// `pending`. Handles `\r\n`, skips blank lines (parity with the old
/// server, which never answered them), tolerates invalid UTF-8 by lossy
/// conversion (the manager answers `bad_request`).
fn frame_lines(conn: &mut Conn) {
    let mut consumed = 0usize;
    loop {
        let from = consumed.max(conn.scanned);
        match conn.read_buf[from..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let end = from + rel;
                let line = String::from_utf8_lossy(&conn.read_buf[consumed..end]);
                let line = line.trim();
                if !line.is_empty() {
                    conn.pending.push_back(line.to_string());
                }
                consumed = end + 1;
                conn.scanned = consumed;
            }
            None => {
                conn.scanned = conn.read_buf.len();
                break;
            }
        }
    }
    if consumed > 0 {
        conn.read_buf.drain(..consumed);
        conn.scanned -= consumed;
    }
}

/// Flushes as much of the write buffer as the socket accepts right now;
/// `false` on a hard error.
fn flush(conn: &mut Conn) -> bool {
    while conn.has_unwritten() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => return false,
            Ok(n) => conn.write_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    if !conn.has_unwritten() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    } else if conn.write_pos > WRITE_COMPACT_BYTES {
        conn.write_buf.drain(..conn.write_pos);
        conn.write_pos = 0;
    }
    true
}

/// Sends the connection's oldest undispatched line to the handler pool
/// (no-op while one is already out — serial per connection).
fn dispatch_next(token: u64, conn: &mut Conn, pool: &HandlerPool, shared: &Arc<IoShared>) {
    if conn.dispatched || conn.failed {
        return;
    }
    if let Some(line) = conn.pending.pop_front() {
        conn.dispatched = true;
        pool.push(Job {
            token,
            line,
            io: Arc::clone(shared),
        });
    }
}

// ---- the poll loops -------------------------------------------------------

/// State shared between one poll loop, the accept loop, and the handlers.
pub(crate) struct IoShared {
    wake: WakePipe,
    /// Connections accepted but not yet registered with this loop.
    registrations: Mutex<Vec<TcpStream>>,
    /// `(token, response line)` pairs produced by handler threads.
    completions: Mutex<Vec<(u64, String)>>,
    /// Drain deadline elapsed: close everything and exit.
    force_stop: AtomicBool,
}

struct IoCtx {
    shared: Arc<IoShared>,
    pool: Arc<HandlerPool>,
    shutdown: ShutdownHandle,
    active: Arc<AtomicUsize>,
    metrics: Arc<MetricsRegistry>,
}

impl IoCtx {
    fn close_counters(&self, registered: bool) {
        self.active.fetch_sub(1, Ordering::SeqCst);
        self.metrics.connections_active.dec();
        if registered {
            self.metrics.reactor_fds.dec();
        }
    }
}

fn io_loop(ctx: IoCtx) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut pollfds: Vec<PollFd> = Vec::new();
    let mut poll_tokens: Vec<u64> = Vec::new();
    let mut scratch = vec![0u8; 16 * 1024];

    loop {
        // Order matters: drain the wake pipe *before* taking completions
        // and registrations, so a producer that appends afterwards leaves
        // a fresh byte and the next poll returns immediately.
        ctx.shared.wake.drain();

        let arrived: Vec<TcpStream> = std::mem::take(&mut *ctx.shared.registrations.lock());
        for stream in arrived {
            if stream.set_nonblocking(true).is_err() {
                ctx.close_counters(false);
                continue;
            }
            let fd = stream.as_raw_fd();
            let token = next_token;
            next_token += 1;
            conns.insert(token, Conn::new(stream, fd));
            ctx.metrics.reactor_fds.inc();
        }

        let completed: Vec<(u64, String)> = std::mem::take(&mut *ctx.shared.completions.lock());
        for (token, reply) in completed {
            // The connection may have failed and closed while its request
            // was being served; the response is then undeliverable.
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            conn.write_buf.reserve(reply.len() + 1);
            conn.write_buf.extend_from_slice(reply.as_bytes());
            conn.write_buf.push(b'\n');
            conn.dispatched = false;
            dispatch_next(token, conn, &ctx.pool, &ctx.shared);
            if !flush(conn) {
                conn.failed = true;
            }
        }

        // Shutdown: one final read sweep per connection picks up every
        // request the kernel has already received bytes for — those are
        // answered before the connection closes. Checked every iteration
        // so a connection registered *after* the first sweep (accepted
        // just before the signal) is swept too.
        if ctx.shutdown.is_signaled() || ctx.shared.force_stop.load(Ordering::SeqCst) {
            for (&token, conn) in conns.iter_mut() {
                if conn.draining {
                    continue;
                }
                if !conn.peer_closed && !conn.failed {
                    match fill_from_socket(conn, &mut scratch) {
                        SocketRead::Blocked => {}
                        SocketRead::Eof => conn.peer_closed = true,
                        SocketRead::Error => conn.failed = true,
                    }
                    frame_lines(conn);
                    dispatch_next(token, conn, &ctx.pool, &ctx.shared);
                }
                conn.draining = true;
            }
        }

        if ctx.shared.force_stop.load(Ordering::SeqCst) {
            for _ in conns.drain() {
                ctx.close_counters(true);
            }
        }
        conns.retain(|_, conn| {
            if conn.closable() {
                ctx.close_counters(true);
                false
            } else {
                true
            }
        });

        if (ctx.shutdown.is_signaled() || ctx.shared.force_stop.load(Ordering::SeqCst))
            && conns.is_empty()
        {
            return;
        }

        pollfds.clear();
        poll_tokens.clear();
        pollfds.push(PollFd {
            fd: ctx.shared.wake.read_fd,
            events: POLLIN,
            revents: 0,
        });
        for (&token, conn) in &conns {
            let mut events = 0i16;
            if conn.wants_read() {
                events |= POLLIN;
            }
            if conn.has_unwritten() {
                events |= POLLOUT;
            }
            if events != 0 {
                pollfds.push(PollFd {
                    fd: conn.fd,
                    events,
                    revents: 0,
                });
                poll_tokens.push(token);
            }
        }
        let n = unsafe { poll(pollfds.as_mut_ptr(), pollfds.len() as Nfds, POLL_PARK_MS) };
        if n < 0 {
            if std::io::Error::last_os_error().kind() == std::io::ErrorKind::Interrupted {
                continue;
            }
            // A failing poll(2) with live fds should not spin hot.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }

        for (i, pfd) in pollfds.iter().enumerate().skip(1) {
            if pfd.revents == 0 {
                continue;
            }
            let token = poll_tokens[i - 1];
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            // Read before inspecting error bits: POLLHUP often arrives
            // together with the final data, which must still be framed.
            if pfd.revents & POLLIN != 0 {
                match fill_from_socket(conn, &mut scratch) {
                    SocketRead::Blocked => {}
                    SocketRead::Eof => conn.peer_closed = true,
                    SocketRead::Error => conn.failed = true,
                }
                frame_lines(conn);
                dispatch_next(token, conn, &ctx.pool, &ctx.shared);
            }
            if pfd.revents & POLLOUT != 0 && !flush(conn) {
                conn.failed = true;
            }
            if pfd.revents & (POLLERR | POLLNVAL) != 0 && conn.idle() {
                conn.failed = true;
            }
        }
    }
}

// ---- the reactor front ----------------------------------------------------

/// Handle owned by the accept loop: dispatches accepted connections to the
/// poll loops and tears the whole engine down at drain end.
pub(crate) struct Reactor {
    io: Vec<Arc<IoShared>>,
    pool: Arc<HandlerPool>,
    io_handles: Vec<std::thread::JoinHandle<()>>,
    handler_handles: Vec<std::thread::JoinHandle<()>>,
    next_io: AtomicUsize,
    active: Arc<AtomicUsize>,
    metrics: Arc<MetricsRegistry>,
}

impl Reactor {
    /// Spawns `io_threads` poll loops and `handlers` handler threads. The
    /// shutdown handle's signal wakes every poll loop immediately (their
    /// wake pipes are registered as signal wakers).
    pub(crate) fn start(
        manager: Arc<SessionManager>,
        shutdown: ShutdownHandle,
        io_threads: usize,
        handlers: usize,
    ) -> std::io::Result<Self> {
        let metrics = Arc::clone(manager.metrics());
        let active = Arc::new(AtomicUsize::new(0));
        let pool = Arc::new(HandlerPool {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            metrics: Arc::clone(&metrics),
        });
        let mut io = Vec::with_capacity(io_threads);
        let mut io_handles = Vec::with_capacity(io_threads);
        for i in 0..io_threads.max(1) {
            let shared = Arc::new(IoShared {
                wake: WakePipe::new()?,
                registrations: Mutex::new(Vec::new()),
                completions: Mutex::new(Vec::new()),
                force_stop: AtomicBool::new(false),
            });
            shutdown.register_waker(Arc::clone(&shared));
            let ctx = IoCtx {
                shared: Arc::clone(&shared),
                pool: Arc::clone(&pool),
                shutdown: shutdown.clone(),
                active: Arc::clone(&active),
                metrics: Arc::clone(&metrics),
            };
            io_handles.push(
                std::thread::Builder::new()
                    .name(format!("atf-io-{i}"))
                    .spawn(move || io_loop(ctx))?,
            );
            io.push(shared);
        }
        let mut handler_handles = Vec::with_capacity(handlers);
        for i in 0..handlers.max(1) {
            let pool = Arc::clone(&pool);
            let manager = Arc::clone(&manager);
            handler_handles.push(
                std::thread::Builder::new()
                    .name(format!("atf-handler-{i}"))
                    .spawn(move || handler_loop(pool, manager))?,
            );
        }
        Ok(Reactor {
            io,
            pool,
            io_handles,
            handler_handles,
            next_io: AtomicUsize::new(0),
            active,
            metrics,
        })
    }

    /// Connections currently owned by the poll loops (the server's slot
    /// accounting for `max_connections`).
    pub(crate) fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Hands an accepted connection to a poll loop (round-robin). Counts
    /// are bumped here — before the loop even sees the socket — so the
    /// accept loop's slot check can never over-admit.
    pub(crate) fn dispatch(&self, stream: TcpStream) {
        self.active.fetch_add(1, Ordering::SeqCst);
        self.metrics.connections_active.inc();
        let i = self.next_io.fetch_add(1, Ordering::Relaxed) % self.io.len();
        self.io[i].registrations.lock().push(stream);
        self.io[i].wake.wake();
    }

    /// Drain teardown: stop the handler pool (it finishes whatever is
    /// queued), force-close any connection still open, and join every
    /// thread. Called after the drain wait, so within the deadline this
    /// finds the loops already empty.
    pub(crate) fn stop_and_join(self) {
        self.pool.stop();
        for shared in &self.io {
            shared.force_stop.store(true, Ordering::SeqCst);
            shared.wake.wake();
        }
        for handle in self.io_handles {
            let _ = handle.join();
        }
        for handle in self.handler_handles {
            let _ = handle.join();
        }
    }
}

/// Signal-waker hookup: the shutdown handle pokes every poll loop's wake
/// pipe so a drain starts within one scheduler slice, not one poll park.
impl IoShared {
    pub(crate) fn wake_for_shutdown(&self) {
        self.wake.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn_from_bytes(bytes: &[u8]) -> Conn {
        // The TcpStream is never touched by framing; a connected pair
        // keeps the constructor honest.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let fd = stream.as_raw_fd();
        let mut conn = Conn::new(stream, fd);
        conn.read_buf.extend_from_slice(bytes);
        conn
    }

    #[test]
    fn frames_complete_lines_and_keeps_the_partial_tail() {
        let mut conn = conn_from_bytes(b"{\"cmd\":\"ping\"}\r\n\n  \n{\"cmd\":\"stats\"}\n{\"par");
        frame_lines(&mut conn);
        assert_eq!(conn.pending.len(), 2, "blank lines are skipped");
        assert_eq!(conn.pending[0], "{\"cmd\":\"ping\"}");
        assert_eq!(conn.pending[1], "{\"cmd\":\"stats\"}");
        assert_eq!(conn.read_buf, b"{\"par", "partial line stays buffered");
        // A second call on the same partial tail must not re-frame.
        frame_lines(&mut conn);
        assert_eq!(conn.pending.len(), 2);
        conn.read_buf.extend_from_slice(b"t\"}\n");
        frame_lines(&mut conn);
        assert_eq!(conn.pending.len(), 3);
        assert_eq!(conn.pending[2], "{\"part\"}");
        assert!(conn.read_buf.is_empty());
    }

    #[test]
    fn wake_pipe_wakes_and_drains() {
        let pipe = WakePipe::new().unwrap();
        pipe.wake();
        pipe.wake();
        let mut fds = [PollFd {
            fd: pipe.read_fd,
            events: POLLIN,
            revents: 0,
        }];
        let n = unsafe { poll(fds.as_mut_ptr(), 1, 1000) };
        assert_eq!(n, 1, "a pending byte must make poll return immediately");
        pipe.drain();
        let mut fds = [PollFd {
            fd: pipe.read_fd,
            events: POLLIN,
            revents: 0,
        }];
        let n = unsafe { poll(fds.as_mut_ptr(), 1, 0) };
        assert_eq!(n, 0, "drained pipe must be quiet");
    }
}
