//! # atf-service — tuning as a service
//!
//! A daemon wrapping [`atf_core::session::TuningSession`] behind a
//! newline-delimited JSON protocol over TCP. The measuring side (the
//! client) owns the cost function; the service owns the search:
//!
//! ```text
//! client                                service
//!   | {"cmd":"open","kernel":"saxpy",...}  |   build space + technique
//!   |------------------------------------->|   -> session id
//!   | {"cmd":"next","session":"s1"}        |
//!   |------------------------------------->|   -> configuration to measure
//!   |   ... client measures the cost ...   |
//!   | {"cmd":"report","session":"s1",      |
//!   |  "cost":12.5}                        |   feed cost to the technique
//!   |------------------------------------->|
//!   |        ... until next -> done ...    |
//!   | {"cmd":"finish","session":"s1"}      |   result + merge into the
//!   |------------------------------------->|   tuning database
//! ```
//!
//! Sessions are independent and concurrent — a `poll(2)`-based reactor
//! owns every connection socket with a handful of event-loop threads and
//! a fixed handler pool over one shared, sharded session manager, so
//! thousands of mostly-idle connections cost file descriptors, not
//! threads. Sessions survive client reconnects (a session id is all the
//! state a client needs; every handout carries a ticket, and `open` with
//! `max_pending` lets several clients pull distinct configurations from
//! one session concurrently), and expire after a configurable idle period. Finished sessions merge their
//! best result into a [`atf_core::db::TuningDatabase`] monotonically —
//! the `lookup` command then serves known-best configurations without any
//! tuning.

pub mod chaos;
pub mod client;
pub mod manager;
pub mod proto;
pub(crate) mod reactor;
pub mod server;

pub use chaos::{ChaosCounters, ChaosPlan, ChaosProxy, ChaosState, ChaosTransport};
pub use client::{
    Client, ClientError, LoopbackClient, ReconnectingTransport, SessionSpec, TcpTransport,
    Transport, WireHandout,
};
pub use manager::{AdmissionConfig, ManagerConfig, SessionManager, TenantUsage, DEFAULT_TENANT};
pub use proto::{Request, Response};
pub use server::{Server, ServerConfig, ShutdownHandle};
