//! The OpenCL-preprocessor substitution used by the cost function: tuning
//! parameters appear in kernel sources as macro identifiers, and the cost
//! function "replaces in kernel's source code the tuning parameters' names by
//! their corresponding values" (paper, Section II, Step 2) — equivalently,
//! prepends `-D NAME=VALUE` build options.

use std::collections::BTreeMap;

/// The macro definitions of one kernel build: tuning-parameter name → token.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DefineMap {
    defs: BTreeMap<String, String>,
}

impl DefineMap {
    /// An empty definition set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds/overwrites a definition.
    pub fn define(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.defs.insert(name.into(), value.into());
    }

    /// Builder-style [`Self::define`].
    pub fn with(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.define(name, value);
        self
    }

    /// Looks up a raw definition token.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.defs.get(name).map(String::as_str)
    }

    /// Looks up a definition and parses it as `u64`.
    pub fn get_u64(&self, name: &str) -> Option<u64> {
        self.get(name)?.parse().ok()
    }

    /// Looks up a definition and parses it as a C boolean (`0` = false,
    /// anything else numeric = true; also accepts `true`/`false`).
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        let t = self.get(name)?;
        match t {
            "true" => Some(true),
            "false" => Some(false),
            _ => t.parse::<i64>().ok().map(|v| v != 0),
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.defs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// `true` when no macros are defined.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Renders as OpenCL build options: `-DNAME=VALUE -DNAME2=VALUE2 ...`.
    pub fn to_build_options(&self) -> String {
        let mut s = String::new();
        for (k, v) in self.iter() {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str("-D");
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s
    }
}

impl<K: Into<String>, V: Into<String>> FromIterator<(K, V)> for DefineMap {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = DefineMap::new();
        for (k, v) in iter {
            m.define(k, v);
        }
        m
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Substitutes every whole-identifier occurrence of each defined macro in
/// `source` by its value (single pass, no recursive expansion — tuning
/// parameters expand to literals).
pub fn substitute(source: &str, defines: &DefineMap) -> String {
    let mut out = String::with_capacity(source.len());
    let mut it = source.char_indices().peekable();
    while let Some(&(start, c)) = it.peek() {
        if c.is_ascii_digit() {
            // A C preprocessing number (e.g. `3X`, `0xFF`) is one token; no
            // substitution happens inside it.
            let mut end = start;
            while let Some(&(i, d)) = it.peek() {
                if is_ident_char(d) {
                    end = i + d.len_utf8();
                    it.next();
                } else {
                    break;
                }
            }
            out.push_str(&source[start..end]);
        } else if is_ident_char(c) {
            // Scan the full identifier.
            let mut end = start;
            while let Some(&(i, d)) = it.peek() {
                if is_ident_char(d) {
                    end = i + d.len_utf8();
                    it.next();
                } else {
                    break;
                }
            }
            let ident = &source[start..end];
            match defines.get(ident) {
                Some(v) => out.push_str(v),
                None => out.push_str(ident),
            }
        } else {
            out.push(c);
            it.next();
        }
    }
    out
}

/// Collects the identifiers in `source` that are *not* defined — used to
/// report missing tuning parameters as a build failure, like a real OpenCL
/// compiler would report undeclared identifiers.
pub fn undefined_identifiers<'a>(
    source: &'a str,
    required: &[&'a str],
    defines: &DefineMap,
) -> Vec<&'a str> {
    required
        .iter()
        .copied()
        .filter(|name| source.contains(name) && defines.get(name).is_none())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_word_substitution() {
        let defs = DefineMap::new().with("WPT", "4").with("LS", "64");
        let src = "for (int w=0; w<WPT; ++w) { id = WPT*gid + w; } // LS, WPTX";
        let out = substitute(src, &defs);
        assert_eq!(
            out,
            "for (int w=0; w<4; ++w) { id = 4*gid + w; } // 64, WPTX"
        );
    }

    #[test]
    fn no_substitution_inside_identifiers() {
        let defs = DefineMap::new().with("N", "100");
        assert_eq!(
            substitute("int N2 = N; fN(N);", &defs),
            "int N2 = 100; fN(100);"
        );
    }

    #[test]
    fn numbers_not_treated_as_identifiers() {
        let defs = DefineMap::new().with("X", "9");
        assert_eq!(substitute("3X y 12 X", &defs), "3X y 12 9");
        // "3X" is a malformed token in C, but the substituter must not
        // rewrite the X inside it (identifiers cannot start with a digit).
    }

    #[test]
    fn build_options_rendering() {
        let defs = DefineMap::new().with("WPT", "2").with("LS", "128");
        assert_eq!(defs.to_build_options(), "-DLS=128 -DWPT=2");
    }

    #[test]
    fn typed_getters() {
        let defs = DefineMap::new()
            .with("A", "42")
            .with("B", "1")
            .with("C", "false")
            .with("D", "junk");
        assert_eq!(defs.get_u64("A"), Some(42));
        assert_eq!(defs.get_bool("B"), Some(true));
        assert_eq!(defs.get_bool("C"), Some(false));
        assert_eq!(defs.get_u64("D"), None);
        assert_eq!(defs.get_u64("MISSING"), None);
    }

    #[test]
    fn undefined_identifier_detection() {
        let defs = DefineMap::new().with("WPT", "2");
        let src = "y[i] = a * x[WPT] + LS;";
        let missing = undefined_identifiers(src, &["WPT", "LS"], &defs);
        assert_eq!(missing, vec!["LS"]);
    }

    #[test]
    fn from_iterator() {
        let defs: DefineMap = [("K", "1"), ("M", "2")].into_iter().collect();
        assert_eq!(defs.len(), 2);
        assert_eq!(defs.get("M"), Some("2"));
    }

    #[test]
    fn unicode_passthrough() {
        let defs = DefineMap::new().with("X", "1");
        assert_eq!(substitute("/* μs */ X", &defs), "/* μs */ 1");
    }
}
