//! Platform/device discovery, mirroring the by-name device selection the
//! paper highlights as an ATF usability advantage over CLTune's numeric
//! platform/device ids (Section III, Step 2).

use crate::device::DeviceModel;
use crate::error::ClError;

/// A simulated OpenCL platform: a vendor with its devices.
#[derive(Clone, Debug)]
pub struct Platform {
    /// Platform (vendor) name.
    pub name: String,
    /// Devices installed under this platform.
    pub devices: Vec<DeviceModel>,
}

/// The platforms "installed" in the simulated system — the paper's
/// evaluation machine: an NVIDIA platform with the Tesla GPUs and an Intel
/// platform with the dual-Xeon CPU device.
pub fn installed_platforms() -> Vec<Platform> {
    vec![
        Platform {
            name: "NVIDIA CUDA".to_string(),
            devices: vec![
                DeviceModel::tesla_k20m(),
                DeviceModel::tesla_k20c(),
                DeviceModel::gtx980(),
            ],
        },
        Platform {
            name: "Intel(R) OpenCL".to_string(),
            devices: vec![DeviceModel::xeon_e5_2640v2_dual()],
        },
        Platform {
            name: "Portable Computing Language".to_string(),
            devices: vec![DeviceModel::embedded_quad_core()],
        },
    ]
}

/// Finds a device by case-insensitive substring match on platform and device
/// names — ATF's `(platform_name, device_name)` selection.
pub fn find_device(platform: &str, device: &str) -> Result<DeviceModel, ClError> {
    let plat_needle = platform.to_lowercase();
    let dev_needle = device.to_lowercase();
    for p in installed_platforms() {
        if !p.name.to_lowercase().contains(&plat_needle) {
            continue;
        }
        for d in p.devices {
            if d.name.to_lowercase().contains(&dev_needle) {
                return Ok(d);
            }
        }
    }
    Err(ClError::DeviceNotFound(format!(
        "no device matching platform `{platform}`, device `{device}`"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_gpu_by_name() {
        let d = find_device("NVIDIA", "Tesla K20c").unwrap();
        assert_eq!(d.name, "Tesla K20c");
        assert!(d.is_gpu());
    }

    #[test]
    fn finds_cpu_by_partial_name() {
        let d = find_device("intel", "xeon").unwrap();
        assert!(!d.is_gpu());
        assert_eq!(d.compute_units, 32);
    }

    #[test]
    fn unknown_device_errors() {
        assert!(matches!(
            find_device("AMD", "Fiji"),
            Err(ClError::DeviceNotFound(_))
        ));
        assert!(find_device("NVIDIA", "GTX 9000").is_err());
    }

    #[test]
    fn platform_listing() {
        let ps = installed_platforms();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].devices.len(), 3);
    }

    #[test]
    fn extended_devices_found() {
        assert!(find_device("NVIDIA", "GTX 980").unwrap().is_gpu());
        let e = find_device("Portable", "Embedded").unwrap();
        assert!(!e.is_gpu());
        assert_eq!(e.compute_units, 4);
    }
}
