//! NDRange launch configurations and their validation.
//!
//! The OpenCL specification requires the local size to evenly divide the
//! global size in every dimension (pre-2.0 semantics, which CLBlast and the
//! paper assume) and to respect the device's work-group limits. Violations
//! surface as [`ClError`]s — exactly the failures a penalty-based OpenTuner
//! setup keeps running into (paper, Section VI-B).

use crate::device::DeviceModel;
use crate::error::ClError;

/// An NDRange: 1-3 dimensional global and local sizes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Launch {
    global: Vec<u64>,
    local: Vec<u64>,
}

impl Launch {
    /// Creates a launch configuration.
    ///
    /// Dimension counts of `global` and `local` must match; full validation
    /// happens in [`Launch::validate`] at enqueue time.
    pub fn new(global: Vec<u64>, local: Vec<u64>) -> Self {
        assert_eq!(
            global.len(),
            local.len(),
            "global and local NDRange dimensionality must match"
        );
        Launch { global, local }
    }

    /// A 1-D launch.
    pub fn one_d(global: u64, local: u64) -> Self {
        Launch::new(vec![global], vec![local])
    }

    /// A 2-D launch.
    pub fn two_d(global: (u64, u64), local: (u64, u64)) -> Self {
        Launch::new(vec![global.0, global.1], vec![local.0, local.1])
    }

    /// Global sizes per dimension.
    pub fn global(&self) -> &[u64] {
        &self.global
    }

    /// Local sizes per dimension.
    pub fn local(&self) -> &[u64] {
        &self.local
    }

    /// Total number of work-items.
    pub fn global_size(&self) -> u64 {
        self.global.iter().product()
    }

    /// Work-items per work-group.
    pub fn local_size(&self) -> u64 {
        self.local.iter().product()
    }

    /// Number of work-groups (valid only after [`Launch::validate`]).
    pub fn work_groups(&self) -> u64 {
        self.global_size() / self.local_size().max(1)
    }

    /// Validates the launch against the OpenCL rules and the device limits.
    pub fn validate(&self, device: &DeviceModel) -> Result<(), ClError> {
        let dims = self.global.len();
        if dims == 0 || dims > 3 {
            return Err(ClError::InvalidWorkDimension(dims));
        }
        for (d, (&g, &l)) in self.global.iter().zip(&self.local).enumerate() {
            if g == 0 || l == 0 {
                return Err(ClError::InvalidWorkGroupSize(format!(
                    "dimension {d}: global {g}, local {l} (must be nonzero)"
                )));
            }
            if g % l != 0 {
                return Err(ClError::InvalidWorkGroupSize(format!(
                    "dimension {d}: local size {l} does not divide global size {g}"
                )));
            }
        }
        let wg = self.local_size();
        if wg > device.max_work_group_size {
            return Err(ClError::InvalidWorkGroupSize(format!(
                "work-group size {wg} exceeds device maximum {}",
                device.max_work_group_size
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> DeviceModel {
        DeviceModel::tesla_k20m()
    }

    #[test]
    fn valid_launch() {
        let l = Launch::one_d(1024, 64);
        assert!(l.validate(&gpu()).is_ok());
        assert_eq!(l.work_groups(), 16);
        assert_eq!(l.global_size(), 1024);
        assert_eq!(l.local_size(), 64);
    }

    #[test]
    fn local_must_divide_global() {
        let l = Launch::one_d(1000, 64);
        assert!(matches!(
            l.validate(&gpu()),
            Err(ClError::InvalidWorkGroupSize(_))
        ));
    }

    #[test]
    fn two_d_divisibility_per_dimension() {
        let ok = Launch::two_d((64, 128), (8, 16));
        assert!(ok.validate(&gpu()).is_ok());
        assert_eq!(ok.work_groups(), 8 * 8);
        let bad = Launch::two_d((64, 100), (8, 16));
        assert!(bad.validate(&gpu()).is_err());
    }

    #[test]
    fn work_group_size_limit() {
        let l = Launch::two_d((4096, 4096), (64, 64)); // 4096 > 1024
        assert!(matches!(
            l.validate(&gpu()),
            Err(ClError::InvalidWorkGroupSize(m)) if m.contains("maximum")
        ));
    }

    #[test]
    fn zero_sizes_rejected() {
        assert!(Launch::one_d(0, 1).validate(&gpu()).is_err());
        assert!(Launch::one_d(64, 0).validate(&gpu()).is_err());
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn mismatched_dims_panic() {
        Launch::new(vec![64, 64], vec![8]);
    }

    #[test]
    fn too_many_dimensions() {
        let l = Launch::new(vec![2, 2, 2, 2], vec![1, 1, 1, 1]);
        assert_eq!(l.validate(&gpu()), Err(ClError::InvalidWorkDimension(4)));
    }

    #[test]
    fn cpu_allows_larger_work_groups() {
        let cpu = DeviceModel::xeon_e5_2640v2_dual();
        let l = Launch::one_d(8192, 2048);
        assert!(l.validate(&cpu).is_ok());
        assert!(l.validate(&gpu()).is_err());
    }
}
