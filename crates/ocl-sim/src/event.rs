//! Profiling events, mirroring the OpenCL profiling API the pre-implemented
//! cost function uses to measure kernel runtimes
//! (`CL_PROFILING_COMMAND_START` / `CL_PROFILING_COMMAND_END`).

use crate::perf::PerfBreakdown;
use std::time::Duration;

/// A completed kernel execution with simulated timestamps (nanoseconds on
/// the device clock).
#[derive(Clone, Debug)]
pub struct ProfilingEvent {
    /// When the command was enqueued.
    pub queued_ns: f64,
    /// When the command was submitted to the device.
    pub submit_ns: f64,
    /// When the kernel started executing.
    pub start_ns: f64,
    /// When the kernel finished.
    pub end_ns: f64,
    /// The model's itemized estimate (not part of the OpenCL API; exposed
    /// for diagnostics).
    pub breakdown: PerfBreakdown,
}

impl ProfilingEvent {
    /// Kernel execution time (`END - START`), the quantity ATF's OpenCL cost
    /// function minimizes.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos((self.end_ns - self.start_ns).max(0.0) as u64)
    }

    /// Execution time in nanoseconds as `f64` (no rounding).
    pub fn duration_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }

    /// Simulated energy of the kernel execution in microjoules
    /// (`power x time` from the performance model) — the measurement the
    /// paper's multi-objective example minimizes as its secondary objective.
    pub fn energy_uj(&self) -> f64 {
        self.breakdown.power_watts * self.duration_ns() / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::PerfBreakdown;

    fn breakdown() -> PerfBreakdown {
        PerfBreakdown {
            compute_ns: 1.0,
            memory_ns: 1.0,
            local_ns: 0.0,
            overhead_ns: 0.0,
            occupancy: 1.0,
            parallel_fraction: 1.0,
            wave_quantization: 1.0,
            total_ns: 2.0,
            power_watts: 100.0,
        }
    }

    #[test]
    fn duration_from_timestamps() {
        let e = ProfilingEvent {
            queued_ns: 0.0,
            submit_ns: 10.0,
            start_ns: 100.0,
            end_ns: 1600.0,
            breakdown: breakdown(),
        };
        assert_eq!(e.duration(), Duration::from_nanos(1500));
        assert_eq!(e.duration_ns(), 1500.0);
    }

    #[test]
    fn energy_is_power_times_time() {
        let e = ProfilingEvent {
            queued_ns: 0.0,
            submit_ns: 0.0,
            start_ns: 0.0,
            end_ns: 2000.0, // 2 us at 100 W = 0.2 mJ = 200 uJ
            breakdown: breakdown(),
        };
        assert!((e.energy_uj() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn timestamps_are_ordered() {
        let e = ProfilingEvent {
            queued_ns: 0.0,
            submit_ns: 1.0,
            start_ns: 2.0,
            end_ns: 3.0,
            breakdown: breakdown(),
        };
        assert!(e.queued_ns <= e.submit_ns);
        assert!(e.submit_ns <= e.start_ns);
        assert!(e.start_ns <= e.end_ns);
    }
}
