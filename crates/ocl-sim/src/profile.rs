//! Work profiles: what a kernel execution *does*, independent of the device.
//!
//! A kernel (e.g. CLBlast's XgemmDirect in the `clblast` crate) analyses its
//! launch + macro parameters and fills in a [`KernelProfile`]; the device
//! model ([`crate::perf`]) then translates the profile into a simulated
//! runtime. This split keeps the simulator generic: new kernels only
//! describe their work, not device behaviour.

/// Device-independent description of one kernel execution.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelProfile {
    /// Useful floating-point operations (the algorithmic work).
    pub flops: f64,
    /// Bookkeeping instructions: loop counters, branches, index arithmetic.
    /// Loop unrolling (KWID) and work-per-thread chunking reduce this.
    pub overhead_instructions: f64,
    /// Bytes read from global memory (including re-reads when data does not
    /// fit in cache / local memory).
    pub global_bytes_read: f64,
    /// Bytes written to global memory.
    pub global_bytes_written: f64,
    /// Bytes moved through local (shared) memory.
    pub local_bytes_accessed: f64,
    /// Local-memory allocation per work-group, bytes (occupancy limiter;
    /// exceeding the device's local memory fails the launch).
    pub local_mem_per_wg: u64,
    /// Per-thread vector width the kernel was compiled with (1, 2, 4, 8).
    pub vector_width: u32,
    /// Fraction (0, 1] of each memory transaction that carries useful data —
    /// 1.0 for perfectly coalesced unit-stride access.
    pub coalescing_efficiency: f64,
    /// Multiplier ≥ 1 on local-memory access cost from bank conflicts
    /// (1.0 when padded away via PADA/PADB).
    pub bank_conflict_factor: f64,
    /// Fraction (0, 1] of launched work that contributes to the result
    /// (< 1 when tiles overhang the matrix edges and threads idle).
    pub useful_fraction: f64,
}

impl Default for KernelProfile {
    fn default() -> Self {
        KernelProfile {
            flops: 0.0,
            overhead_instructions: 0.0,
            global_bytes_read: 0.0,
            global_bytes_written: 0.0,
            local_bytes_accessed: 0.0,
            local_mem_per_wg: 0,
            vector_width: 1,
            coalescing_efficiency: 1.0,
            bank_conflict_factor: 1.0,
            useful_fraction: 1.0,
        }
    }
}

impl KernelProfile {
    /// Total global-memory traffic, bytes.
    pub fn global_bytes(&self) -> f64 {
        self.global_bytes_read + self.global_bytes_written
    }

    /// Sanity-checks invariant ranges (used by debug assertions and tests).
    pub fn is_sane(&self) -> bool {
        self.flops >= 0.0
            && self.overhead_instructions >= 0.0
            && self.global_bytes_read >= 0.0
            && self.global_bytes_written >= 0.0
            && self.local_bytes_accessed >= 0.0
            && self.vector_width >= 1
            && self.coalescing_efficiency > 0.0
            && self.coalescing_efficiency <= 1.0
            && self.bank_conflict_factor >= 1.0
            && self.useful_fraction > 0.0
            && self.useful_fraction <= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        assert!(KernelProfile::default().is_sane());
    }

    #[test]
    fn totals() {
        let p = KernelProfile {
            global_bytes_read: 100.0,
            global_bytes_written: 50.0,
            ..Default::default()
        };
        assert_eq!(p.global_bytes(), 150.0);
    }

    #[test]
    fn sanity_bounds() {
        let mut p = KernelProfile {
            coalescing_efficiency: 0.0,
            ..Default::default()
        };
        assert!(!p.is_sane());
        p.coalescing_efficiency = 0.5;
        p.bank_conflict_factor = 0.5;
        assert!(!p.is_sane());
        p.bank_conflict_factor = 2.0;
        p.useful_fraction = 1.5;
        assert!(!p.is_sane());
    }
}
