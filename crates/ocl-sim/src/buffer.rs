//! Simulated device buffers and kernel arguments.

use std::cell::{Ref, RefCell, RefMut};
use std::fmt;

/// Handle to a buffer inside a [`crate::context::Context`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) usize);

/// The element storage of a buffer.
#[derive(Clone, Debug, PartialEq)]
pub enum BufferData {
    /// 32-bit floats (the element type of the paper's kernels).
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 32-bit signed integers.
    I32(Vec<i32>),
    /// 32-bit unsigned integers.
    U32(Vec<u32>),
}

impl BufferData {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            BufferData::F32(v) => v.len(),
            BufferData::F64(v) => v.len(),
            BufferData::I32(v) => v.len(),
            BufferData::U32(v) => v.len(),
        }
    }

    /// `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            BufferData::F32(v) => v.len() * 4,
            BufferData::F64(v) => v.len() * 8,
            BufferData::I32(v) => v.len() * 4,
            BufferData::U32(v) => v.len() * 4,
        }
    }
}

/// A device buffer. Interior mutability lets a kernel read one buffer while
/// writing another (the aliasing discipline of distinct OpenCL buffers),
/// with dynamic borrow checking catching read/write overlap bugs in kernels.
pub struct Buffer {
    data: RefCell<BufferData>,
}

impl Buffer {
    /// Wraps element data as a device buffer.
    pub fn new(data: BufferData) -> Self {
        Buffer {
            data: RefCell::new(data),
        }
    }

    /// Immutable view of the elements.
    pub fn borrow(&self) -> Ref<'_, BufferData> {
        self.data.borrow()
    }

    /// Mutable view of the elements.
    pub fn borrow_mut(&self) -> RefMut<'_, BufferData> {
        self.data.borrow_mut()
    }

    /// Immutable `f32` view; panics if the buffer is not `F32`.
    pub fn borrow_f32(&self) -> Ref<'_, Vec<f32>> {
        Ref::map(self.data.borrow(), |d| match d {
            BufferData::F32(v) => v,
            other => panic!(
                "buffer is not f32 (holds {} elements of another type)",
                other.len()
            ),
        })
    }

    /// Mutable `f32` view; panics if the buffer is not `F32`.
    pub fn borrow_f32_mut(&self) -> RefMut<'_, Vec<f32>> {
        RefMut::map(self.data.borrow_mut(), |d| match d {
            BufferData::F32(v) => v,
            other => panic!(
                "buffer is not f32 (holds {} elements of another type)",
                other.len()
            ),
        })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.borrow().len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.borrow().size_bytes()
    }
}

impl fmt::Debug for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Buffer({} bytes)", self.size_bytes())
    }
}

/// A scalar kernel argument.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scalar {
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
    /// 32-bit signed integer.
    I32(i32),
    /// 32-bit unsigned integer (OpenCL `uint`; also used for `size_t`-ish
    /// kernel size arguments in CLBlast kernels).
    U32(u32),
    /// 64-bit unsigned integer.
    U64(u64),
}

impl Scalar {
    /// The value as `f32` (lossy for wide integers).
    pub fn as_f32(&self) -> f32 {
        match *self {
            Scalar::F32(v) => v,
            Scalar::F64(v) => v as f32,
            Scalar::I32(v) => v as f32,
            Scalar::U32(v) => v as f32,
            Scalar::U64(v) => v as f32,
        }
    }

    /// The value as `u64`, if non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Scalar::F32(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            Scalar::F64(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            Scalar::I32(v) if v >= 0 => Some(v as u64),
            Scalar::U32(v) => Some(v as u64),
            Scalar::U64(v) => Some(v),
            _ => None,
        }
    }
}

macro_rules! impl_into_scalar {
    ($($t:ty => $v:ident),*) => {$(
        impl From<$t> for Scalar {
            fn from(x: $t) -> Scalar { Scalar::$v(x) }
        }
    )*};
}
impl_into_scalar!(f32 => F32, f64 => F64, i32 => I32, u32 => U32, u64 => U64);

/// A kernel argument: a scalar or a buffer handle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KernelArg {
    /// Passed by value.
    Scalar(Scalar),
    /// A device buffer.
    Buffer(BufferId),
}

impl From<Scalar> for KernelArg {
    fn from(s: Scalar) -> Self {
        KernelArg::Scalar(s)
    }
}

impl From<BufferId> for KernelArg {
    fn from(b: BufferId) -> Self {
        KernelArg::Buffer(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(BufferData::F32(vec![0.0; 10]).size_bytes(), 40);
        assert_eq!(BufferData::F64(vec![0.0; 10]).size_bytes(), 80);
        assert_eq!(BufferData::I32(vec![0; 3]).len(), 3);
        assert!(BufferData::U32(vec![]).is_empty());
    }

    #[test]
    fn f32_views() {
        let b = Buffer::new(BufferData::F32(vec![1.0, 2.0]));
        assert_eq!(*b.borrow_f32(), vec![1.0, 2.0]);
        b.borrow_f32_mut()[0] = 9.0;
        assert_eq!(b.borrow_f32()[0], 9.0);
    }

    #[test]
    #[should_panic(expected = "not f32")]
    fn wrong_type_view_panics() {
        let b = Buffer::new(BufferData::I32(vec![1]));
        let _ = b.borrow_f32();
    }

    #[test]
    fn concurrent_reads_allowed() {
        let b = Buffer::new(BufferData::F32(vec![1.0]));
        let r1 = b.borrow_f32();
        let r2 = b.borrow_f32();
        assert_eq!(r1[0], r2[0]);
    }

    #[test]
    #[should_panic]
    fn read_write_overlap_detected() {
        let b = Buffer::new(BufferData::F32(vec![1.0]));
        let _r = b.borrow_f32();
        let _w = b.borrow_f32_mut(); // dynamic borrow violation
    }

    #[test]
    fn scalar_conversions() {
        assert_eq!(Scalar::U32(7).as_u64(), Some(7));
        assert_eq!(Scalar::I32(-1).as_u64(), None);
        assert_eq!(Scalar::F32(2.0).as_u64(), Some(2));
        assert_eq!(Scalar::F32(2.5).as_u64(), None);
        assert_eq!(Scalar::F64(1.5).as_f32(), 1.5);
    }

    #[test]
    fn kernel_arg_from() {
        let a: KernelArg = Scalar::F32(1.0).into();
        assert!(matches!(a, KernelArg::Scalar(_)));
        let b: KernelArg = BufferId(3).into();
        assert_eq!(b, KernelArg::Buffer(BufferId(3)));
    }
}
