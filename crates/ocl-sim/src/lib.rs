//! # ocl-sim — a simulated OpenCL platform for auto-tuner evaluation
//!
//! The ATF paper's evaluation (Section VI) runs OpenCL kernels on a Tesla
//! K20m GPU and a dual-socket Xeon CPU. This crate substitutes that hardware
//! with a deterministic simulator so that the reproduction runs anywhere:
//!
//! * [`device`] — architectural device models (Tesla K20m/K20c,
//!   dual Xeon E5-2640 v2) with the parameters that matter for tuning;
//! * [`platform`] — by-name platform/device discovery;
//! * [`preprocessor`] — the macro substitution ATF's OpenCL cost function
//!   uses to inject tuning-parameter values into kernel sources;
//! * [`launch`] — NDRange validation (local-divides-global, device limits);
//! * [`kernel`] — the [`kernel::SimKernel`] interface: kernels report what
//!   work they do ([`profile::KernelProfile`]) and optionally compute real
//!   results into buffers for error checking;
//! * [`perf`] — the analytic roofline-style performance model;
//! * [`context`] — context + in-order queue with simulated profiling events
//!   and deterministic measurement noise;
//! * [`event`] — OpenCL-profiling-API-style events.
//!
//! The tuner only ever observes *costs*; the simulator's job is to map
//! configurations to runtimes with the same qualitative structure as the
//! paper's hardware (see DESIGN.md for the substitution argument).

pub mod buffer;
pub mod context;
pub mod device;
pub mod error;
pub mod event;
pub mod kernel;
pub mod launch;
pub mod perf;
pub mod platform;
pub mod preprocessor;
pub mod profile;

pub use buffer::{Buffer, BufferData, BufferId, KernelArg, Scalar};
pub use context::Context;
pub use device::{DeviceModel, DeviceType};
pub use error::ClError;
pub use event::ProfilingEvent;
pub use kernel::{ExecMode, KernelCall, SimKernel};
pub use launch::Launch;
pub use perf::PerfBreakdown;
pub use platform::{find_device, installed_platforms, Platform};
pub use preprocessor::DefineMap;
pub use profile::KernelProfile;
