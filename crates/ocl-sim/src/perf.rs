//! The analytic performance model: device × work profile × launch → time.
//!
//! A roofline-style model with the first-order effects that drive the
//! paper's tuning landscapes:
//!
//! * **compute vs memory bound** — `max(compute, memory)` over totals from
//!   the [`KernelProfile`];
//! * **vectorization** — on CPUs, per-thread vector width must fill the SIMD
//!   lanes; on GPUs, wavefronts fill lanes and vector width only adds ILP;
//! * **coalescing** — scaled by the device's `coalescing_sensitivity`
//!   (GPU-critical, CPU-mild);
//! * **occupancy** — resident work-groups per compute unit limited by local
//!   memory and thread slots; low occupancy hurts latency hiding on GPUs;
//! * **parallel utilization & wave quantization** — fewer work-groups than
//!   compute units leave hardware idle; `ceil`-shaped wave effects create
//!   the characteristic tuning cliffs;
//! * **scheduling overhead** — per-launch and per-work-group costs
//!   (the per-work-group term is what punishes tiny work-groups on CPUs);
//! * **padding waste** — time inflated by `1 / useful_fraction`.

use crate::device::DeviceModel;
use crate::error::ClError;
use crate::launch::Launch;
use crate::profile::KernelProfile;

/// Itemized timing estimate, exposed so tests (and curious users) can check
/// which effect dominates a configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfBreakdown {
    /// Arithmetic + instruction-overhead time, ns.
    pub compute_ns: f64,
    /// Global-memory time, ns.
    pub memory_ns: f64,
    /// Local-memory time, ns.
    pub local_ns: f64,
    /// Launch + work-group scheduling overhead, ns.
    pub overhead_ns: f64,
    /// Resident-thread occupancy per compute unit, 0..1.
    pub occupancy: f64,
    /// Fraction of compute units kept busy, 0..1.
    pub parallel_fraction: f64,
    /// Wave-quantization multiplier ≥ 1.
    pub wave_quantization: f64,
    /// Final simulated kernel time, ns.
    pub total_ns: f64,
    /// Estimated average power draw over the kernel, watts (idle + dynamic
    /// power scaled by how much of the chip the launch keeps busy).
    pub power_watts: f64,
}

/// Estimates the runtime of one kernel execution.
///
/// Returns `Err(OutOfResources)` when the profile demands more local memory
/// per work-group than the device offers (a real OpenCL launch failure that
/// tuners must treat as an invalid configuration).
pub fn estimate(
    device: &DeviceModel,
    profile: &KernelProfile,
    launch: &Launch,
) -> Result<PerfBreakdown, ClError> {
    debug_assert!(profile.is_sane(), "insane kernel profile: {profile:?}");
    if profile.local_mem_per_wg > device.local_mem_bytes {
        return Err(ClError::OutOfResources(format!(
            "kernel needs {} B local memory per work-group, device has {} B",
            profile.local_mem_per_wg, device.local_mem_bytes
        )));
    }

    let wgs = launch.work_groups().max(1) as f64;
    let local_size = launch.local_size().max(1);
    // Hardware pads each work-group to a multiple of the wavefront.
    let wavefront = device.wavefront.max(1) as u64;
    let padded_wg = local_size.div_ceil(wavefront) * wavefront;
    let warp_fill = local_size as f64 / padded_wg as f64;

    // ---- Occupancy: how many work-groups fit on one compute unit ----
    let by_threads = (device.max_threads_per_cu / padded_wg).max(1);
    let by_local_mem = device
        .local_mem_bytes
        .checked_div(profile.local_mem_per_wg)
        .map_or(u64::MAX, |n| n.max(1));
    let wgs_per_cu_cap = by_threads.min(by_local_mem).min(16);
    // A compute unit can only be as occupied as the launch provides
    // work-groups for it.
    let wgs_per_cu = wgs_per_cu_cap.min((wgs / device.compute_units as f64).ceil().max(1.0) as u64);
    let resident_threads = (wgs_per_cu * padded_wg).min(device.max_threads_per_cu);
    let occupancy = resident_threads as f64 / device.max_threads_per_cu as f64;

    // Latency hiding: GPUs need resident warps to cover both arithmetic and
    // memory latency — this throttles compute *and* achievable bandwidth;
    // ~50% occupancy typically saturates. CPUs (wavefront 1) do not need it.
    let latency_eff = if device.wavefront > 1 {
        (0.1 + 0.9 * (occupancy / 0.5)).min(1.0)
    } else {
        1.0
    };

    // ---- Vectorization efficiency ----
    let vw = profile.vector_width.max(1) as f64;
    let simd = device.simd_width.max(1) as f64;
    let vector_eff = if device.wavefront > 1 {
        // GPU: warps fill the SIMD unit; wider per-thread vectors add ILP.
        (1.0 - 0.25 / vw) * warp_fill
    } else {
        // CPU: explicit per-thread vectors map onto AVX lanes; scalar code
        // relies on imperfect auto-vectorization (≈ 30% of peak).
        (vw.min(simd) / simd).max(0.3)
    };

    // ---- Parallel utilization across compute units ----
    let cu = device.compute_units as f64;
    let parallel_fraction = (wgs / cu).min(1.0);
    let wgs_per_round = cu * wgs_per_cu_cap as f64;
    let ideal_waves = wgs / wgs_per_round;
    // A single (possibly partial) wave has no quantization penalty — idle
    // capacity is already charged through `parallel_fraction`.
    let wave_quantization = if ideal_waves > 1.0 {
        ideal_waves.ceil() / ideal_waves
    } else {
        1.0
    };

    // ---- Roofline terms ----
    // Bookkeeping instructions issue without FMA/dual-issue benefits: they
    // cost ~4 FLOP-slots each.
    let instruction_work = profile.flops + 4.0 * profile.overhead_instructions;
    let compute_rate = device.flops_per_ns() * vector_eff * latency_eff; // FLOP/ns
    let compute_ns = instruction_work / compute_rate;

    let coalesce_eff = 1.0 - device.coalescing_sensitivity * (1.0 - profile.coalescing_efficiency);
    let memory_ns = profile.global_bytes() / (device.bytes_per_ns() * coalesce_eff * latency_eff);

    let local_ns =
        profile.local_bytes_accessed * device.local_mem_cost_factor * profile.bank_conflict_factor
            / (device.bytes_per_ns() * latency_eff);

    // ---- Combine ----
    let busy = compute_ns.max(memory_ns + local_ns);
    let busy = busy / parallel_fraction.max(1.0 / cu); // idle CUs stretch time
    let busy = busy * wave_quantization / profile.useful_fraction;

    // Work-group dispatch parallelizes across compute units.
    let overhead_ns = device.launch_overhead_ns + wgs * device.workgroup_overhead_ns / cu.min(wgs);

    let total_ns = busy + overhead_ns;
    // Energy model: dynamic power scales with the utilized fraction of the
    // chip (compute units busy x resident occupancy), floored for the
    // always-on fabric.
    let activity = (parallel_fraction * (0.3 + 0.7 * occupancy)).clamp(0.05, 1.0);
    let power_watts = device.idle_watts + device.peak_dynamic_watts * activity;
    Ok(PerfBreakdown {
        compute_ns,
        memory_ns,
        local_ns,
        overhead_ns,
        occupancy,
        parallel_fraction,
        wave_quantization,
        total_ns,
        power_watts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> DeviceModel {
        DeviceModel::tesla_k20m()
    }
    fn cpu() -> DeviceModel {
        DeviceModel::xeon_e5_2640v2_dual()
    }

    fn flops_profile(flops: f64) -> KernelProfile {
        KernelProfile {
            flops,
            ..Default::default()
        }
    }

    #[test]
    fn more_work_takes_longer() {
        let launch = Launch::one_d(1 << 16, 256);
        let t1 = estimate(&gpu(), &flops_profile(1e9), &launch).unwrap();
        let t2 = estimate(&gpu(), &flops_profile(2e9), &launch).unwrap();
        assert!(t2.total_ns > t1.total_ns);
    }

    #[test]
    fn memory_bound_kernel_limited_by_bandwidth() {
        let p = KernelProfile {
            flops: 1.0,
            global_bytes_read: 208e9, // 1 second at peak bandwidth
            ..Default::default()
        };
        let b = estimate(&gpu(), &p, &Launch::one_d(1 << 20, 256)).unwrap();
        assert!(b.memory_ns > b.compute_ns);
        assert!(b.total_ns >= 1e9); // ≥ 1 s
    }

    #[test]
    fn poor_coalescing_hurts_gpu_more_than_cpu() {
        let good = KernelProfile {
            global_bytes_read: 1e9,
            coalescing_efficiency: 1.0,
            ..Default::default()
        };
        let bad = KernelProfile {
            coalescing_efficiency: 0.25,
            ..good.clone()
        };
        let launch = Launch::one_d(1 << 20, 256);
        let gpu_ratio = estimate(&gpu(), &bad, &launch).unwrap().total_ns
            / estimate(&gpu(), &good, &launch).unwrap().total_ns;
        let cpu_ratio = estimate(&cpu(), &bad, &launch).unwrap().total_ns
            / estimate(&cpu(), &good, &launch).unwrap().total_ns;
        assert!(gpu_ratio > cpu_ratio, "gpu {gpu_ratio} vs cpu {cpu_ratio}");
        assert!(gpu_ratio > 2.0);
    }

    #[test]
    fn vectorization_critical_on_cpu() {
        let scalar = KernelProfile {
            flops: 1e9,
            vector_width: 1,
            ..Default::default()
        };
        let vec8 = KernelProfile {
            vector_width: 8,
            ..scalar.clone()
        };
        let launch = Launch::one_d(1 << 16, 64);
        let cpu_speedup = estimate(&cpu(), &scalar, &launch).unwrap().compute_ns
            / estimate(&cpu(), &vec8, &launch).unwrap().compute_ns;
        let gpu_speedup = estimate(&gpu(), &scalar, &launch).unwrap().compute_ns
            / estimate(&gpu(), &vec8, &launch).unwrap().compute_ns;
        assert!(cpu_speedup > 2.0, "cpu vectorization speedup {cpu_speedup}");
        assert!(
            gpu_speedup < 1.5,
            "gpu should be mildly sensitive: {gpu_speedup}"
        );
    }

    #[test]
    fn bank_conflicts_and_padding() {
        let base = KernelProfile {
            local_bytes_accessed: 1e9,
            ..Default::default()
        };
        let conflicted = KernelProfile {
            bank_conflict_factor: 4.0,
            ..base.clone()
        };
        let launch = Launch::one_d(1 << 18, 256);
        let t_base = estimate(&gpu(), &base, &launch).unwrap();
        let t_bad = estimate(&gpu(), &conflicted, &launch).unwrap();
        assert!(t_bad.local_ns > 3.0 * t_base.local_ns);
    }

    #[test]
    fn local_memory_over_capacity_fails() {
        let p = KernelProfile {
            local_mem_per_wg: 49 * 1024,
            ..Default::default()
        };
        assert!(matches!(
            estimate(&gpu(), &p, &Launch::one_d(256, 256)),
            Err(ClError::OutOfResources(_))
        ));
        // The CPU device has 32 KiB — fails there too.
        assert!(estimate(&cpu(), &p, &Launch::one_d(256, 256)).is_err());
    }

    #[test]
    fn local_memory_limits_occupancy() {
        let light = KernelProfile {
            flops: 1e9,
            local_mem_per_wg: 1024,
            ..Default::default()
        };
        let heavy = KernelProfile {
            local_mem_per_wg: 40 * 1024, // one work-group per SMX
            ..light.clone()
        };
        let launch = Launch::one_d(1 << 16, 128);
        let o_light = estimate(&gpu(), &light, &launch).unwrap().occupancy;
        let o_heavy = estimate(&gpu(), &heavy, &launch).unwrap().occupancy;
        assert!(o_heavy < o_light);
    }

    #[test]
    fn too_few_workgroups_underutilize() {
        let p = flops_profile(1e8);
        // 1 work-group vs 64 work-groups for identical total work.
        let t1 = estimate(&gpu(), &p, &Launch::one_d(256, 256)).unwrap();
        let t64 = estimate(&gpu(), &p, &Launch::one_d(16384, 256)).unwrap();
        assert!(t1.parallel_fraction < t64.parallel_fraction);
        assert!(t1.total_ns > t64.total_ns);
    }

    #[test]
    fn cpu_punishes_tiny_workgroups_via_dispatch_overhead() {
        let p = flops_profile(1e6);
        let many_small = Launch::one_d(1 << 16, 1); // 65536 work-groups
        let few_large = Launch::one_d(1 << 16, 1024); // 64 work-groups
        let t_small = estimate(&cpu(), &p, &many_small).unwrap();
        let t_large = estimate(&cpu(), &p, &few_large).unwrap();
        assert!(
            t_small.overhead_ns > 10.0 * t_large.overhead_ns,
            "{} vs {}",
            t_small.overhead_ns,
            t_large.overhead_ns
        );
    }

    #[test]
    fn padding_waste_inflates_time() {
        let exact = KernelProfile {
            flops: 1e9,
            useful_fraction: 1.0,
            ..Default::default()
        };
        let wasteful = KernelProfile {
            useful_fraction: 0.5,
            ..exact.clone()
        };
        let launch = Launch::one_d(1 << 16, 256);
        let t_e = estimate(&gpu(), &exact, &launch).unwrap().total_ns;
        let t_w = estimate(&gpu(), &wasteful, &launch).unwrap().total_ns;
        assert!(t_w > 1.8 * t_e);
    }

    #[test]
    fn warp_padding_penalizes_odd_work_groups() {
        let p = flops_profile(1e9);
        // Local size 33 pads to 64 on a warp-32 device: half the lanes idle.
        let t33 = estimate(&gpu(), &p, &Launch::one_d(33 * 1024, 33)).unwrap();
        let t64 = estimate(&gpu(), &p, &Launch::one_d(64 * 1024, 64)).unwrap();
        assert!(t33.compute_ns > 1.5 * t64.compute_ns);
    }

    #[test]
    fn breakdown_components_sum_plausibly() {
        let p = KernelProfile {
            flops: 1e9,
            global_bytes_read: 1e8,
            ..Default::default()
        };
        let b = estimate(&gpu(), &p, &Launch::one_d(1 << 18, 256)).unwrap();
        assert!(b.total_ns >= b.overhead_ns);
        assert!(b.total_ns >= b.compute_ns.max(b.memory_ns));
        assert!(b.wave_quantization >= 1.0);
        assert!(b.occupancy > 0.0 && b.occupancy <= 1.0);
    }
}
