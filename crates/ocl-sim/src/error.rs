//! Error codes of the simulated OpenCL runtime, mirroring the OpenCL error
//! surface relevant to auto-tuning (launch validation and program builds).

use std::fmt;

/// Errors raised by the simulated OpenCL runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClError {
    /// `CL_INVALID_WORK_GROUP_SIZE`: the local size does not divide the
    /// global size, exceeds the device maximum, or is zero.
    InvalidWorkGroupSize(String),
    /// `CL_INVALID_WORK_DIMENSION`: 0 or more than 3 NDRange dimensions.
    InvalidWorkDimension(usize),
    /// `CL_OUT_OF_RESOURCES`: the kernel needs more local memory or
    /// registers than the device provides.
    OutOfResources(String),
    /// `CL_BUILD_PROGRAM_FAILURE`: preprocessing/compiling the kernel source
    /// failed (e.g. a tuning parameter left undefined).
    BuildProgramFailure(String),
    /// `CL_INVALID_KERNEL_ARGS`: wrong number or type of kernel arguments.
    InvalidKernelArgs(String),
    /// `CL_INVALID_BUFFER_SIZE` or out-of-bounds access detected by the
    /// functional executor.
    InvalidBuffer(String),
    /// `CL_DEVICE_NOT_FOUND`: no device matches the requested platform /
    /// device name.
    DeviceNotFound(String),
    /// The kernel's functional execution produced an incorrect result
    /// (error-checking mode).
    VerificationFailed(String),
}

impl fmt::Display for ClError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClError::InvalidWorkGroupSize(m) => write!(f, "CL_INVALID_WORK_GROUP_SIZE: {m}"),
            ClError::InvalidWorkDimension(d) => {
                write!(f, "CL_INVALID_WORK_DIMENSION: {d} dimensions")
            }
            ClError::OutOfResources(m) => write!(f, "CL_OUT_OF_RESOURCES: {m}"),
            ClError::BuildProgramFailure(m) => write!(f, "CL_BUILD_PROGRAM_FAILURE: {m}"),
            ClError::InvalidKernelArgs(m) => write!(f, "CL_INVALID_KERNEL_ARGS: {m}"),
            ClError::InvalidBuffer(m) => write!(f, "CL_INVALID_BUFFER: {m}"),
            ClError::DeviceNotFound(m) => write!(f, "CL_DEVICE_NOT_FOUND: {m}"),
            ClError::VerificationFailed(m) => write!(f, "verification failed: {m}"),
        }
    }
}

impl std::error::Error for ClError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(ClError::InvalidWorkGroupSize("5 % 2".into())
            .to_string()
            .contains("CL_INVALID_WORK_GROUP_SIZE"));
        assert!(ClError::DeviceNotFound("Tesla".into())
            .to_string()
            .contains("Tesla"));
    }
}
