//! The kernel interface of the simulator.
//!
//! A [`SimKernel`] bundles an OpenCL-style source (used by the preprocessor,
//! for fidelity with the paper's textual parameter substitution), the set of
//! tuning-parameter macros it requires, and an `execute` implementation that
//! (a) optionally computes the functional result into the argument buffers
//! and (b) returns the [`KernelProfile`] describing the work performed.

use crate::buffer::{Buffer, KernelArg, Scalar};
use crate::device::DeviceModel;
use crate::error::ClError;
use crate::launch::Launch;
use crate::preprocessor::DefineMap;
use crate::profile::KernelProfile;

/// Whether a kernel execution computes real results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Only produce the work profile (auto-tuning mode: "the computed result
    /// is not needed", paper Section II Step 2).
    ModelOnly,
    /// Also execute the kernel functionally on the buffers (error-checking
    /// mode and correctness tests).
    Functional,
}

/// All the information available to one kernel execution.
pub struct KernelCall<'a> {
    /// The device the kernel runs on.
    pub device: &'a DeviceModel,
    /// The NDRange (already validated).
    pub launch: &'a Launch,
    /// Tuning-parameter macro definitions.
    pub defines: &'a DefineMap,
    /// Kernel arguments in declaration order.
    pub args: &'a [KernelArg],
    /// Execution mode.
    pub mode: ExecMode,
    pub(crate) buffers: &'a [Buffer],
}

impl<'a> KernelCall<'a> {
    /// The `i`-th argument as a scalar.
    pub fn scalar(&self, i: usize) -> Result<Scalar, ClError> {
        match self.args.get(i) {
            Some(KernelArg::Scalar(s)) => Ok(*s),
            Some(KernelArg::Buffer(_)) => Err(ClError::InvalidKernelArgs(format!(
                "argument {i} is a buffer, expected a scalar"
            ))),
            None => Err(ClError::InvalidKernelArgs(format!("missing argument {i}"))),
        }
    }

    /// The `i`-th argument as a buffer.
    pub fn buffer(&self, i: usize) -> Result<&'a Buffer, ClError> {
        match self.args.get(i) {
            Some(KernelArg::Buffer(id)) => self
                .buffers
                .get(id.0)
                .ok_or_else(|| ClError::InvalidBuffer(format!("dangling buffer handle {}", id.0))),
            Some(KernelArg::Scalar(_)) => Err(ClError::InvalidKernelArgs(format!(
                "argument {i} is a scalar, expected a buffer"
            ))),
            None => Err(ClError::InvalidKernelArgs(format!("missing argument {i}"))),
        }
    }

    /// A required macro definition parsed as `u64`.
    pub fn define_u64(&self, name: &str) -> Result<u64, ClError> {
        self.defines.get_u64(name).ok_or_else(|| {
            ClError::BuildProgramFailure(format!("macro `{name}` undefined or not an integer"))
        })
    }

    /// A required macro definition parsed as bool.
    pub fn define_bool(&self, name: &str) -> Result<bool, ClError> {
        self.defines.get_bool(name).ok_or_else(|| {
            ClError::BuildProgramFailure(format!("macro `{name}` undefined or not a boolean"))
        })
    }
}

/// A kernel the simulator can launch.
pub trait SimKernel: Send + Sync {
    /// Kernel (function) name.
    fn name(&self) -> &str;

    /// OpenCL-style source text, with tuning parameters as macro
    /// identifiers (substituted by the preprocessor at build time).
    fn source(&self) -> &str;

    /// Macro names that must be defined for the kernel to build.
    fn required_defines(&self) -> &[&str];

    /// Validates parameters, optionally computes the result into the
    /// argument buffers (per [`KernelCall::mode`]), and returns the work
    /// profile for the performance model.
    fn execute(&self, call: &KernelCall<'_>) -> Result<KernelProfile, ClError>;
}

#[cfg(test)]
pub(crate) mod test_kernels {
    use super::*;

    /// A trivial kernel: `out[i] = in[i] * F` with macro `F`, for exercising
    /// the context/queue plumbing.
    pub struct ScaleKernel;

    impl SimKernel for ScaleKernel {
        fn name(&self) -> &str {
            "scale"
        }

        fn source(&self) -> &str {
            "__kernel void scale(__global const float* in, __global float* out)\n\
             { const int i = get_global_id(0); out[i] = in[i] * F; }\n"
        }

        fn required_defines(&self) -> &[&str] {
            &["F"]
        }

        fn execute(&self, call: &KernelCall<'_>) -> Result<KernelProfile, ClError> {
            let f = call.define_u64("F")? as f32;
            let n = call.launch.global_size() as usize;
            let input = call.buffer(0)?;
            let output = call.buffer(1)?;
            if input.len() < n || output.len() < n {
                return Err(ClError::InvalidBuffer(format!(
                    "buffers too small for {n} work-items"
                )));
            }
            if call.mode == ExecMode::Functional {
                let inp = input.borrow_f32();
                let mut out = output.borrow_f32_mut();
                for i in 0..n {
                    out[i] = inp[i] * f;
                }
            }
            Ok(KernelProfile {
                flops: n as f64,
                global_bytes_read: 4.0 * n as f64,
                global_bytes_written: 4.0 * n as f64,
                ..Default::default()
            })
        }
    }
}
