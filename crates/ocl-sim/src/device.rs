//! Simulated OpenCL device models.
//!
//! A [`DeviceModel`] holds the architectural parameters that the analytic
//! performance model ([`crate::perf`]) combines with a kernel's
//! [`crate::profile::KernelProfile`] to produce a simulated runtime. Two
//! presets mirror the paper's evaluation hardware (Section VI):
//! a Tesla K20m-class GPU and a dual-socket Xeon E5-2640 v2 CPU exposed as a
//! single 32-compute-unit OpenCL device.

use std::fmt;

/// CPU vs GPU — drives which performance effects apply (coalescing and
/// local-memory banking are GPU effects; per-work-group scheduling overhead
/// dominates on CPUs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// A multi-core CPU exposed as an OpenCL device.
    Cpu,
    /// A discrete many-core GPU.
    Gpu,
}

/// Architectural parameters of a simulated device.
#[derive(Clone, Debug)]
pub struct DeviceModel {
    /// Marketing name, matched by substring in device selection.
    pub name: String,
    /// Vendor / platform name (e.g. "NVIDIA", "Intel").
    pub vendor: String,
    /// CPU or GPU.
    pub device_type: DeviceType,
    /// Number of compute units (SMX units on the GPU, logical cores on the
    /// CPU).
    pub compute_units: u32,
    /// Native SIMD width in 32-bit lanes (warp-level vector units on GPU,
    /// AVX lanes on CPU). Kernel vector widths beyond this waste lanes.
    pub simd_width: u32,
    /// Hardware scheduling granularity (warp/wavefront size; 1 on CPUs).
    /// Work-groups are padded to a multiple of this many work-items.
    pub wavefront: u32,
    /// Maximum work-items per work-group.
    pub max_work_group_size: u64,
    /// Maximum resident threads per compute unit (occupancy ceiling).
    pub max_threads_per_cu: u64,
    /// Local memory per compute unit, bytes.
    pub local_mem_bytes: u64,
    /// Peak single-precision throughput, GFLOP/s.
    pub peak_gflops: f64,
    /// Peak global-memory bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Cache-line / memory-transaction size in bytes (coalescing unit).
    pub cache_line_bytes: u32,
    /// Fixed cost to launch a kernel, nanoseconds.
    pub launch_overhead_ns: f64,
    /// Scheduling cost per work-group, nanoseconds (large on CPUs where a
    /// work-group is a task for a worker thread).
    pub workgroup_overhead_ns: f64,
    /// Relative cost of local-memory traffic vs global-memory traffic.
    /// On GPUs local memory is on-chip (≪ 1); CPUs emulate it in cache with
    /// extra addressing (≥ 1).
    pub local_mem_cost_factor: f64,
    /// Fraction of peak bandwidth achievable with perfectly coalesced
    /// accesses (CPUs: hardware prefetch makes strided access cheaper, so
    /// coalescing matters less — see [`crate::perf`]).
    pub coalescing_sensitivity: f64,
    /// Idle (static) power draw, watts — the baseline the energy model
    /// charges for the whole kernel duration.
    pub idle_watts: f64,
    /// Maximum dynamic power above idle at full utilization, watts.
    pub peak_dynamic_watts: f64,
}

impl DeviceModel {
    /// The paper's GPU: an NVIDIA Tesla K20m (Kepler GK110).
    ///
    /// 13 SMX, warp 32, 48 KiB shared memory per SMX, ~3.5 SP TFLOP/s,
    /// 208 GB/s GDDR5.
    pub fn tesla_k20m() -> Self {
        DeviceModel {
            name: "Tesla K20m".to_string(),
            vendor: "NVIDIA".to_string(),
            device_type: DeviceType::Gpu,
            compute_units: 13,
            simd_width: 32,
            wavefront: 32,
            max_work_group_size: 1024,
            max_threads_per_cu: 2048,
            local_mem_bytes: 48 * 1024,
            peak_gflops: 3524.0,
            bandwidth_gbps: 208.0,
            cache_line_bytes: 128,
            launch_overhead_ns: 1_500.0,
            workgroup_overhead_ns: 100.0,
            local_mem_cost_factor: 0.15,
            coalescing_sensitivity: 0.9,
            idle_watts: 50.0,
            peak_dynamic_watts: 175.0, // K20m TDP 225 W
        }
    }

    /// The paper's CPU: dual-socket Intel Xeon E5-2640 v2 (2 × 8 cores,
    /// hyper-threading), "represented in OpenCL as a single device with 32
    /// compute units" (Section VI).
    ///
    /// AVX (8 × f32), 2 GHz; ~512 SP GFLOP/s across both sockets,
    /// ~100 GB/s aggregate DDR3 bandwidth.
    pub fn xeon_e5_2640v2_dual() -> Self {
        DeviceModel {
            name: "Intel(R) Xeon(R) CPU E5-2640 v2 @ 2.00GHz".to_string(),
            vendor: "Intel".to_string(),
            device_type: DeviceType::Cpu,
            compute_units: 32,
            simd_width: 8,
            wavefront: 1,
            max_work_group_size: 8192,
            max_threads_per_cu: 256,
            local_mem_bytes: 32 * 1024,
            peak_gflops: 512.0,
            bandwidth_gbps: 102.0,
            cache_line_bytes: 64,
            launch_overhead_ns: 2_500.0,
            workgroup_overhead_ns: 2_500.0,
            local_mem_cost_factor: 1.6,
            coalescing_sensitivity: 0.25,
            idle_watts: 60.0,
            peak_dynamic_watts: 130.0, // 2 x 95 W TDP sockets, minus idle
        }
    }

    /// An alias of [`Self::tesla_k20m`] named like the K20c used in the
    /// paper's Listing 2 (the workstation variant of the same GK110 chip).
    pub fn tesla_k20c() -> Self {
        let mut d = Self::tesla_k20m();
        d.name = "Tesla K20c".to_string();
        d
    }

    /// A consumer Maxwell-class GPU (GTX 980-like): fewer FP64-oriented
    /// compromises than Kepler — higher clocks, better caches (larger
    /// coalescing tolerance), less bandwidth. Useful to check that tuned
    /// configurations differ *between GPUs*, not just CPU-vs-GPU.
    pub fn gtx980() -> Self {
        DeviceModel {
            name: "GeForce GTX 980".to_string(),
            vendor: "NVIDIA".to_string(),
            device_type: DeviceType::Gpu,
            compute_units: 16,
            simd_width: 32,
            wavefront: 32,
            max_work_group_size: 1024,
            max_threads_per_cu: 2048,
            local_mem_bytes: 96 * 1024,
            peak_gflops: 4612.0,
            bandwidth_gbps: 224.0,
            cache_line_bytes: 128,
            launch_overhead_ns: 1_200.0,
            workgroup_overhead_ns: 80.0,
            local_mem_cost_factor: 0.12,
            coalescing_sensitivity: 0.75, // better caching than Kepler
            idle_watts: 37.0,
            peak_dynamic_watts: 128.0, // 165 W TDP
        }
    }

    /// An embedded-class CPU (quad-core, no AVX-512, narrow memory system) —
    /// the low end of the device spectrum for portability testing.
    pub fn embedded_quad_core() -> Self {
        DeviceModel {
            name: "Embedded Quad-Core CPU".to_string(),
            vendor: "Generic".to_string(),
            device_type: DeviceType::Cpu,
            compute_units: 4,
            simd_width: 4,
            wavefront: 1,
            max_work_group_size: 4096,
            max_threads_per_cu: 64,
            local_mem_bytes: 32 * 1024,
            peak_gflops: 48.0,
            bandwidth_gbps: 12.0,
            cache_line_bytes: 64,
            launch_overhead_ns: 4_000.0,
            workgroup_overhead_ns: 4_000.0,
            local_mem_cost_factor: 1.2,
            coalescing_sensitivity: 0.2,
            idle_watts: 3.0,
            peak_dynamic_watts: 12.0,
        }
    }

    /// Peak throughput in FLOP/ns.
    pub fn flops_per_ns(&self) -> f64 {
        self.peak_gflops // GFLOP/s == FLOP/ns
    }

    /// Peak bandwidth in bytes/ns.
    pub fn bytes_per_ns(&self) -> f64 {
        self.bandwidth_gbps // GB/s == B/ns
    }

    /// `true` for GPUs.
    pub fn is_gpu(&self) -> bool {
        self.device_type == DeviceType::Gpu
    }
}

impl fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}; {} CUs, {:.0} GFLOP/s, {:.0} GB/s]",
            self.name, self.vendor, self.compute_units, self.peak_gflops, self.bandwidth_gbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sane() {
        let gpu = DeviceModel::tesla_k20m();
        assert!(gpu.is_gpu());
        assert_eq!(gpu.compute_units, 13);
        assert_eq!(gpu.wavefront, 32);
        let cpu = DeviceModel::xeon_e5_2640v2_dual();
        assert!(!cpu.is_gpu());
        assert_eq!(cpu.compute_units, 32); // as stated in the paper
        assert!(cpu.workgroup_overhead_ns > gpu.workgroup_overhead_ns);
        assert!(gpu.peak_gflops > cpu.peak_gflops);
    }

    #[test]
    fn unit_conversions() {
        let gpu = DeviceModel::tesla_k20m();
        assert_eq!(gpu.flops_per_ns(), 3524.0);
        assert_eq!(gpu.bytes_per_ns(), 208.0);
    }

    #[test]
    fn display_contains_name() {
        let s = DeviceModel::tesla_k20c().to_string();
        assert!(s.contains("Tesla K20c") && s.contains("NVIDIA"));
    }
}
