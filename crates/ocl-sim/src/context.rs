//! The simulated OpenCL context + in-order command queue.
//!
//! Owns the device, the buffers, and a simulated device clock. Enqueuing a
//! kernel performs the full OpenCL-like pipeline: build check (undefined
//! tuning macros fail the build), launch validation, kernel execution
//! (profile + optional functional result), performance-model estimation, and
//! a profiling event with simulated timestamps. A small deterministic
//! "measurement noise" (hash of configuration and a context seed) makes the
//! simulated runtimes behave like real, slightly noisy measurements without
//! breaking reproducibility.

use crate::buffer::{Buffer, BufferData, BufferId, KernelArg};
use crate::device::DeviceModel;
use crate::error::ClError;
use crate::event::ProfilingEvent;
use crate::kernel::{ExecMode, KernelCall, SimKernel};
use crate::launch::Launch;
use crate::perf;
use crate::preprocessor::{undefined_identifiers, DefineMap};
use std::hash::{Hash, Hasher};

/// Relative amplitude of the deterministic measurement noise.
pub const DEFAULT_NOISE: f64 = 0.02;

/// A simulated OpenCL context with an in-order queue.
pub struct Context {
    device: DeviceModel,
    buffers: Vec<Buffer>,
    clock_ns: f64,
    noise: f64,
    seed: u64,
}

impl Context {
    /// Creates a context for `device` with the default noise and seed.
    pub fn new(device: DeviceModel) -> Self {
        Context {
            device,
            buffers: Vec::new(),
            clock_ns: 0.0,
            noise: DEFAULT_NOISE,
            seed: 0,
        }
    }

    /// Sets the measurement-noise seed (different seeds = different but
    /// reproducible noise).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the relative noise amplitude (0 disables noise).
    pub fn with_noise(mut self, amplitude: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&amplitude),
            "noise amplitude in [0, 0.5)"
        );
        self.noise = amplitude;
        self
    }

    /// The device of this context.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Current simulated device clock, ns.
    pub fn clock_ns(&self) -> f64 {
        self.clock_ns
    }

    /// Allocates a device buffer and uploads `data`.
    pub fn create_buffer(&mut self, data: BufferData) -> BufferId {
        self.buffers.push(Buffer::new(data));
        BufferId(self.buffers.len() - 1)
    }

    /// Allocates an `f32` buffer.
    pub fn create_buffer_f32(&mut self, data: Vec<f32>) -> BufferId {
        self.create_buffer(BufferData::F32(data))
    }

    /// Accesses a buffer (e.g. to read results back).
    pub fn buffer(&self, id: BufferId) -> &Buffer {
        &self.buffers[id.0]
    }

    /// Builds + launches a kernel and returns its profiling event.
    ///
    /// This is the body of ATF's pre-implemented OpenCL cost function: it
    /// substitutes tuning parameters via macro definitions, validates the
    /// launch, "runs" the kernel, and measures the runtime via the profiling
    /// event.
    pub fn enqueue_kernel(
        &mut self,
        kernel: &dyn SimKernel,
        args: &[KernelArg],
        launch: &Launch,
        defines: &DefineMap,
        mode: ExecMode,
    ) -> Result<ProfilingEvent, ClError> {
        // Build step: every required tuning macro must be defined.
        let missing = undefined_identifiers(kernel.source(), kernel.required_defines(), defines);
        if !missing.is_empty() {
            return Err(ClError::BuildProgramFailure(format!(
                "undefined identifiers in kernel `{}`: {}",
                kernel.name(),
                missing.join(", ")
            )));
        }
        launch.validate(&self.device)?;
        let call = KernelCall {
            device: &self.device,
            launch,
            defines,
            args,
            mode,
            buffers: &self.buffers,
        };
        let profile = kernel.execute(&call)?;
        let breakdown = perf::estimate(&self.device, &profile, launch)?;

        let noise_factor = self.noise_factor(kernel.name(), defines, launch);
        let exec_ns = breakdown.total_ns * noise_factor;

        let queued_ns = self.clock_ns;
        let submit_ns = queued_ns + 200.0; // driver enqueue latency
        let start_ns = submit_ns + 300.0;
        let end_ns = start_ns + exec_ns;
        self.clock_ns = end_ns;
        Ok(ProfilingEvent {
            queued_ns,
            submit_ns,
            start_ns,
            end_ns,
            breakdown,
        })
    }

    /// Deterministic per-configuration noise factor in
    /// `[1 - noise, 1 + noise]`.
    fn noise_factor(&self, kernel_name: &str, defines: &DefineMap, launch: &Launch) -> f64 {
        if self.noise == 0.0 {
            return 1.0;
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        kernel_name.hash(&mut h);
        for (k, v) in defines.iter() {
            k.hash(&mut h);
            v.hash(&mut h);
        }
        launch.global().hash(&mut h);
        launch.local().hash(&mut h);
        let u = (h.finish() >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 - self.noise + 2.0 * self.noise * u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::test_kernels::ScaleKernel;

    fn ctx() -> Context {
        Context::new(DeviceModel::tesla_k20m()).with_seed(1)
    }

    fn setup(ctx: &mut Context, n: usize) -> (BufferId, BufferId) {
        let input = ctx.create_buffer_f32((0..n).map(|i| i as f32).collect());
        let output = ctx.create_buffer_f32(vec![0.0; n]);
        (input, output)
    }

    #[test]
    fn functional_execution_computes_results() {
        let mut ctx = ctx();
        let (i, o) = setup(&mut ctx, 1024);
        let defines = DefineMap::new().with("F", "3");
        let ev = ctx
            .enqueue_kernel(
                &ScaleKernel,
                &[i.into(), o.into()],
                &Launch::one_d(1024, 64),
                &defines,
                ExecMode::Functional,
            )
            .unwrap();
        assert!(ev.duration_ns() > 0.0);
        let out = ctx.buffer(o).borrow_f32();
        assert_eq!(out[10], 30.0);
        assert_eq!(out[1023], 3069.0);
    }

    #[test]
    fn model_only_leaves_buffers_untouched() {
        let mut ctx = ctx();
        let (i, o) = setup(&mut ctx, 256);
        let defines = DefineMap::new().with("F", "3");
        ctx.enqueue_kernel(
            &ScaleKernel,
            &[i.into(), o.into()],
            &Launch::one_d(256, 64),
            &defines,
            ExecMode::ModelOnly,
        )
        .unwrap();
        assert_eq!(ctx.buffer(o).borrow_f32()[10], 0.0);
    }

    #[test]
    fn missing_define_fails_build() {
        let mut ctx = ctx();
        let (i, o) = setup(&mut ctx, 64);
        let err = ctx
            .enqueue_kernel(
                &ScaleKernel,
                &[i.into(), o.into()],
                &Launch::one_d(64, 64),
                &DefineMap::new(),
                ExecMode::ModelOnly,
            )
            .unwrap_err();
        assert!(matches!(err, ClError::BuildProgramFailure(m) if m.contains('F')));
    }

    #[test]
    fn invalid_launch_rejected() {
        let mut ctx = ctx();
        let (i, o) = setup(&mut ctx, 100);
        let defines = DefineMap::new().with("F", "1");
        let err = ctx
            .enqueue_kernel(
                &ScaleKernel,
                &[i.into(), o.into()],
                &Launch::one_d(100, 64),
                &defines,
                ExecMode::ModelOnly,
            )
            .unwrap_err();
        assert!(matches!(err, ClError::InvalidWorkGroupSize(_)));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut ctx = ctx();
        let (i, o) = setup(&mut ctx, 256);
        let defines = DefineMap::new().with("F", "2");
        let t0 = ctx.clock_ns();
        let ev1 = ctx
            .enqueue_kernel(
                &ScaleKernel,
                &[i.into(), o.into()],
                &Launch::one_d(256, 32),
                &defines,
                ExecMode::ModelOnly,
            )
            .unwrap();
        let ev2 = ctx
            .enqueue_kernel(
                &ScaleKernel,
                &[i.into(), o.into()],
                &Launch::one_d(256, 32),
                &defines,
                ExecMode::ModelOnly,
            )
            .unwrap();
        assert!(ev1.queued_ns >= t0);
        assert!(ev2.queued_ns >= ev1.end_ns);
        assert!(ctx.clock_ns() >= ev2.end_ns);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let run = |seed| {
            let mut ctx = Context::new(DeviceModel::tesla_k20m()).with_seed(seed);
            let (i, o) = setup(&mut ctx, 256);
            let defines = DefineMap::new().with("F", "2");
            ctx.enqueue_kernel(
                &ScaleKernel,
                &[i.into(), o.into()],
                &Launch::one_d(256, 32),
                &defines,
                ExecMode::ModelOnly,
            )
            .unwrap()
            .duration_ns()
        };
        assert_eq!(run(7), run(7));
        let (a, b) = (run(7), run(8));
        assert!((a / b - 1.0).abs() < 0.1); // bounded noise
    }

    #[test]
    fn zero_noise_matches_model_exactly() {
        let mut ctx = Context::new(DeviceModel::tesla_k20m()).with_noise(0.0);
        let (i, o) = setup(&mut ctx, 256);
        let defines = DefineMap::new().with("F", "2");
        let ev = ctx
            .enqueue_kernel(
                &ScaleKernel,
                &[i.into(), o.into()],
                &Launch::one_d(256, 32),
                &defines,
                ExecMode::ModelOnly,
            )
            .unwrap();
        assert!((ev.duration_ns() - ev.breakdown.total_ns).abs() < 1e-9);
    }

    #[test]
    fn buffer_too_small_detected() {
        let mut ctx = ctx();
        let (i, o) = setup(&mut ctx, 32);
        let defines = DefineMap::new().with("F", "2");
        let err = ctx
            .enqueue_kernel(
                &ScaleKernel,
                &[i.into(), o.into()],
                &Launch::one_d(64, 32),
                &defines,
                ExecMode::ModelOnly,
            )
            .unwrap_err();
        assert!(matches!(err, ClError::InvalidBuffer(_)));
    }
}
