//! Criterion micro-benchmarks of sequential vs parallel (one thread per
//! parameter group, Section V) search-space generation.

use atf_core::constraint::divides;
use atf_core::expr::param;
use atf_core::param::{tp, tp_c, ParamGroup};
use atf_core::range::Range;
use atf_core::space::SearchSpace;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn groups(g: usize, n: u64) -> Vec<ParamGroup> {
    (0..g)
        .map(|i| {
            let a = format!("tp{}_a", i);
            let b = format!("tp{}_b", i);
            ParamGroup::new(vec![
                tp(a.clone(), Range::interval(1, n)),
                tp_c(b, Range::interval(1, n), divides(param(a))),
            ])
        })
        .collect()
}

fn bench_parallel(c: &mut Criterion) {
    let mut bg = c.benchmark_group("group_generation");
    bg.sample_size(10);
    bg.warm_up_time(Duration::from_secs(1));
    bg.measurement_time(Duration::from_secs(3));
    for g in [2usize, 4, 8] {
        let gs = groups(g, 512);
        bg.bench_with_input(BenchmarkId::new("sequential", g), &g, |b, _| {
            b.iter(|| SearchSpace::generate(std::hint::black_box(&gs)))
        });
        bg.bench_with_input(BenchmarkId::new("parallel", g), &g, |b, _| {
            b.iter(|| SearchSpace::generate_parallel(std::hint::black_box(&gs)))
        });
    }
    bg.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
