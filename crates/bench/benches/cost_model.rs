//! Criterion micro-benchmarks of the simulated cost-function evaluation —
//! the inner loop of every tuning run: macro substitution, launch
//! validation, kernel profiling, and the analytic performance model.

use atf_bench::{saxpy_cost_function, xgemm_cost_function};
use atf_core::config::Config;
use atf_core::cost::CostFunction;
use criterion::{criterion_group, criterion_main, Criterion};
use ocl_sim::preprocessor::{substitute, DefineMap};
use ocl_sim::DeviceModel;
use std::time::Duration;

fn bench_evaluation(c: &mut Criterion) {
    let mut g = c.benchmark_group("cost_function_evaluate");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));

    let mut saxpy = saxpy_cost_function(DeviceModel::tesla_k20m(), 1 << 16);
    let saxpy_cfg = Config::from_pairs([("WPT", 4u64), ("LS", 128u64)]);
    g.bench_function("saxpy_model_only", |b| {
        b.iter(|| saxpy.evaluate(std::hint::black_box(&saxpy_cfg)).unwrap())
    });

    let mut gemm = xgemm_cost_function(DeviceModel::tesla_k20m(), 20, 576, 25);
    let gemm_cfg = clblast::default_config();
    g.bench_function("xgemm_model_only", |b| {
        b.iter(|| gemm.evaluate(std::hint::black_box(&gemm_cfg)).unwrap())
    });

    // Invalid configurations must fail fast (they dominate penalty-based
    // baseline runs).
    let invalid = Config::from_pairs([
        ("WGD", 16u64),
        ("MDIMCD", 3u64), // does not divide WGD
        ("NDIMCD", 8u64),
        ("MDIMAD", 8u64),
        ("NDIMBD", 8u64),
        ("KWID", 2u64),
        ("VWMD", 1u64),
        ("VWND", 1u64),
        ("PADA", 1u64),
        ("PADB", 1u64),
    ]);
    g.bench_function("xgemm_invalid_config", |b| {
        b.iter(|| {
            let r = gemm.evaluate(std::hint::black_box(&invalid));
            assert!(r.is_err());
            r.err()
        })
    });
    g.finish();
}

fn bench_preprocessor(c: &mut Criterion) {
    let defines = DefineMap::new()
        .with("WGD", "32")
        .with("MDIMCD", "8")
        .with("NDIMCD", "8")
        .with("KWID", "2");
    let mut g = c.benchmark_group("preprocessor");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("substitute_xgemm_source", |b| {
        b.iter(|| {
            substitute(
                std::hint::black_box(clblast::XGEMM_DIRECT_SOURCE),
                std::hint::black_box(&defines),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_evaluation, bench_preprocessor);
criterion_main!(benches);
