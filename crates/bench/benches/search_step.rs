//! Criterion micro-benchmarks of the per-step overhead of each search
//! technique (`get_next_point` + `report_cost`). Auto-tuning steps are
//! dominated by the cost-function measurement, but technique overhead
//! matters for cheap analytic cost functions.

use atf_core::search::{
    Ensemble, GreedyMutation, NelderMead, PatternSearch, RandomSearch, SearchTechnique,
    SimulatedAnnealing, SpaceDims, Torczon,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

type TechniqueFactory = Box<dyn Fn() -> Box<dyn SearchTechnique>>;

fn bench_step(c: &mut Criterion) {
    let dims = SpaceDims::new(vec![512, 512, 16, 4]);
    let mk: Vec<(&str, TechniqueFactory)> = vec![
        ("random", Box::new(|| Box::new(RandomSearch::with_seed(1)))),
        (
            "annealing",
            Box::new(|| Box::new(SimulatedAnnealing::with_seed(1))),
        ),
        (
            "nelder_mead",
            Box::new(|| Box::new(NelderMead::with_seed(1))),
        ),
        ("torczon", Box::new(|| Box::new(Torczon::with_seed(1)))),
        (
            "pattern",
            Box::new(|| Box::new(PatternSearch::with_seed(1))),
        ),
        (
            "mutation",
            Box::new(|| Box::new(GreedyMutation::with_seed(1))),
        ),
        (
            "ensemble",
            Box::new(|| Box::new(Ensemble::opentuner_default(1))),
        ),
    ];
    let mut g = c.benchmark_group("search_step");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for (name, factory) in mk {
        g.bench_function(name, |b| {
            let mut tech = factory();
            tech.initialize(dims.clone());
            let mut fake_cost = 0u64;
            b.iter(|| {
                let p = tech.get_next_point().expect("technique proposes");
                // A cheap deterministic pseudo-cost keeps the technique's
                // internal state evolving realistically.
                fake_cost = fake_cost
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(p[0]);
                tech.report_cost((fake_cost % 1000) as f64);
                std::hint::black_box(p)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
