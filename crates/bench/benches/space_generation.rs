//! Criterion micro-benchmarks of search-space generation: ATF's
//! constrained-range walk vs the CLTune-style cross-product-then-filter, on
//! the saxpy and XgemmDirect parameter systems (Section VI-A of the paper
//! at micro scale).

use atf_core::space::{cross_product_filter, SearchSpace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_saxpy_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("saxpy_space");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for n in [256u64, 1024, 4096] {
        let groups = clblast::saxpy_space(n);
        g.bench_with_input(BenchmarkId::new("atf_constrained_walk", n), &n, |b, _| {
            b.iter(|| SearchSpace::generate(std::hint::black_box(&groups)))
        });
        // The cross product is N², so keep it to the small sizes.
        if n <= 1024 {
            g.bench_with_input(BenchmarkId::new("cross_product_filter", n), &n, |b, _| {
                b.iter(|| {
                    cross_product_filter(std::hint::black_box(&groups), u64::MAX, None).unwrap()
                })
            });
        }
    }
    g.finish();
}

fn bench_xgemm_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("xgemm_space");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for cap in [8u64, 16] {
        let groups = clblast::xgemm_space::atf_space_wgd_max(cap);
        g.bench_with_input(BenchmarkId::new("atf_count_only", cap), &cap, |b, _| {
            b.iter(|| SearchSpace::count(std::hint::black_box(&groups)))
        });
        g.bench_with_input(BenchmarkId::new("atf_materialize", cap), &cap, |b, _| {
            b.iter(|| SearchSpace::generate(std::hint::black_box(&groups)))
        });
    }
    g.finish();
}

fn bench_indexing(c: &mut Criterion) {
    let space = SearchSpace::generate(&clblast::xgemm_space::atf_space_wgd_max(12));
    let len = space.len();
    let mut i = 0u128;
    let mut g = c.benchmark_group("indexing");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("space_get_by_flat_index", |b| {
        b.iter(|| {
            i = (i + 99_991) % len;
            std::hint::black_box(space.get(i))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_saxpy_generation,
    bench_xgemm_generation,
    bench_indexing
);
criterion_main!(benches);
