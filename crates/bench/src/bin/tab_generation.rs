//! **Table (Section VI-A, text): search-space generation time** — ATF's
//! constrained-range generation vs CLTune's cross-product-then-filter, on
//! the XgemmDirect parameter system with growing range caps.
//!
//! Paper reference: for unrestricted ranges on a 32×32 GEMM, CLTune's
//! generation was aborted after 3 hours, while ATF generated its space in
//! under 1 second.
//!
//! Run: `cargo run -p atf-bench --release --bin tab_generation`

use atf_bench::{write_records, Record};
use atf_core::prelude::*;
use baselines::{CltuneGenError, CltuneTuner};
use std::time::{Duration, Instant};

/// The CLTune tuner over XgemmDirect ranges capped at `cap` (full cross
/// product: `cap^6 · 4² · 2²` candidates).
fn cltune_xgemm(cap: u64) -> CltuneTuner {
    let mut t = CltuneTuner::new();
    for p in ["WGD", "MDIMCD", "NDIMCD", "MDIMAD", "NDIMBD", "KWID"] {
        t.add_parameter(p, (1..=cap).collect());
    }
    t.add_parameter("VWMD", vec![1, 2, 4, 8]);
    t.add_parameter("VWND", vec![1, 2, 4, 8]);
    t.add_parameter("PADA", vec![0, 1]);
    t.add_parameter("PADB", vec![0, 1]);
    t.add_constraint(|v| v[0] % v[1] == 0, &["WGD", "MDIMCD"]);
    t.add_constraint(|v| v[0] % v[1] == 0, &["WGD", "NDIMCD"]);
    t.add_constraint(|v| v[0] % v[1] == 0, &["WGD", "MDIMAD"]);
    t.add_constraint(|v| v[0] % v[1] == 0, &["WGD", "NDIMBD"]);
    t.add_constraint(|v| v[0] % v[1] == 0, &["WGD", "KWID"]);
    t.add_constraint(
        |v| (v[0] * v[1]) % v[2] == 0,
        &["MDIMCD", "NDIMCD", "MDIMAD"],
    );
    t.add_constraint(
        |v| (v[0] * v[1]) % v[2] == 0,
        &["MDIMCD", "NDIMCD", "NDIMBD"],
    );
    t.add_constraint(|v| (v[0] / v[1]) % v[2] == 0, &["WGD", "MDIMCD", "VWMD"]);
    t.add_constraint(|v| (v[0] / v[1]) % v[2] == 0, &["WGD", "MDIMAD", "VWMD"]);
    t.add_constraint(|v| (v[0] / v[1]) % v[2] == 0, &["WGD", "NDIMCD", "VWND"]);
    t.add_constraint(|v| (v[0] / v[1]) % v[2] == 0, &["WGD", "NDIMBD", "VWND"]);
    t
}

fn main() {
    println!("Reproducing Section VI-A: search-space generation, ATF vs CLTune");
    println!("(paper: CLTune aborted after 3 h on unrestricted 32x32 ranges; ATF < 1 s)\n");
    println!(
        "{:>5} | {:>16} | {:>12} | {:>10} | {:>16} | {:>13}",
        "cap", "cross product", "valid", "ATF time", "CLTune time", "CLTune result"
    );

    let budget = Duration::from_secs(20); // scaled-down stand-in for "3 hours"
    let mut records = Vec::new();
    for cap in [4u64, 6, 8, 12, 16, 24, 32, 48, 64] {
        let groups = clblast::xgemm_space::atf_space_wgd_max(cap);

        let t0 = Instant::now();
        let valid = SearchSpace::count(&groups).expect("space countable");
        let atf_time = t0.elapsed();

        let mut cltune = cltune_xgemm(cap);
        cltune.generation_budget(budget);
        let cross = cltune.cross_product_size();
        let t0 = Instant::now();
        let (cltune_time, outcome, cltune_valid) = match cltune.generate_space() {
            Ok(space) => {
                let count = space.len() as u128;
                assert_eq!(
                    count, valid,
                    "cap {cap}: CLTune and ATF disagree on the valid space"
                );
                (t0.elapsed(), "completed".to_string(), count as f64)
            }
            Err(CltuneGenError::TimedOut {
                candidates_enumerated,
                ..
            }) => {
                let done = candidates_enumerated as f64 / cross as f64;
                (
                    t0.elapsed(),
                    format!("ABORTED ({:.4}% done)", done * 100.0),
                    f64::NAN,
                )
            }
            Err(e) => (t0.elapsed(), format!("failed: {e}"), f64::NAN),
        };

        println!(
            "{:>5} | {:>16.3e} | {:>12} | {:>10.2?} | {:>16.2?} | {}",
            cap, cross as f64, valid, atf_time, cltune_time, outcome
        );
        records.push(Record {
            experiment: "tab_generation".into(),
            device: "-".into(),
            workload: format!("cap{cap}"),
            metrics: vec![
                ("cross_product".into(), cross as f64),
                ("valid".into(), valid as f64),
                ("atf_seconds".into(), atf_time.as_secs_f64()),
                ("cltune_seconds".into(), cltune_time.as_secs_f64()),
                ("cltune_valid".into(), cltune_valid),
            ],
        });
    }
    write_records("tab_generation", &records);

    println!("\nprojection: at cap 64 the cross product has ~4.4e12 candidates;");
    println!("at the measured CLTune enumeration rate that is >1 day of generation");
    println!("(the paper aborted after 3 hours), while ATF's constrained-range");
    println!("walk finishes in under a second.");
    println!("records written to results/tab_generation.json");
}
