//! **Figure 2**: speedup of the XgemmDirect kernel auto-tuned by ATF over
//! auto-tuning by CLTune and OpenTuner, on the simulated CPU and GPU, for
//! the four Caffe input sizes IS1–IS4.
//!
//! Pipeline per device:
//! * **CLTune**: CLBlast's artificially limited parameter ranges make the
//!   search space *empty* for every Caffe size (the divides-rows/columns
//!   constraint), so the kernel runs with CLTune's *device-optimized*
//!   values obtained by tuning the average 256×256 size — exactly the
//!   paper's account (Section VI-A).
//! * **OpenTuner**: searches the unconstrained space with penalty costs;
//!   with valid configurations a ~10⁻⁵ fraction it (almost) never finds
//!   one, so the kernel falls back to its compiled-in defaults
//!   (Section VI-B). If OpenTuner does find a better valid configuration,
//!   it is credited with it.
//! * **ATF**: tunes the full constrained space (generated once, reused
//!   across devices and sizes) with the ensemble search.
//!
//! Run: `cargo run -p atf-bench --release --bin fig2_speedup`

use atf_bench::{devices, fmt_ns, fmt_speedup, write_records, xgemm_cost_function, Record};
use atf_core::prelude::*;
use baselines::{CltuneTuner, OpenTunerStyleTuner};
use clblast::caffe;

const ATF_BUDGET: u64 = 3_000;
const OPENTUNER_BUDGET: u64 = 10_000; // the paper's 10 000 evaluations

/// CLTune's device-optimized configuration: tune the 256×256×256 "average"
/// size over CLBlast's limited ranges (the space is non-empty there).
fn cltune_device_optimized(device: &ocl_sim::DeviceModel) -> Config {
    let mut tuner = CltuneTuner::new();
    tuner.add_parameter("WGD", vec![8, 16, 32]);
    for p in ["MDIMCD", "NDIMCD", "MDIMAD", "NDIMBD"] {
        tuner.add_parameter(p, vec![8, 16, 32]);
    }
    tuner.add_parameter("KWID", vec![2, 8, 16]);
    tuner.add_parameter("VWMD", vec![1, 2, 4, 8]);
    tuner.add_parameter("VWND", vec![1, 2, 4, 8]);
    tuner.add_parameter("PADA", vec![0, 1]);
    tuner.add_parameter("PADB", vec![0, 1]);
    // The CLBlast/CLTune constraint set (CLTune form: predicates over
    // complete configurations).
    tuner.add_constraint(|v| 256 % v[0] == 0, &["WGD"]); // divides rows & cols of 256x256
    tuner.add_constraint(|v| v[0] % v[1] == 0, &["WGD", "MDIMCD"]);
    tuner.add_constraint(|v| v[0] % v[1] == 0, &["WGD", "NDIMCD"]);
    tuner.add_constraint(|v| v[0] % v[1] == 0, &["WGD", "MDIMAD"]);
    tuner.add_constraint(|v| v[0] % v[1] == 0, &["WGD", "NDIMBD"]);
    tuner.add_constraint(|v| v[0] % v[1] == 0, &["WGD", "KWID"]);
    tuner.add_constraint(
        |v| (v[0] * v[1]) % v[2] == 0,
        &["MDIMCD", "NDIMCD", "MDIMAD"],
    );
    tuner.add_constraint(
        |v| (v[0] * v[1]) % v[2] == 0,
        &["MDIMCD", "NDIMCD", "NDIMBD"],
    );
    tuner.add_constraint(|v| (v[0] / v[1]) % v[2] == 0, &["WGD", "MDIMCD", "VWMD"]);
    tuner.add_constraint(|v| (v[0] / v[1]) % v[2] == 0, &["WGD", "MDIMAD", "VWMD"]);
    tuner.add_constraint(|v| (v[0] / v[1]) % v[2] == 0, &["WGD", "NDIMCD", "VWND"]);
    tuner.add_constraint(|v| (v[0] / v[1]) % v[2] == 0, &["WGD", "NDIMBD", "VWND"]);
    tuner.use_annealing(0.5, 4.0);
    tuner.seed(0xc1);

    let mut cf = xgemm_cost_function(device.clone(), 256, 256, 256);
    // PADA/PADB arrive as 0/1 UInts from the CLTune tuner; convert so the
    // kernel's boolean decode is exercised the same way everywhere.
    let result = tuner
        .tune(&mut cf)
        .expect("generation fits")
        .expect("256x256 space is non-empty");
    result.best_config
}

fn main() {
    println!("Reproducing Figure 2: ATF vs CLTune vs OpenTuner on XgemmDirect");
    println!("(paper reference: ATF/CLTune 1.66-17.60x CPU, 1.33-3.62x GPU;");
    println!("                  ATF/OpenTuner 1.98-5.31x CPU, 1.20-1.65x GPU)\n");

    // The ATF space is size-independent; generate once and reuse.
    let t0 = std::time::Instant::now();
    let groups = clblast::atf_space(576, 576, 64);
    let space = SearchSpace::generate(&groups);
    println!(
        "ATF search space: {} valid configurations (generated in {:?})\n",
        space.len(),
        t0.elapsed()
    );

    let mut records = Vec::new();
    for (dev_label, device) in devices() {
        println!("=== {dev_label}: {} ===", device.name);

        // CLTune path: empty space on Caffe sizes → device-optimized values.
        for &(m, n, k) in &caffe::INPUT_SIZES {
            assert_eq!(
                SearchSpace::count(&clblast::clblast_limited_space(m, n, k)).unwrap(),
                0,
                "CLTune space unexpectedly non-empty"
            );
        }
        let cltune_config = cltune_device_optimized(&device);
        println!("  CLTune device-optimized (tuned on 256x256): {cltune_config}");

        println!(
            "  {:>4} | {:>12} | {:>12} | {:>12} | {:>11} | {:>14}",
            "IS", "ATF", "CLTune", "OpenTuner", "vs CLTune", "vs OpenTuner"
        );
        for (label, &(m, n, k)) in caffe::LABELS.iter().zip(&caffe::INPUT_SIZES) {
            // ATF.
            let mut cf = xgemm_cost_function(device.clone(), m, n, k);
            let atf = Tuner::new()
                .technique(Ensemble::opentuner_default(0xa7f))
                .abort_condition(abort::evaluations(ATF_BUDGET))
                .tune_space(&space, &mut cf)
                .expect("space non-empty");
            let t_atf = atf.best_cost;

            // CLTune: measure its device-optimized configuration.
            let mut cf = xgemm_cost_function(device.clone(), m, n, k);
            let t_cltune = cf
                .measure(&cltune_config)
                .expect("device-optimized config launches with padded global size");

            // OpenTuner: penalty search over the unconstrained space; falls
            // back to defaults when nothing valid was found.
            let mut ot =
                OpenTunerStyleTuner::from_u64_ranges(clblast::unconstrained_params(64)).seed(0x07);
            let mut cf = xgemm_cost_function(device.clone(), m, n, k);
            let ot_result = ot.tune(OPENTUNER_BUDGET, &mut cf);
            let mut cf = xgemm_cost_function(device.clone(), m, n, k);
            let t_default = cf.measure(&clblast::default_config()).expect("defaults");
            let t_opentuner = match &ot_result.best {
                Some((_, c)) if *c < t_default => *c,
                _ => t_default,
            };

            let s_cltune = t_cltune / t_atf;
            let s_opentuner = t_opentuner / t_atf;
            println!(
                "  {:>4} | {:>12} | {:>12} | {:>12} | {:>11} | {:>14}   (OT valid: {}/{})",
                label,
                fmt_ns(t_atf),
                fmt_ns(t_cltune),
                fmt_ns(t_opentuner),
                fmt_speedup(s_cltune),
                fmt_speedup(s_opentuner),
                ot_result.valid_evaluations,
                ot_result.evaluations,
            );
            records.push(Record {
                experiment: "fig2".into(),
                device: dev_label.into(),
                workload: label.to_string(),
                metrics: vec![
                    ("atf_ns".into(), t_atf),
                    ("cltune_ns".into(), t_cltune),
                    ("opentuner_ns".into(), t_opentuner),
                    ("default_ns".into(), t_default),
                    ("speedup_vs_cltune".into(), s_cltune),
                    ("speedup_vs_opentuner".into(), s_opentuner),
                    (
                        "opentuner_valid_fraction".into(),
                        ot_result.valid_fraction(),
                    ),
                ],
            });
        }
        println!();
    }
    write_records("fig2", &records);
    println!("records written to results/fig2.json");
}
