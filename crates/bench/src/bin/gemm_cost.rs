//! Generic-cost-function bridge for the GEMM reproduction campaign
//! (`examples/campaigns/gemm_repro.campaign.json`): runs ONE XgemmDirect
//! evaluation on the simulated device, exactly the way `atf-tune` runs any
//! external program.
//!
//! The CLI's process cost function exports each tuning parameter as
//! `ATF_TP_<NAME>`, the spec's `program.source` path as `ATF_SOURCE`, and
//! the per-evaluation cost log as `ATF_LOG_FILE`. Here `ATF_SOURCE` points
//! at a one-line workload file — `<device> <m> <n> <k>` (e.g.
//! `GPU 20 576 1`) — so the same binary serves every node of the campaign.
//! The measured kernel runtime (ns) is written to `ATF_LOG_FILE`; an
//! infeasible configuration exits nonzero, which the tuner records as a
//! failed evaluation.
//!
//! Run (normally via the campaign, not by hand):
//! `cargo build -p atf-bench --release --bin gemm_cost`

use atf_bench::{devices, xgemm_cost_function};
use atf_core::config::Config;
use atf_core::cost::CostFunction;
use atf_core::value::Value;

const PARAMS: [&str; 10] = [
    "WGD", "MDIMCD", "NDIMCD", "MDIMAD", "NDIMBD", "KWID", "VWMD", "VWND", "PADA", "PADB",
];

fn fail(msg: &str) -> ! {
    eprintln!("gemm_cost: {msg}");
    std::process::exit(2);
}

fn main() {
    let source = std::env::var("ATF_SOURCE")
        .unwrap_or_else(|_| fail("ATF_SOURCE is not set (run me through `atf-tune`)"));
    let workload = std::fs::read_to_string(&source)
        .unwrap_or_else(|e| fail(&format!("cannot read workload file {source}: {e}")));
    let mut words = workload.split_whitespace();
    let device_label = words
        .next()
        .unwrap_or_else(|| fail("workload file must read `<device> <m> <n> <k>`"));
    let mut dim = || -> u64 {
        words
            .next()
            .and_then(|w| w.parse().ok())
            .unwrap_or_else(|| fail("workload file must read `<device> <m> <n> <k>`"))
    };
    let (m, n, k) = (dim(), dim(), dim());
    let device = devices()
        .into_iter()
        .find(|(label, _)| *label == device_label)
        .map(|(_, d)| d)
        .unwrap_or_else(|| fail(&format!("unknown device `{device_label}` (CPU or GPU)")));

    let mut pairs = Vec::with_capacity(PARAMS.len());
    for name in PARAMS {
        let var = format!("ATF_TP_{name}");
        let value: u64 = std::env::var(&var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| fail(&format!("{var} is not set to an integer")));
        pairs.push((name, Value::UInt(value)));
    }
    let config = Config::from_pairs(pairs);

    let mut cf = xgemm_cost_function(device, m, n, k);
    let cost = match cf.evaluate(&config) {
        Ok(ns) => ns,
        Err(e) => fail(&format!("infeasible configuration: {e}")),
    };
    match std::env::var("ATF_LOG_FILE") {
        Ok(log) => std::fs::write(&log, format!("{cost}\n"))
            .unwrap_or_else(|e| fail(&format!("cannot write {log}: {e}"))),
        Err(_) => println!("{cost}"),
    }
}
