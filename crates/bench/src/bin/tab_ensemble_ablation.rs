//! **Ablation: the AUC-bandit ensemble** (DESIGN.md design-choice ablation).
//! Compares the ensemble against each of its members in isolation, against
//! the extended ensemble (with PSO and GA), and sweeps the bandit's
//! exploration constant — on the XgemmDirect IS4 workload, averaged over
//! seeds.
//!
//! Run: `cargo run -p atf-bench --release --bin tab_ensemble_ablation`

use atf_bench::{write_records, xgemm_cost_function, Record};
use atf_core::prelude::*;
use atf_core::search::bandit::DEFAULT_WINDOW;
use ocl_sim::DeviceModel;

/// Builds one seeded member technique for an ablation arm.
type TechniqueFactory = Box<dyn Fn(u64) -> Box<dyn SearchTechnique>>;

const BUDGET: u64 = 1_500;
const SEEDS: [u64; 5] = [11, 23, 37, 51, 67];

fn mean_best(
    space: &SearchSpace,
    make: impl Fn(u64) -> Box<dyn SearchTechnique>,
    m: u64,
    n: u64,
    k: u64,
) -> (f64, f64) {
    let mut costs = Vec::new();
    for &seed in &SEEDS {
        let mut cf = xgemm_cost_function(DeviceModel::tesla_k20m(), m, n, k);
        let r = Tuner::new()
            .technique(make(seed))
            .abort_condition(abort::evaluations(BUDGET))
            .tune_space(space, &mut cf)
            .expect("non-empty space");
        costs.push(r.best_cost);
    }
    let mean = costs.iter().sum::<f64>() / costs.len() as f64;
    let best = costs.iter().cloned().fold(f64::INFINITY, f64::min);
    (mean, best)
}

fn main() {
    println!("Ablation: ensemble vs its members on XgemmDirect IS4 (GPU model),");
    println!(
        "{BUDGET} evaluations, mean/best over {} seeds\n",
        SEEDS.len()
    );

    let (m, n, k) = clblast::caffe::IS4;
    let groups = clblast::atf_space(m, n, k);
    let space = SearchSpace::generate(&groups);
    println!("space: {} valid configurations\n", space.len());

    let arms: Vec<(&str, TechniqueFactory)> = vec![
        ("random", Box::new(|s| Box::new(RandomSearch::with_seed(s)))),
        (
            "annealing",
            Box::new(|s| Box::new(SimulatedAnnealing::with_seed(s))),
        ),
        (
            "nelder-mead",
            Box::new(|s| Box::new(NelderMead::with_seed(s))),
        ),
        ("torczon", Box::new(|s| Box::new(Torczon::with_seed(s)))),
        (
            "pattern",
            Box::new(|s| Box::new(PatternSearch::with_seed(s))),
        ),
        (
            "mutation",
            Box::new(|s| Box::new(GreedyMutation::with_seed(s))),
        ),
        (
            "diff-evolution",
            Box::new(|s| Box::new(DifferentialEvolution::with_seed(s))),
        ),
        (
            "particle-swarm",
            Box::new(|s| Box::new(ParticleSwarm::with_seed(s))),
        ),
        (
            "genetic",
            Box::new(|s| Box::new(GeneticAlgorithm::with_seed(s))),
        ),
        (
            "ENSEMBLE (default)",
            Box::new(|s| Box::new(Ensemble::opentuner_default(s))),
        ),
        (
            "ENSEMBLE (extended)",
            Box::new(|s| Box::new(Ensemble::extended(s))),
        ),
    ];

    let mut records = Vec::new();
    println!(
        "{:<20} | {:>12} | {:>12}",
        "technique", "mean best", "best-of-seeds"
    );
    for (name, make) in &arms {
        let (mean, best) = mean_best(&space, make, m, n, k);
        println!(
            "{:<20} | {:>9.3} us | {:>9.3} us",
            name,
            mean / 1e3,
            best / 1e3
        );
        records.push(Record {
            experiment: "tab_ensemble_ablation".into(),
            device: "GPU".into(),
            workload: name.to_string(),
            metrics: vec![("mean_ns".into(), mean), ("best_ns".into(), best)],
        });
    }

    println!("\nbandit exploration-constant sweep (default ensemble):");
    for c in [0.0f64, 0.1, 0.3, 1.0, 3.0] {
        let (mean, best) = mean_best(
            &space,
            |s| Box::new(Ensemble::opentuner_default(s).bandit_params(DEFAULT_WINDOW, c)),
            m,
            n,
            k,
        );
        println!(
            "  C = {:>4}: mean {:>9.3} us | best {:>9.3} us",
            c,
            mean / 1e3,
            best / 1e3
        );
        records.push(Record {
            experiment: "tab_ensemble_ablation".into(),
            device: "GPU".into(),
            workload: format!("exploration-{c}"),
            metrics: vec![("mean_ns".into(), mean), ("best_ns".into(), best)],
        });
    }

    write_records("tab_ensemble_ablation", &records);
    println!("\nrecords written to results/tab_ensemble_ablation.json");
}
