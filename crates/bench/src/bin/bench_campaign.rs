//! **Perf trajectory: campaign orchestration throughput** — nodes/sec
//! through the full campaign runner (validate → schedule → execute →
//! report) over a fleet of small in-process tuning sessions, serial vs
//! concurrent, and with the crash-safety journal on vs off.
//!
//! The per-node work is deliberately tiny (a 32-configuration exhaustive
//! session with an arithmetic cost), so the measured rate is dominated by
//! the orchestration itself: dependency settling, policy bookkeeping,
//! budget charging, and — in the journaled rows — two fsynced WAL appends
//! per node.
//!
//! Writes `BENCH_campaign.json` at the workspace root so orchestration
//! regressions are visible PR-over-PR.
//!
//! Run: `cargo run -p atf-bench --release --bin bench_campaign`

use atf_bench::{write_bench, Record};
use atf_core::campaign::{
    run_campaign, validate, CampaignSpec, NodeContext, NodeError, NodeExecutor, NodeRun, NodeSpec,
    RunConfig,
};
use atf_core::prelude::*;
use std::time::Instant;

const NODES: usize = 64;
const SPACE: u64 = 32;

/// Runs one small exhaustive session per node, threading the campaign's
/// budget/cancel hooks through the abort condition like the CLI executor.
struct SessionExecutor;

impl NodeExecutor for SessionExecutor {
    fn execute(&self, node: &NodeSpec, ctx: &NodeContext) -> Result<NodeRun, NodeError> {
        let group = ParamGroup::new(vec![tp("X", Range::interval(1, SPACE))]);
        let space = SearchSpace::generate(&[group]);
        let mut session = TuningSession::<f64>::new(space, Box::new(Exhaustive::new()))
            .map_err(|e| NodeError::Failed(e.to_string()))?
            .abort_condition(ctx.hooks.wrap_abort(abort::evaluations(SPACE)));
        let salt = node.name.bytes().map(u64::from).sum::<u64>() % 7;
        while let Some(config) = session.next_config() {
            let cost = ((config.get_u64("X") * 13 + salt) % 31) as f64;
            session
                .report(Ok(cost))
                .map_err(|e| NodeError::Failed(e.to_string()))?;
        }
        match session.finish() {
            Ok(r) => Ok(NodeRun {
                evaluations: r.evaluations,
                best_cost: Some(r.best_cost),
                best_config: Vec::new(),
            }),
            Err(e) => Err(NodeError::Failed(e.to_string())),
        }
    }
}

/// Builds a campaign of `n` independent nodes at the given concurrency.
fn spec(n: usize, concurrency: usize) -> CampaignSpec {
    CampaignSpec {
        campaign: "bench".into(),
        nodes: (0..n)
            .map(|i| NodeSpec {
                name: format!("node-{i:02}"),
                spec: format!("node-{i:02}.json"),
                after: Vec::new(),
                on_failure: None,
            })
            .collect(),
        budget: None,
        concurrency: Some(concurrency),
    }
}

/// Runs the campaign once and returns (nodes/sec, total evaluations).
fn run_once(concurrency: usize, journal: Option<std::path::PathBuf>) -> (f64, u64) {
    let plan = validate(&spec(NODES, concurrency)).expect("bench campaign validates");
    let cfg = RunConfig {
        journal,
        spec_hash: "bench".into(),
        ..RunConfig::default()
    };
    let t0 = Instant::now();
    let report = run_campaign(&plan, &SessionExecutor, &cfg).expect("bench campaign completes");
    let rate = NODES as f64 / t0.elapsed().as_secs_f64();
    assert!(
        report.nodes.iter().all(|n| n.outcome == "completed"),
        "every bench node must complete"
    );
    (rate, report.total_evaluations)
}

fn main() {
    println!("Campaign orchestration throughput: {NODES} nodes x {SPACE} evaluations per mode\n");
    let dir = std::env::temp_dir().join(format!("atf-bench-campaign-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("bench campaign dir");

    let mut records = Vec::new();
    let mut row = |mode: &str, rate: f64, evals: u64| {
        println!("{mode:>20} | {rate:>10.1} nodes/s | {evals:>6} evals");
        records.push(Record {
            experiment: "bench_campaign".into(),
            device: "-".into(),
            workload: mode.into(),
            metrics: vec![
                ("nodes_per_sec".into(), rate),
                ("evaluations".into(), evals as f64),
            ],
        });
    };

    for (mode, concurrency, journaled) in [
        ("serial", 1, false),
        ("concurrent_8", 8, false),
        ("serial_journal", 1, true),
        ("concurrent_8_journal", 8, true),
    ] {
        let journal = journaled.then(|| dir.join(format!("{mode}.journal")));
        let (rate, evals) = run_once(concurrency, journal);
        assert_eq!(evals, NODES as u64 * SPACE, "exactly-once evaluation count");
        row(mode, rate, evals);
    }

    std::fs::remove_dir_all(&dir).ok();
    write_bench("campaign", &records);
    println!("\ntrajectory written to BENCH_campaign.json");
}
