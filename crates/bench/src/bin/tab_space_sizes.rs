//! **Table (Section VI, text): search-space sizes** — the unconstrained
//! cross product vs the valid (constrained) space of XgemmDirect.
//!
//! Paper reference: at the routine's maximum 2¹⁰×2¹⁰ size the unconstrained
//! space exceeds 10¹⁹ configurations while ATF's constrained space is ~10⁷;
//! for IS4 the unconstrained space is 10¹³ vs 10⁶ valid (probability 10⁻⁷ of
//! hitting a valid configuration at random).
//!
//! Run: `cargo run -p atf-bench --release --bin tab_space_sizes`

use atf_bench::{write_records, Record};
use atf_core::prelude::*;
use clblast::caffe;

/// Unconstrained cross-product size for integer ranges `{1..cap}`⁶ × vector
/// widths {1,2,4,8}² × booleans²; with the paper's `{1..N}` ranges `cap`
/// is the matrix dimension.
fn unconstrained(cap: u128) -> u128 {
    cap.pow(6) * 16 * 4
}

fn main() {
    println!("Reproducing Section VI: unconstrained vs valid XgemmDirect space sizes");
    println!("(paper: >1e19 unconstrained vs ~1e7 valid at 2^10; 1e13 vs 1e6 at IS4)\n");

    let mut records = Vec::new();

    // Valid space under our WGD cap (bounded by device local memory).
    println!("valid-space counts (constrained-range generation, count-only):");
    println!(
        "{:>8} | {:>14} | {:>18} | {:>12}",
        "WGD cap", "valid", "unconstrained", "fraction"
    );
    for cap in [8u64, 16, 32, 64] {
        let valid = SearchSpace::count(&clblast::xgemm_space::atf_space_wgd_max(cap))
            .expect("space countable");
        let uncon = unconstrained(cap as u128);
        println!(
            "{:>8} | {:>14} | {:>18.3e} | {:>12.3e}",
            cap,
            valid,
            uncon as f64,
            valid as f64 / uncon as f64
        );
        records.push(Record {
            experiment: "tab_space_sizes".into(),
            device: "-".into(),
            workload: format!("cap{cap}"),
            metrics: vec![
                ("valid".into(), valid as f64),
                ("unconstrained".into(), uncon as f64),
            ],
        });
    }

    // The paper's reference points, computed with its {1..N} ranges.
    println!("\npaper reference points ({{1..N}} integer ranges):");
    println!(
        "{:>22} | {:>18} | {:>14} | {:>12}",
        "size", "unconstrained", "valid", "fraction"
    );
    let valid = SearchSpace::count(&clblast::atf_space(576, 576, 64)).expect("space countable");
    for (label, n) in [("IS4 (N = 500)", 500u128), ("2^10 x 2^10", 1024)] {
        // With {1..N} ranges the *unconstrained* space keeps growing, but
        // the *valid* one does not: WGD (and every parameter dividing it)
        // is capped by local memory at 77, so the valid count equals the
        // WGD-capped count.
        let uncon = unconstrained(n);
        println!(
            "{:>22} | {:>18.3e} | {:>14} | {:>12.3e}",
            label,
            uncon as f64,
            valid,
            valid as f64 / uncon as f64
        );
        records.push(Record {
            experiment: "tab_space_sizes".into(),
            device: "-".into(),
            workload: label.into(),
            metrics: vec![
                ("valid".into(), valid as f64),
                ("unconstrained".into(), uncon as f64),
            ],
        });
    }

    // Per-IS summary with the ranges the Figure-2 experiment uses (cap 64).
    println!("\nFigure-2 experiment spaces (ranges capped at WGD_MAX = 64):");
    let uncon = unconstrained(64);
    for (label, &(m, n, k)) in caffe::LABELS.iter().zip(&caffe::INPUT_SIZES) {
        let valid = SearchSpace::count(&clblast::atf_space(m, n, k)).expect("space countable");
        let limited =
            SearchSpace::count(&clblast::clblast_limited_space(m, n, k)).expect("space countable");
        println!(
            "  {label}: valid {valid} | CLBlast-limited {limited} | unconstrained {:.3e} | valid fraction {:.3e}",
            uncon as f64,
            valid as f64 / uncon as f64
        );
    }

    write_records("tab_space_sizes", &records);
    println!("\nrecords written to results/tab_space_sizes.json");
}
