//! **Perf trajectory: service session throughput** — sessions/sec through
//! the full `SessionManager` open → next/report → finish cycle, with and
//! without the persistent space cache.
//!
//! Writes `BENCH_session.json` at the workspace root so service-side
//! regressions (slower opens, lost cache hits) are visible PR-over-PR.
//!
//! Run: `cargo run -p atf-bench --release --bin bench_session`

use atf_bench::{write_bench, Record};
use atf_core::prelude::*;
use atf_service::{ManagerConfig, Request, SessionManager};
use std::time::Instant;

/// An `open` request over one constrained divisor-chain group — small
/// enough to tune exhaustively, large enough that generation is visible.
fn open_request(kernel: &str) -> Request {
    let mut req = Request::new("open");
    req.kernel = Some(kernel.to_string());
    req.parameters = Some(vec![
        ParameterSpec {
            name: "WPT".into(),
            interval: Some(IntervalSpec {
                begin: 1,
                end: 64,
                step: 1,
            }),
            set: None,
            constraint: Some("divides(64)".into()),
        },
        ParameterSpec {
            name: "LS".into(),
            interval: Some(IntervalSpec {
                begin: 1,
                end: 64,
                step: 1,
            }),
            set: None,
            constraint: Some("divides(WPT)".into()),
        },
    ]);
    req.search = Some(SearchSpec {
        technique: "exhaustive".into(),
        seed: 0,
    });
    req
}

/// Runs one full session: open, drive to completion, finish. Returns the
/// number of evaluations performed plus the session's space-cache counters
/// (metrics are per-session, so these are 0/1 flags for this open).
fn run_session(manager: &SessionManager, kernel: &str) -> (u64, u64, u64) {
    let opened = manager.handle(&open_request(kernel));
    assert!(opened.ok, "{opened:?}");
    let id = opened.session.unwrap();
    let stats = manager
        .handle(&Request::new("stats").with_session(&id))
        .stats
        .expect("stats snapshot");
    loop {
        let next = manager.handle(&Request::new("next").with_session(&id));
        assert!(next.ok, "{next:?}");
        if next.done == Some(true) {
            break;
        }
        let cfg = next.config.unwrap();
        let mut report = Request::new("report").with_session(&id);
        report.cost = Some((cfg["WPT"] * 7 + cfg["LS"]) as f64);
        let r = manager.handle(&report);
        assert!(r.ok, "{r:?}");
    }
    let finished = manager.handle(&Request::new("finish").with_session(&id));
    assert!(finished.ok, "{finished:?}");
    (
        finished.evaluations.unwrap_or(0),
        stats.space_cache_hits,
        stats.space_cache_misses,
    )
}

/// Measures sessions/sec over `n` sequential sessions on a manager,
/// summing evaluations and space-cache hits/misses across sessions.
fn throughput(manager: &SessionManager, n: usize, label: &str) -> (f64, u64, u64, u64) {
    let t0 = Instant::now();
    let (mut evals, mut hits, mut misses) = (0, 0, 0);
    for i in 0..n {
        let (e, h, m) = run_session(manager, &format!("{label}-{i}"));
        evals += e;
        hits += h;
        misses += m;
    }
    (n as f64 / t0.elapsed().as_secs_f64(), evals, hits, misses)
}

fn main() {
    const SESSIONS: usize = 50;
    println!("Service session throughput: {SESSIONS} open/drive/finish cycles per mode\n");

    let mut records = Vec::new();
    let mut row = |mode: &str, rate: f64, evals: u64, hits: u64, misses: u64| {
        println!("{mode:>14} | {rate:>10.1} sessions/s | {evals:>6} evals | cache {hits} hits / {misses} misses");
        records.push(Record {
            experiment: "bench_session".into(),
            device: "-".into(),
            workload: mode.into(),
            metrics: vec![
                ("sessions_per_sec".into(), rate),
                ("evaluations".into(), evals as f64),
                ("space_cache_hits".into(), hits as f64),
                ("space_cache_misses".into(), misses as f64),
            ],
        });
    };

    // No cache: every open generates the space from scratch.
    let manager = SessionManager::in_memory();
    let (rate, evals, hits, misses) = throughput(&manager, SESSIONS, "nocache");
    row("no_cache", rate, evals, hits, misses);

    // With cache: the first open misses and stores; the rest hit the
    // persisted entry (same spec across all sessions).
    let dir = std::env::temp_dir().join(format!("atf-bench-session-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let manager = SessionManager::new(ManagerConfig {
        space_cache: Some(dir.clone()),
        ..ManagerConfig::default()
    })
    .expect("manager with space cache");
    let (rate, evals, hits, misses) = throughput(&manager, SESSIONS, "cached");
    assert_eq!(
        (hits, misses),
        (SESSIONS as u64 - 1, 1),
        "expected every open after the first to hit the space cache"
    );
    row("space_cache", rate, evals, hits, misses);
    std::fs::remove_dir_all(&dir).ok();

    // Database persistence cost per store, old path vs new: the legacy
    // whole-file rewrite scales O(records) per store, the record log
    // appends O(1) line. Measured over a 512-record base database.
    let (rewrite_us, rewrite_bytes, append_us, append_bytes) = bench_db_store();
    println!(
        "\nDatabase persist per store over 512 records: \
         rewrite {rewrite_us:.0} us / {rewrite_bytes} B vs \
         append {append_us:.0} us / {append_bytes} B"
    );
    for (mode, us, bytes) in [
        ("db_rewrite", rewrite_us, rewrite_bytes),
        ("db_append", append_us, append_bytes),
    ] {
        records.push(Record {
            experiment: "bench_session".into(),
            device: "-".into(),
            workload: mode.into(),
            metrics: vec![
                ("store_us".into(), us),
                ("bytes_per_store".into(), bytes as f64),
            ],
        });
    }

    write_bench("session", &records);
    println!("\ntrajectory written to BENCH_session.json");
}

/// Times one persisted store against a 512-record database, both ways:
/// legacy `save` (whole-file rewrite) and `DatabaseLog::append` (one
/// NDJSON line + fsync). Returns (rewrite µs, rewrite bytes, append µs,
/// append bytes), averaged over 64 stores each.
fn bench_db_store() -> (f64, u64, f64, u64) {
    use atf_core::db::{DatabaseLog, TuningDatabase};
    const BASE: u64 = 512;
    const STORES: u32 = 64;
    let config = |i: u64| {
        atf_core::config::Config::from_pairs([
            ("WPT", atf_core::value::Value::UInt(i % 64 + 1)),
            ("LS", atf_core::value::Value::UInt(i % 8 + 1)),
        ])
    };
    let mut db = TuningDatabase::new();
    for i in 0..BASE {
        db.store(&format!("k{i}"), "dev", "w", &config(i), 50.0, 10, 64);
    }
    let dir = std::env::temp_dir().join(format!("atf-bench-db-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("bench db dir");

    // Old path: every store rewrites the whole pretty-printed file.
    let rewrite_path = dir.join("rewrite.json");
    let t0 = Instant::now();
    for i in 0..STORES {
        db.store(
            &format!("k{}", u64::from(i) % BASE),
            "dev",
            "w",
            &config(u64::from(i)),
            49.0 - f64::from(i) / 100.0,
            10,
            64,
        );
        db.save(&rewrite_path).expect("legacy save");
    }
    let rewrite_us = t0.elapsed().as_micros() as f64 / f64::from(STORES);
    let rewrite_bytes = std::fs::metadata(&rewrite_path)
        .map(|m| m.len())
        .unwrap_or(0);

    // New path: every store appends one record line to the log.
    let append_path = dir.join("append.json");
    let (_loaded, mut log) = DatabaseLog::open(&append_path).expect("open log");
    let t0 = Instant::now();
    for i in 0..STORES {
        let kernel = format!("k{}", u64::from(i) % BASE);
        db.store(
            &kernel,
            "dev",
            "w",
            &config(u64::from(i)),
            48.0 - f64::from(i) / 100.0,
            10,
            64,
        );
        let record = db.record(&kernel, "dev", "w").expect("stored record");
        log.append(&record).expect("append");
    }
    let append_us = t0.elapsed().as_micros() as f64 / f64::from(STORES);
    let append_bytes = std::fs::metadata(&append_path)
        .map(|m| m.len() / u64::from(STORES))
        .unwrap_or(0);
    std::fs::remove_dir_all(&dir).ok();
    (rewrite_us, rewrite_bytes, append_us, append_bytes)
}
