//! **Table (Section VI-A, text): constraint relaxation** — ATF can express
//! CLBlast's padded global size as arithmetic over tuning parameters, so it
//! can *drop* the `WGD divides rows/columns` constraints CLTune needs. The
//! larger valid space contains better configurations.
//!
//! Paper reference (IS4): the relaxation improves ATF's speedup over CLTune
//! from 12.85× to 17.60× on the CPU and from 2.89× to 3.62× on the GPU.
//!
//! Run: `cargo run -p atf-bench --release --bin tab_constraint_relaxation`

use atf_bench::{devices, fmt_ns, write_records, xgemm_cost_function, Record};
use atf_core::prelude::*;
use clblast::caffe;

const BUDGET: u64 = 4_000;
/// Independent search restarts; the best of all restarts is reported
/// (mirrors the paper's long tuning sessions at simulator speed).
const RESTARTS: u64 = 3;

fn main() {
    println!("Reproducing Section VI-A: effect of dropping CLTune's global/local-size constraints");
    println!("(paper, IS4: CPU speedup 12.85x -> 17.60x; GPU 2.89x -> 3.62x)\n");

    let mut records = Vec::new();
    for (dev_label, device) in devices() {
        println!("=== {dev_label}: {} ===", device.name);
        println!(
            "  {:>4} | {:>14} | {:>14} | {:>14} | {:>12}",
            "IS", "space (CLT-cstr)", "space (full)", "best CLT-cstr", "best full"
        );
        for (label, &(m, n, k)) in caffe::LABELS.iter().zip(&caffe::INPUT_SIZES) {
            let constrained_groups = clblast::atf_space_cltune_constraints(m, n, k);
            let full_groups = clblast::atf_space(m, n, k);
            let constrained_size =
                SearchSpace::count(&constrained_groups).expect("space countable");
            let full_size = SearchSpace::count(&full_groups).expect("space countable");

            // The constrained space is small enough to search exhaustively.
            let mut cf = xgemm_cost_function(device.clone(), m, n, k);
            let best_constrained = Tuner::new()
                .technique(Exhaustive::new())
                .tune(&constrained_groups, &mut cf)
                .expect("constrained space non-empty at these sizes")
                .best_cost;

            let mut best_full = f64::INFINITY;
            for restart in 0..RESTARTS {
                let mut cf = xgemm_cost_function(device.clone(), m, n, k);
                let r = Tuner::new()
                    .technique(Ensemble::opentuner_default(0x11 + restart))
                    .abort_condition(abort::evaluations(BUDGET))
                    .tune(&full_groups, &mut cf)
                    .expect("full space non-empty");
                best_full = best_full.min(r.best_cost);
            }

            println!(
                "  {:>4} | {:>16} | {:>14} | {:>14} | {:>12}   (improvement {:.2}x)",
                label,
                constrained_size,
                full_size,
                fmt_ns(best_constrained),
                fmt_ns(best_full),
                best_constrained / best_full,
            );
            records.push(Record {
                experiment: "tab_constraint_relaxation".into(),
                device: dev_label.into(),
                workload: label.to_string(),
                metrics: vec![
                    ("constrained_space".into(), constrained_size as f64),
                    ("full_space".into(), full_size as f64),
                    ("best_constrained_ns".into(), best_constrained),
                    ("best_full_ns".into(), best_full),
                    ("improvement".into(), best_constrained / best_full),
                ],
            });
        }
        println!();
    }
    write_records("tab_constraint_relaxation", &records);
    println!("records written to results/tab_constraint_relaxation.json");
}
