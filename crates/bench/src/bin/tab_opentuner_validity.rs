//! **Table (Section VI-B, text): OpenTuner validity** — with an
//! unconstrained space, valid XgemmDirect configurations are so rare
//! (paper: probability ~10⁻⁷ at IS4) that penalty-driven search finds none
//! within 10 000 evaluations.
//!
//! Run: `cargo run -p atf-bench --release --bin tab_opentuner_validity`

use atf_bench::{devices, write_records, xgemm_cost_function, Record};
use atf_core::prelude::*;
use baselines::OpenTunerStyleTuner;
use clblast::caffe;
use rand::{Rng, SeedableRng};

const BUDGET: u64 = 10_000;

/// Monte-Carlo estimate of the valid fraction of the unconstrained space.
fn estimate_valid_fraction(trials: u64, seed: u64) -> f64 {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let params = clblast::unconstrained_params(64);
    let mut valid = 0u64;
    for _ in 0..trials {
        let cfg = Config::from_pairs(params.iter().map(|(name, range)| {
            let v = range[rng.gen_range(0..range.len())];
            if name.starts_with("PAD") {
                (name.as_str(), atf_core::value::Value::Bool(v != 0))
            } else {
                (name.as_str(), atf_core::value::Value::UInt(v))
            }
        }));
        if clblast::config_is_valid(&cfg) {
            valid += 1;
        }
    }
    valid as f64 / trials as f64
}

fn main() {
    println!("Reproducing Section VI-B: OpenTuner on the unconstrained XgemmDirect space");
    println!("(paper: no valid configuration within 10 000 evaluations; valid fraction ~1e-7)\n");

    let ot_space: u128 = clblast::unconstrained_params(64)
        .iter()
        .map(|(_, r)| r.len() as u128)
        .product();
    let valid = SearchSpace::count(&clblast::atf_space(576, 576, 64)).expect("space countable");
    let exact_fraction = valid as f64 / ot_space as f64;
    let mc_fraction = estimate_valid_fraction(2_000_000, 0xbeef);
    println!(
        "unconstrained space: {:.3e} configurations",
        ot_space as f64
    );
    println!("valid (ATF-counted): {valid} → exact fraction {exact_fraction:.3e}");
    println!("Monte-Carlo estimate (2e6 samples): {mc_fraction:.3e}\n");

    let mut records = vec![Record {
        experiment: "tab_opentuner_validity".into(),
        device: "-".into(),
        workload: "space".into(),
        metrics: vec![
            ("unconstrained".into(), ot_space as f64),
            ("valid".into(), valid as f64),
            ("exact_fraction".into(), exact_fraction),
            ("mc_fraction".into(), mc_fraction),
        ],
    }];

    println!(
        "{:>4} | {:>4} | {:>11} | {:>13} | {:>18}",
        "dev", "IS", "evaluations", "valid found", "best valid cost"
    );
    for (dev_label, device) in devices() {
        for (label, &(m, n, k)) in caffe::LABELS.iter().zip(&caffe::INPUT_SIZES) {
            let mut ot = OpenTunerStyleTuner::from_u64_ranges(clblast::unconstrained_params(64))
                .seed(0x5eed ^ m ^ n);
            let mut cf = xgemm_cost_function(device.clone(), m, n, k);
            let r = ot.tune(BUDGET, &mut cf);
            let best = r
                .best
                .as_ref()
                .map(|(_, c)| format!("{:.2} us", c / 1e3))
                .unwrap_or_else(|| "none found".to_string());
            println!(
                "{:>4} | {:>4} | {:>11} | {:>13} | {:>18}",
                dev_label, label, r.evaluations, r.valid_evaluations, best
            );
            records.push(Record {
                experiment: "tab_opentuner_validity".into(),
                device: dev_label.into(),
                workload: label.to_string(),
                metrics: vec![
                    ("evaluations".into(), r.evaluations as f64),
                    ("valid".into(), r.valid_evaluations as f64),
                    (
                        "best_ns".into(),
                        r.best.as_ref().map(|(_, c)| *c).unwrap_or(f64::NAN),
                    ),
                ],
            });
        }
    }

    write_records("tab_opentuner_validity", &records);
    println!("\nrecords written to results/tab_opentuner_validity.json");
}
