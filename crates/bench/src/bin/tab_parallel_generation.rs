//! **Section V / Figure 1: parallel search-space generation** — each
//! group's valid sub-space is generated with chunked intra-group
//! parallelism (the leading parameter's candidates are partitioned into
//! chunks enumerated concurrently, concatenated deterministically); the
//! full space is the indexable cross product of the group spaces.
//!
//! Run: `cargo run -p atf-bench --release --bin tab_parallel_generation`

use atf_bench::{write_records, Record};
use atf_core::constraint::divides;
use atf_core::expr::param;
use atf_core::prelude::*;
use atf_core::spacegen::generate_group_chunked;
use atf_core::trace::NullSink;
use std::time::Instant;

/// `g` independent groups, each a WPT/LS-style divisor chain over `1..=n` —
/// a scaled-up version of the paper's Figure-1 example.
fn independent_groups(g: usize, n: u64) -> Vec<ParamGroup> {
    (0..g)
        .map(|i| {
            let a = format!("tp{}_a", i);
            let b = format!("tp{}_b", i);
            ParamGroup::new(vec![
                tp(a.clone(), Range::interval(1, n)),
                tp_c(b, Range::interval(1, n), divides(param(a))),
            ])
        })
        .collect()
}

fn main() {
    println!("Reproducing Section V: parallel search-space generation");
    println!(
        "(host has {} hardware threads; chunked intra-group parallelism)\n",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );

    // First: the paper's exact Figure-1 example.
    let fig1 = vec![
        ParamGroup::new(vec![
            tp("tp1", Range::set([1u64, 2])),
            tp_c("tp2", Range::set([1u64, 2]), divides(param("tp1"))),
        ]),
        ParamGroup::new(vec![
            tp("tp3", Range::set([1u64, 2])),
            tp_c("tp4", Range::set([1u64, 2]), divides(param("tp3"))),
        ]),
    ];
    let space = SearchSpace::generate_parallel(&fig1);
    println!(
        "Figure-1 example: group sizes {:?}, total space {} (3 x 3)\n",
        space.dims(),
        space.len()
    );
    assert_eq!(space.len(), 9);

    println!(
        "{:>7} | {:>6} | {:>14} | {:>12} | {:>12} | {:>8}",
        "groups", "range", "space size", "sequential", "parallel", "speedup"
    );
    let mut records = Vec::new();
    for (g, n) in [(2usize, 1024u64), (4, 1024), (8, 768), (16, 512)] {
        let groups = independent_groups(g, n);
        let t0 = Instant::now();
        let seq = SearchSpace::generate(&groups);
        let t_seq = t0.elapsed();
        let t0 = Instant::now();
        let par = SearchSpace::generate_parallel(&groups);
        let t_par = t0.elapsed();
        assert_eq!(seq.len(), par.len());
        println!(
            "{:>7} | {:>6} | {:>14.3e} | {:>12.2?} | {:>12.2?} | {:>7.2}x",
            g,
            n,
            seq.len() as f64,
            t_seq,
            t_par,
            t_seq.as_secs_f64() / t_par.as_secs_f64()
        );
        records.push(Record {
            experiment: "tab_parallel_generation".into(),
            device: "-".into(),
            workload: format!("g{g}_n{n}"),
            metrics: vec![
                ("space".into(), seq.len() as f64),
                ("sequential_s".into(), t_seq.as_secs_f64()),
                ("parallel_s".into(), t_par.as_secs_f64()),
                ("speedup".into(), t_seq.as_secs_f64() / t_par.as_secs_f64()),
            ],
        });
    }
    // Chunked intra-group parallelism on one heavily-constrained group:
    // the same space generated at 1, 2, and 8 threads must be
    // bit-identical, with the multi-thread runs exercising the chunk
    // scheduler.
    println!("\nchunked intra-group generation (XgemmDirect, cap 32):");
    println!(
        "{:>8} | {:>12} | {:>12} | {:>8}",
        "threads", "space", "time", "speedup"
    );
    let group = &clblast::xgemm_space::atf_space_wgd_max(32)[0];
    let mut base = None;
    for threads in [1usize, 2, 8] {
        let t0 = Instant::now();
        let gs = generate_group_chunked(group, threads, u64::MAX, None, &NullSink, 0)
            .expect("unlimited generation cannot fail");
        let t = t0.elapsed().as_secs_f64();
        let base_t = *base.get_or_insert(t);
        println!(
            "{:>8} | {:>12} | {:>10.2}ms | {:>7.2}x",
            threads,
            gs.len(),
            t * 1e3,
            base_t / t
        );
        records.push(Record {
            experiment: "tab_parallel_generation".into(),
            device: "-".into(),
            workload: format!("chunked_t{threads}"),
            metrics: vec![
                ("space".into(), gs.len() as f64),
                ("seconds".into(), t),
                ("speedup".into(), base_t / t),
            ],
        });
    }
    write_records("tab_parallel_generation", &records);
    println!("\n(on a single-core host the parallel paths show thread overhead, not speedup;");
    println!(" the experiment still validates equivalence of the generation modes)");
    println!("records written to results/tab_parallel_generation.json");
}
