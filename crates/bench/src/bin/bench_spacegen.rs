//! **Perf trajectory: search-space construction** — compiled-constraint
//! generation and chunked intra-group parallelism vs the per-candidate
//! predicate-evaluation reference walk, on the benchmark spaces.
//!
//! Writes `BENCH_spacegen.json` at the workspace root so generation-time
//! regressions (or lost speedups) are visible PR-over-PR. Every measured
//! mode is also checked bit-identical against the reference generator.
//!
//! Run: `cargo run -p atf-bench --release --bin bench_spacegen`

use atf_bench::{fmt_ns, write_bench, Record};
use atf_core::prelude::*;
use atf_core::spacegen::{default_threads, generate_group_chunked};
use atf_core::trace::NullSink;
use std::time::Instant;

/// The benchmark spaces: name → parameter groups. XgemmDirect with growing
/// range caps is the heavily-constrained case (valid fraction shrinks as
/// the cap grows); saxpy is the small divisor-chain case.
fn spaces() -> Vec<(&'static str, Vec<ParamGroup>)> {
    vec![
        ("saxpy_4096", clblast::saxpy_space(4096)),
        ("xgemm_cap16", clblast::xgemm_space::atf_space_wgd_max(16)),
        ("xgemm_cap32", clblast::xgemm_space::atf_space_wgd_max(32)),
        ("xgemm_cap48", clblast::xgemm_space::atf_space_wgd_max(48)),
    ]
}

/// Asserts two group spaces are bit-identical (same names, same
/// configurations in the same order).
fn assert_identical(a: &GroupSpace, b: &GroupSpace, what: &str) {
    assert_eq!(a.names(), b.names(), "{what}: parameter names differ");
    assert_eq!(a.len(), b.len(), "{what}: space sizes differ");
    for i in 0..a.len() {
        assert_eq!(a.values(i), b.values(i), "{what}: config {i} differs");
    }
}

fn main() {
    let threads = default_threads();
    println!(
        "Search-space construction: reference walk vs compiled vs chunked ({threads} threads)\n"
    );
    println!(
        "{:>12} | {:>10} | {:>11} | {:>11} | {:>11} | {:>9} | {:>9}",
        "space", "valid", "reference", "compiled", "chunked", "comp x", "chunk x"
    );

    let mut records = Vec::new();
    let mut best_speedup = 0.0f64;
    for (name, groups) in spaces() {
        // Correctness pass (untimed): compare modes pairwise, dropping
        // each space before the next so at most two are ever live —
        // holding several multi-million-config spaces while timing
        // dominates the measurement with allocator pressure.
        let mut valid = 0u64;
        for (gi, group) in groups.iter().enumerate() {
            let reference = GroupSpace::generate_reference(group);
            valid += reference.len();
            let compiled = GroupSpace::generate(group);
            assert_identical(&reference, &compiled, name);
            drop(compiled);
            let chunked = generate_group_chunked(group, threads, u64::MAX, None, &NullSink, gi)
                .expect("unlimited generation cannot fail");
            assert_identical(&reference, &chunked, name);
        }

        // Timing pass: one mode at a time, result dropped before the
        // next measurement starts.
        let mut t_ref = 0.0;
        let mut t_comp = 0.0;
        let mut t_chunk = 0.0;
        for (gi, group) in groups.iter().enumerate() {
            let t0 = Instant::now();
            drop(GroupSpace::generate_reference(group));
            t_ref += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            drop(GroupSpace::generate(group));
            t_comp += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            drop(
                generate_group_chunked(group, threads, u64::MAX, None, &NullSink, gi)
                    .expect("unlimited generation cannot fail"),
            );
            t_chunk += t0.elapsed().as_secs_f64();
        }
        let comp_speedup = t_ref / t_comp.max(1e-12);
        let chunk_speedup = t_ref / t_chunk.max(1e-12);
        best_speedup = best_speedup.max(comp_speedup).max(chunk_speedup);
        println!(
            "{:>12} | {:>10} | {:>11} | {:>11} | {:>11} | {:>8.2}x | {:>8.2}x",
            name,
            valid,
            fmt_ns(t_ref * 1e9),
            fmt_ns(t_comp * 1e9),
            fmt_ns(t_chunk * 1e9),
            comp_speedup,
            chunk_speedup,
        );
        records.push(Record {
            experiment: "bench_spacegen".into(),
            device: "-".into(),
            workload: name.into(),
            metrics: vec![
                ("valid".into(), valid as f64),
                ("reference_s".into(), t_ref),
                ("compiled_s".into(), t_comp),
                ("chunked_s".into(), t_chunk),
                ("threads".into(), threads as f64),
                ("compiled_speedup".into(), comp_speedup),
                ("chunked_speedup".into(), chunk_speedup),
            ],
        });
    }
    write_bench("spacegen", &records);

    println!("\nall modes bit-identical to the reference generator");
    println!("best measured speedup over reference: {best_speedup:.2}x");
    println!("trajectory written to BENCH_spacegen.json");
}
