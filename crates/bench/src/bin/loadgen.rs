//! **Overload curve: sessions/sec, p99 latency, and shed rate under
//! synthetic tenant storms** — N tenant threads hammer a quota-limited
//! service through the chaos proxy; the load level rises per round and the
//! admission counters show how much of the storm was shed.
//!
//! Every tenant drives full open → next/report → finish sessions over a
//! self-healing [`ReconnectingTransport`], so shed (`overloaded`) answers
//! are retried after the service's `retry_after_ms` hint and connection
//! faults injected by the proxy are absorbed by the exactly-once protocol.
//!
//! Two more sweeps ride along: the shard sweep (loopback clients against
//! 1/4/16 manager shards vs the single-lock whole-file-rewrite baseline)
//! and the connection sweep (64 active TCP clients while 64/512/2048
//! connections sit open in the poll(2) reactor's fd set — the process
//! thread count must stay flat as the fleet grows).
//!
//! Writes `BENCH_loadgen.json` at the workspace root so overload-behavior
//! regressions (collapsing throughput, runaway p99, silent sheds) are
//! visible PR-over-PR.
//!
//! Run: `cargo run -p atf-bench --release --bin loadgen [-- --quick]`

use atf_bench::{write_bench, Record};
use atf_core::spec::{IntervalSpec, ParameterSpec, SearchSpec};
use atf_service::{
    AdmissionConfig, ChaosPlan, ChaosProxy, Client, ManagerConfig, ReconnectingTransport, Server,
    ServerConfig, SessionManager, SessionSpec,
};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Global session quota of the service under load — small, so every round
/// beyond the first offers more load than the service admits.
const MAX_SESSIONS: usize = 4;
/// Per-tenant session quota.
const MAX_PER_TENANT: usize = 2;

/// A tiny tuning spec (6-point exhaustive space): the storm stresses
/// admission and the wire, not the search.
fn tenant_spec(tenant: usize) -> SessionSpec {
    let mut spec = SessionSpec::new("loadgen");
    spec.tenant = Some(format!("tenant-{tenant}"));
    spec.parameters = vec![ParameterSpec {
        name: "X".into(),
        interval: Some(IntervalSpec {
            begin: 1,
            end: 6,
            step: 1,
        }),
        set: None,
        constraint: None,
    }];
    spec.search = Some(SearchSpec {
        technique: "exhaustive".into(),
        seed: 0,
    });
    spec
}

struct RoundResult {
    sessions: u64,
    /// Wall-clock of each completed open→finish cycle, milliseconds.
    latencies_ms: Vec<f64>,
    /// Opens that stayed `overloaded` even after the client's retry budget.
    gave_up: u64,
    elapsed: Duration,
    admitted: u64,
    shed_opens: u64,
    shed_requests: u64,
    rejected_connections: u64,
}

/// One load level: `tenants` threads against a fresh quota-limited service
/// behind a fresh chaos proxy, for `duration`.
fn run_round(tenants: usize, duration: Duration, seed: u64) -> RoundResult {
    let manager = Arc::new(
        SessionManager::new(ManagerConfig {
            admission: AdmissionConfig {
                max_sessions: Some(MAX_SESSIONS),
                max_sessions_per_tenant: Some(MAX_PER_TENANT),
                // Short hint: shed retries should resolve within the round.
                retry_after: Duration::from_millis(5),
                ..AdmissionConfig::default()
            },
            ..ManagerConfig::default()
        })
        .expect("in-memory manager"),
    );
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&manager),
        ServerConfig {
            read_poll: Duration::from_millis(50),
            drain_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr().expect("server addr");
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());
    let mut proxy = ChaosProxy::spawn(addr, ChaosPlan::hostile(seed)).expect("chaos proxy");
    let proxy_addr = proxy.addr().to_string();

    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let sessions = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let gave_up = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for tenant in 0..tenants {
            let proxy_addr = proxy_addr.clone();
            let latencies = Arc::clone(&latencies);
            let sessions = Arc::clone(&sessions);
            let gave_up = Arc::clone(&gave_up);
            scope.spawn(move || {
                // A generous retry budget: chaos faults and shed answers
                // both draw from it, and the jittered backoff starts low.
                let mut client = Client::new(ReconnectingTransport::tcp(
                    &proxy_addr,
                    12,
                    Duration::from_millis(2),
                ));
                let spec = tenant_spec(tenant);
                while started.elapsed() < duration {
                    let t0 = Instant::now();
                    let id = match client.open(&spec) {
                        Ok(id) => id,
                        Err(_) => {
                            // Retry budget exhausted (still overloaded, or
                            // chaos won): an explicitly answered give-up.
                            gave_up.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            continue;
                        }
                    };
                    let mut completed = true;
                    loop {
                        match client.next(&id) {
                            Ok(Some(cfg)) => {
                                let cost = (cfg["X"] as f64 - 4.0).abs();
                                if client.report(&id, Some(cost)).is_err() {
                                    completed = false;
                                    break;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                completed = false;
                                break;
                            }
                        }
                    }
                    if completed && client.finish(&id).is_ok() {
                        sessions.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        latencies
                            .lock()
                            .expect("latency lock")
                            .push(t0.elapsed().as_secs_f64() * 1000.0);
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    proxy.stop();
    shutdown.signal();
    let _ = server_thread.join();

    let admission = manager.metrics().snapshot().admission;
    let latencies_ms = std::mem::take(&mut *latencies.lock().expect("latency lock"));
    RoundResult {
        sessions: sessions.load(std::sync::atomic::Ordering::Relaxed),
        latencies_ms,
        gave_up: gave_up.load(std::sync::atomic::Ordering::Relaxed),
        elapsed,
        admitted: admission.admitted_sessions,
        shed_opens: admission.shed_opens,
        shed_requests: admission.shed_requests,
        rejected_connections: admission.rejected_connections,
    }
}

/// One shard-sweep round: `clients` threads hammer a manager over the
/// in-process loopback client, each driving full open → next/report →
/// finish sessions — no proxy, no quotas, so the session-manager locks
/// and the database persist path are the bottleneck. `legacy_rewrite`
/// emulates the pre-log single-lock baseline: a whole-file database
/// rewrite under the db lock after every finish, exactly what the old
/// manager's `merge_result` did.
fn run_shard_round(
    shards: usize,
    legacy_rewrite: bool,
    clients: usize,
    duration: Duration,
) -> (u64, Duration) {
    let dir = std::env::temp_dir().join(format!(
        "atf-loadgen-shards-{}-{}-{}",
        shards,
        legacy_rewrite,
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("loadgen db dir");
    let db_path = dir.join("db.json");
    let manager = Arc::new(
        SessionManager::new(ManagerConfig {
            // The baseline persists by explicit whole-file rewrite below;
            // the sharded rounds go through the append log.
            db_path: (!legacy_rewrite).then(|| db_path.clone()),
            shards: Some(shards),
            ..ManagerConfig::default()
        })
        .expect("loadgen manager"),
    );
    // Pre-seed 256 records so the legacy baseline rewrites a realistically
    // sized file (O(records) bytes per finish vs one appended line).
    manager.with_db_mut(|db| {
        use atf_core::config::Config;
        use atf_core::value::Value;
        for i in 0..256u64 {
            db.store(
                &format!("seed{i}"),
                "dev",
                "w",
                &Config::from_pairs([("X", Value::UInt(i % 6 + 1))]),
                100.0,
                6,
                6,
            );
        }
    });

    let sessions = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for tenant in 0..clients {
            let manager = Arc::clone(&manager);
            let sessions = Arc::clone(&sessions);
            let db_path = db_path.clone();
            scope.spawn(move || {
                let mut client = Client::loopback(Arc::clone(&manager));
                let spec = tenant_spec(tenant);
                while started.elapsed() < duration {
                    let Ok(id) = client.open(&spec) else { continue };
                    let mut completed = true;
                    loop {
                        match client.next(&id) {
                            Ok(Some(cfg)) => {
                                let cost = (cfg["X"] as f64 - 4.0).abs();
                                if client.report(&id, Some(cost)).is_err() {
                                    completed = false;
                                    break;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                completed = false;
                                break;
                            }
                        }
                    }
                    if completed && client.finish(&id).is_ok() {
                        if legacy_rewrite {
                            // The old persist path, bug included: the db
                            // lock is held across the file rewrite.
                            manager.with_db(|db| db.save(&db_path).expect("legacy rewrite"));
                        }
                        sessions.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    std::fs::remove_dir_all(&dir).ok();
    (sessions.load(std::sync::atomic::Ordering::Relaxed), elapsed)
}

/// Threads of this process, from /proc (None off Linux): the evidence
/// that connection count no longer buys a thread each.
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

struct ConnRound {
    sessions: u64,
    elapsed: Duration,
    /// Process thread count with every connection open, *before* the
    /// active-client threads start (so it isolates the server's budget).
    threads_with_conns: Option<usize>,
    registered_fds: u64,
}

/// One connection-sweep round: `total` concurrently open connections to a
/// reactor-backed TCP server — `active` of them driven by real tuning
/// clients, the rest pinged once and left idle — for `duration`. Under
/// the old thread-per-connection server the thread count tracked `total`;
/// the reactor serves any `total` with the same few threads.
fn run_connection_round(total: usize, active: usize, duration: Duration) -> ConnRound {
    use std::io::{BufRead, BufReader, Write};

    let manager = Arc::new(SessionManager::new(ManagerConfig::default()).expect("manager"));
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&manager),
        ServerConfig {
            max_connections: Some(total + active + 8),
            drain_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr().expect("server addr");
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    // The mostly-idle fleet: each connection proves it is registered and
    // served (one ping round trip), then just sits in the poll set.
    let idle_count = total.saturating_sub(active);
    let mut idle = Vec::with_capacity(idle_count);
    for i in 0..idle_count {
        let mut stream =
            std::net::TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle connect #{i}: {e}"));
        stream
            .write_all(b"{\"cmd\":\"ping\"}\n")
            .expect("idle ping");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("idle pong");
        idle.push(stream);
    }
    let threads_with_conns = process_threads();
    let registered_fds = manager.metrics().snapshot().reactor.registered_fds;

    let sessions = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for tenant in 0..active {
            let sessions = Arc::clone(&sessions);
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(addr) else {
                    return;
                };
                let spec = tenant_spec(tenant);
                while started.elapsed() < duration {
                    let Ok(id) = client.open(&spec) else { continue };
                    let mut completed = true;
                    loop {
                        match client.next(&id) {
                            Ok(Some(cfg)) => {
                                let cost = (cfg["X"] as f64 - 4.0).abs();
                                if client.report(&id, Some(cost)).is_err() {
                                    completed = false;
                                    break;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                completed = false;
                                break;
                            }
                        }
                    }
                    if completed && client.finish(&id).is_ok() {
                        sessions.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    drop(idle);
    shutdown.signal();
    let _ = server_thread.join();
    ConnRound {
        sessions: sessions.load(std::sync::atomic::Ordering::Relaxed),
        elapsed,
        threads_with_conns,
        registered_fds,
    }
}

fn p99(latencies: &mut [f64]) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let idx = ((latencies.len() as f64) * 0.99).ceil() as usize;
    latencies[idx.saturating_sub(1).min(latencies.len() - 1)]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (levels, secs_per_level): (&[usize], u64) = if quick {
        (&[2, 8], 2)
    } else {
        (&[2, 4, 8, 16], 5)
    };
    println!(
        "Overload curve: quota {MAX_SESSIONS} sessions ({MAX_PER_TENANT}/tenant), \
         {secs_per_level}s per level, tenants = {levels:?}\n"
    );

    let mut records = Vec::new();
    for (i, &tenants) in levels.iter().enumerate() {
        let mut round = run_round(tenants, Duration::from_secs(secs_per_level), 42 + i as u64);
        let rate = round.sessions as f64 / round.elapsed.as_secs_f64();
        let p99_ms = p99(&mut round.latencies_ms);
        let offered = round.admitted + round.shed_opens;
        let shed_rate = if offered > 0 {
            round.shed_opens as f64 / offered as f64
        } else {
            0.0
        };
        println!(
            "{tenants:>3} tenants | {rate:>7.1} sessions/s | p99 {p99_ms:>8.1} ms | \
             shed rate {:>5.1}% ({} shed opens, {} shed requests, {} rejected conns, \
             {} gave up)",
            shed_rate * 100.0,
            round.shed_opens,
            round.shed_requests,
            round.rejected_connections,
            round.gave_up,
        );
        records.push(Record {
            experiment: "loadgen".into(),
            device: "-".into(),
            workload: format!("tenants-{tenants}"),
            metrics: vec![
                ("sessions_per_sec".into(), rate),
                ("p99_ms".into(), p99_ms),
                ("shed_rate".into(), shed_rate),
                ("admitted_sessions".into(), round.admitted as f64),
                ("shed_opens".into(), round.shed_opens as f64),
                ("shed_requests".into(), round.shed_requests as f64),
                (
                    "rejected_connections".into(),
                    round.rejected_connections as f64,
                ),
                ("gave_up_opens".into(), round.gave_up as f64),
            ],
        });
    }

    // Shard sweep: 64 loopback clients against 1/4/16 shards, plus the
    // single-lock whole-file-rewrite baseline (the pre-sharding design).
    // The acceptance bar: sharded + append-log sessions/sec at 64 clients
    // beats the old baseline by >= 2x.
    const SWEEP_CLIENTS: usize = 64;
    let sweep_secs = if quick { 2 } else { 4 };
    println!(
        "\nShard sweep: {SWEEP_CLIENTS} loopback clients, \
         {sweep_secs}s per round, shards = [1, 4, 16]\n"
    );
    let (base_sessions, base_elapsed) =
        run_shard_round(1, true, SWEEP_CLIENTS, Duration::from_secs(sweep_secs));
    let base_rate = base_sessions as f64 / base_elapsed.as_secs_f64();
    println!("single-lock + whole-file rewrite | {base_rate:>7.1} sessions/s (baseline)");
    records.push(Record {
        experiment: "loadgen".into(),
        device: "-".into(),
        workload: format!("single-lock-baseline-clients-{SWEEP_CLIENTS}"),
        metrics: vec![("sessions_per_sec".into(), base_rate)],
    });
    for &shards in &[1usize, 4, 16] {
        let (sessions, elapsed) = run_shard_round(
            shards,
            false,
            SWEEP_CLIENTS,
            Duration::from_secs(sweep_secs),
        );
        let rate = sessions as f64 / elapsed.as_secs_f64();
        let speedup = if base_rate > 0.0 {
            rate / base_rate
        } else {
            0.0
        };
        println!(
            "{shards:>2} shards + record log          | {rate:>7.1} sessions/s \
             ({speedup:.1}x baseline)"
        );
        records.push(Record {
            experiment: "loadgen".into(),
            device: "-".into(),
            workload: format!("shards-{shards}-clients-{SWEEP_CLIENTS}"),
            metrics: vec![
                ("sessions_per_sec".into(), rate),
                ("speedup_vs_single_lock".into(), speedup),
            ],
        });
    }

    // Connection sweep: the poll(2) reactor serving a mostly-idle fleet.
    // 64 active TCP clients drive sessions while the rest of the
    // connections sit open in the poll set; the process thread count must
    // stay flat as the fleet grows (thread-per-connection tracked it 1:1).
    const ACTIVE_CLIENTS: usize = 64;
    let conn_levels: &[usize] = if quick { &[64, 256] } else { &[64, 512, 2048] };
    let conn_secs = if quick { 2 } else { 3 };
    println!(
        "\nConnection sweep: {ACTIVE_CLIENTS} active TCP clients, \
         {conn_secs}s per round, open connections = {conn_levels:?}\n"
    );
    for &total in conn_levels {
        let round = run_connection_round(total, ACTIVE_CLIENTS, Duration::from_secs(conn_secs));
        let rate = round.sessions as f64 / round.elapsed.as_secs_f64();
        let threads = round
            .threads_with_conns
            .map(|n| n.to_string())
            .unwrap_or_else(|| "?".into());
        println!(
            "{total:>5} connections | {rate:>7.1} sessions/s | {threads:>4} process threads | \
             {} fds registered",
            round.registered_fds
        );
        let mut metrics = vec![
            ("sessions_per_sec".into(), rate),
            ("open_connections".into(), total as f64),
            ("registered_fds".into(), round.registered_fds as f64),
        ];
        if let Some(threads) = round.threads_with_conns {
            metrics.push(("process_threads".into(), threads as f64));
        }
        records.push(Record {
            experiment: "loadgen".into(),
            device: "-".into(),
            workload: format!("connections-{total}-active-{ACTIVE_CLIENTS}"),
            metrics,
        });
    }

    write_bench("loadgen", &records);
    println!("\ntrajectory written to BENCH_loadgen.json");
}
