//! **Table (Section IV): search techniques** — exhaustive vs simulated
//! annealing vs the OpenTuner-style ensemble (plus the individual ensemble
//! members), on the saxpy space (small; exhaustive feasible) and on the
//! XgemmDirect space (large; heuristics only). Includes the annealing
//! temperature ablation around the paper's `T = 4`.
//!
//! Run: `cargo run -p atf-bench --release --bin tab_search_comparison`

use atf_bench::{saxpy_cost_function, write_records, xgemm_cost_function, Record};
use atf_core::prelude::*;
use ocl_sim::DeviceModel;

fn run_technique(
    name: &str,
    tech: Box<dyn SearchTechnique>,
    space: &SearchSpace,
    cf: &mut atf_ocl::OclCostFunction,
    budget: u64,
) -> (String, u64, f64) {
    let result = Tuner::new()
        .technique(tech)
        .abort_condition(abort::evaluations(budget))
        .tune_space(space, cf)
        .expect("non-empty space");
    (name.to_string(), result.evaluations, result.best_cost)
}

fn techniques(seed: u64) -> Vec<(&'static str, Box<dyn SearchTechnique>)> {
    vec![
        ("random", Box::new(RandomSearch::with_seed(seed))),
        (
            "annealing(T=4)",
            Box::new(SimulatedAnnealing::with_seed(seed)),
        ),
        ("nelder-mead", Box::new(NelderMead::with_seed(seed))),
        ("torczon", Box::new(Torczon::with_seed(seed))),
        ("pattern", Box::new(PatternSearch::with_seed(seed))),
        ("mutation", Box::new(GreedyMutation::with_seed(seed))),
        ("ensemble", Box::new(Ensemble::opentuner_default(seed))),
    ]
}

fn main() {
    let mut records = Vec::new();

    // --- saxpy: small space, exhaustive gives the provable optimum ---
    let n = 1u64 << 20;
    println!("saxpy (N = 2^20) on the GPU model — small space, exhaustive feasible:");
    let groups = clblast::saxpy_space(n);
    let space = SearchSpace::generate(&groups);
    println!("  space: {} valid configurations", space.len());
    let mut cf = saxpy_cost_function(DeviceModel::tesla_k20m(), n);
    let exhaustive = Tuner::new()
        .technique(Exhaustive::new())
        .tune_space(&space, &mut cf)
        .unwrap();
    println!(
        "  {:<16} {:>8} evals  best {:>10.3} us (provably optimal)",
        "exhaustive",
        exhaustive.evaluations,
        exhaustive.best_cost / 1e3
    );
    records.push(Record {
        experiment: "tab_search_comparison".into(),
        device: "GPU".into(),
        workload: "saxpy".into(),
        metrics: vec![
            ("exhaustive_best_ns".into(), exhaustive.best_cost),
            ("exhaustive_evals".into(), exhaustive.evaluations as f64),
        ],
    });
    for (name, tech) in techniques(0x41) {
        let mut cf = saxpy_cost_function(DeviceModel::tesla_k20m(), n);
        let (name, evals, best) = run_technique(name, tech, &space, &mut cf, 120);
        println!(
            "  {:<16} {:>8} evals  best {:>10.3} us ({:.2}x off optimal)",
            name,
            evals,
            best / 1e3,
            best / exhaustive.best_cost
        );
        records.push(Record {
            experiment: "tab_search_comparison".into(),
            device: "GPU".into(),
            workload: format!("saxpy/{name}"),
            metrics: vec![
                ("best_ns".into(), best),
                ("off_optimal".into(), best / exhaustive.best_cost),
            ],
        });
    }

    // --- XgemmDirect: large space, heuristics only ---
    println!("\nXgemmDirect IS2 on the GPU model — 4.7M-configuration space:");
    let (m, nn, k) = clblast::caffe::IS2;
    let groups = clblast::atf_space(m, nn, k);
    let space = SearchSpace::generate(&groups);
    println!("  space: {} valid configurations", space.len());
    for budget in [500u64, 2000] {
        for (name, tech) in techniques(0x42) {
            let mut cf = xgemm_cost_function(DeviceModel::tesla_k20m(), m, nn, k);
            let (name, _, best) = run_technique(name, tech, &space, &mut cf, budget);
            println!(
                "  budget {:>5}: {:<16} best {:>10.3} us",
                budget,
                name,
                best / 1e3
            );
            records.push(Record {
                experiment: "tab_search_comparison".into(),
                device: "GPU".into(),
                workload: format!("xgemm/{name}/b{budget}"),
                metrics: vec![("best_ns".into(), best)],
            });
        }
    }

    // --- annealing temperature ablation (the paper's T = 4) ---
    println!("\nannealing temperature ablation on XgemmDirect IS2 (budget 2000):");
    for t in [0.5f64, 1.0, 4.0, 16.0, 64.0] {
        let mut cf = xgemm_cost_function(DeviceModel::tesla_k20m(), m, nn, k);
        let result = Tuner::new()
            .technique(SimulatedAnnealing::with_seed(0x43).temperature(t))
            .abort_condition(abort::evaluations(2000))
            .tune_space(&space, &mut cf)
            .unwrap();
        println!("  T = {:>5}: best {:>10.3} us", t, result.best_cost / 1e3);
        records.push(Record {
            experiment: "tab_search_comparison".into(),
            device: "GPU".into(),
            workload: format!("xgemm/annealing-T{t}"),
            metrics: vec![("best_ns".into(), result.best_cost)],
        });
    }

    write_records("tab_search_comparison", &records);
    println!("\nrecords written to results/tab_search_comparison.json");
}
