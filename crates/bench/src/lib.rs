//! Shared infrastructure for the experiment binaries that regenerate the
//! paper's tables and figures (see DESIGN.md for the per-experiment index).

use atf_core::config::Config;
use atf_core::cost::CostFunction;
use atf_core::expr::{cst, param};
use atf_core::prelude::*;
use atf_ocl::{buffer_random_f32, scalar, OclCostFunction};
use clblast::XgemmDirectKernel;
use ocl_sim::{DeviceModel, Scalar};
use serde::Serialize;

/// The devices of the paper's evaluation machine.
pub fn devices() -> Vec<(&'static str, DeviceModel)> {
    vec![
        ("CPU", DeviceModel::xeon_e5_2640v2_dual()),
        ("GPU", DeviceModel::tesla_k20m()),
    ]
}

/// Builds the XgemmDirect OpenCL cost function for a device and shape, with
/// CLBlast's padded launch geometry expressed as ATF arithmetic.
pub fn xgemm_cost_function(device: DeviceModel, m: u64, n: u64, k: u64) -> OclCostFunction {
    atf_ocl::ocl_on(device, XgemmDirectKernel)
        .arg(scalar(Scalar::U64(m)))
        .arg(scalar(Scalar::U64(n)))
        .arg(scalar(Scalar::U64(k)))
        .arg(scalar(1.0f32))
        .arg(scalar(0.0f32))
        .arg(buffer_random_f32((m * k) as usize))
        .arg(buffer_random_f32((k * n) as usize))
        .arg(buffer_random_f32((m * n) as usize))
        .global_size([
            cst(m).ceil_div(param("WGD")) * param("MDIMCD"),
            cst(n).ceil_div(param("WGD")) * param("NDIMCD"),
        ])
        .local_size([param("MDIMCD"), param("NDIMCD")])
        .seed(0xf19)
        .build()
}

/// Builds the saxpy cost function on a device.
pub fn saxpy_cost_function(device: DeviceModel, n: u64) -> OclCostFunction {
    atf_ocl::ocl_on(device, clblast::SaxpyKernel)
        .arg(scalar(Scalar::U64(n)))
        .arg(atf_ocl::scalar_random_f32())
        .arg(buffer_random_f32(n as usize))
        .arg(buffer_random_f32(n as usize))
        .global_size([cst(n) / param("WPT")])
        .local_size([param("LS")])
        .seed(0x5a)
        .build()
}

/// Tunes XgemmDirect with ATF over `groups` and returns the best cost (ns).
pub fn tune_atf(
    groups: &[ParamGroup],
    cf: &mut OclCostFunction,
    budget: u64,
    seed: u64,
) -> TuningResult<f64> {
    Tuner::new()
        .technique(Ensemble::opentuner_default(seed))
        .abort_condition(abort::evaluations(budget))
        .tune(groups, cf)
        .expect("non-empty ATF space")
}

/// Measures a single fixed configuration (e.g. defaults) on a cost function.
pub fn measure_config(cf: &mut OclCostFunction, config: &Config) -> f64 {
    cf.evaluate(config)
        .expect("fixed configuration must be measurable")
}

/// One record of an experiment run (serialized into `results/*.json` so
/// EXPERIMENTS.md can cite machine-generated numbers).
#[derive(Clone, Debug, Serialize)]
pub struct Record {
    /// Experiment id (e.g. "fig2").
    pub experiment: String,
    /// Device label.
    pub device: String,
    /// Workload label (e.g. "IS4").
    pub workload: String,
    /// Metric name → value.
    pub metrics: Vec<(String, f64)>,
}

/// Writes experiment records to `results/<name>.json` under the workspace
/// root (best effort — printing to stdout is the primary output).
pub fn write_records(name: &str, records: &[Record]) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(records) {
        let _ = std::fs::write(path, json);
    }
}

/// Writes a perf-trajectory file `BENCH_<name>.json` at the workspace root
/// so PR-over-PR regressions in the recorded metrics are visible to the
/// repository's perf gate (best effort, like [`write_records`]).
pub fn write_bench(name: &str, records: &[Record]) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = dir.join(format!("BENCH_{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(records) {
        let _ = std::fs::write(path, json);
    }
}

/// Formats nanoseconds as a human-readable time.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Renders a speedup with the conventional "×" suffix.
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_functions_build_and_measure() {
        let mut cf = xgemm_cost_function(DeviceModel::tesla_k20m(), 20, 576, 1);
        let t = measure_config(&mut cf, &clblast::default_config());
        assert!(t > 0.0);
        let mut scf = saxpy_cost_function(DeviceModel::tesla_k20m(), 1024);
        let cfg = Config::from_pairs([("WPT", 4u64), ("LS", 64u64)]);
        assert!(measure_config(&mut scf, &cfg) > 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ns(1.5e9), "1.50 s");
        assert_eq!(fmt_ns(2.5e6), "2.50 ms");
        assert_eq!(fmt_ns(3.21e3), "3.21 us");
        assert_eq!(fmt_ns(47.0), "47 ns");
        assert_eq!(fmt_speedup(17.6), "17.60x");
    }

    #[test]
    fn tune_atf_small_budget() {
        let groups = clblast::xgemm_space::atf_space_wgd_max(8);
        let mut cf = xgemm_cost_function(DeviceModel::tesla_k20m(), 20, 576, 1);
        let r = tune_atf(&groups, &mut cf, 50, 1);
        assert!(r.best_cost.is_finite());
        assert_eq!(r.evaluations, 50);
    }
}
