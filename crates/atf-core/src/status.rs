//! Tuning progress bookkeeping shared by the tuner and abort conditions.

use crate::cost::FailureKind;
use std::time::{Duration, Instant};

/// A recorded improvement of the best-found cost.
#[derive(Clone, Copy, Debug)]
pub struct Improvement {
    /// Time since tuning started when the improvement was found.
    pub elapsed: Duration,
    /// Number of evaluated configurations when the improvement was found
    /// (1-based: the improvement was found on this evaluation).
    pub evaluation: u64,
    /// The new best scalar cost.
    pub scalar_cost: f64,
}

/// Live progress of a tuning run, consulted by [`crate::abort`] conditions
/// after every evaluation.
#[derive(Clone, Debug)]
pub struct TuningStatus {
    start: Instant,
    /// Wall clock accumulated by earlier incarnations of this run. A resume
    /// restores the journal's cumulative elapsed time here, so
    /// time-based abort conditions (`duration`, `speedup(s, t)`) span the
    /// whole run instead of restarting from zero after every crash.
    elapsed_offset: Duration,
    /// Overridden elapsed time, for deterministic tests of time-based abort
    /// conditions.
    elapsed_override: Option<Duration>,
    evaluations: u64,
    valid_evaluations: u64,
    failed_evaluations: u64,
    failures_by_kind: [u64; FailureKind::ALL.len()],
    consecutive_failures: u64,
    space_size: u128,
    improvements: Vec<Improvement>,
}

impl TuningStatus {
    /// Fresh status for a space of `space_size` valid configurations.
    pub fn new(space_size: u128) -> Self {
        TuningStatus {
            start: Instant::now(),
            elapsed_offset: Duration::ZERO,
            elapsed_override: None,
            evaluations: 0,
            valid_evaluations: 0,
            failed_evaluations: 0,
            failures_by_kind: [0; FailureKind::ALL.len()],
            consecutive_failures: 0,
            space_size,
            improvements: Vec::new(),
        }
    }

    /// Time since tuning started, cumulative across resumes.
    pub fn elapsed(&self) -> Duration {
        self.elapsed_override
            .unwrap_or_else(|| self.elapsed_offset + self.start.elapsed())
    }

    /// Wall clock inherited from earlier incarnations of a resumed run.
    pub fn elapsed_offset(&self) -> Duration {
        self.elapsed_offset
    }

    /// Raises the inherited wall clock to at least `to` (never lowers it).
    /// Called during journal replay with each entry's recorded elapsed
    /// time, so the clock a resumed run continues from matches the moment
    /// the original run last journaled.
    pub fn raise_elapsed_offset(&mut self, to: Duration) {
        if to > self.elapsed_offset {
            self.elapsed_offset = to;
        }
    }

    /// Total number of tested configurations (successful or failed).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Number of configurations whose cost was measured successfully.
    pub fn valid_evaluations(&self) -> u64 {
        self.valid_evaluations
    }

    /// Number of configurations whose measurement failed.
    pub fn failed_evaluations(&self) -> u64 {
        self.failed_evaluations
    }

    /// Failed evaluations of one taxonomy class.
    pub fn failures_of_kind(&self, kind: FailureKind) -> u64 {
        self.failures_by_kind[kind.index()]
    }

    /// All `(kind, count)` pairs with a nonzero count, in taxonomy order.
    pub fn failure_counts(&self) -> Vec<(FailureKind, u64)> {
        FailureKind::ALL
            .into_iter()
            .map(|k| (k, self.failures_by_kind[k.index()]))
            .filter(|(_, n)| *n > 0)
            .collect()
    }

    /// Number of consecutive failures ending at the most recent
    /// evaluation (0 right after a success). Feeds the circuit breaker.
    pub fn consecutive_failures(&self) -> u64 {
        self.consecutive_failures
    }

    /// Size `S` of the valid search space.
    pub fn space_size(&self) -> u128 {
        self.space_size
    }

    /// Best scalar cost found so far.
    pub fn best_scalar_cost(&self) -> Option<f64> {
        self.improvements.last().map(|i| i.scalar_cost)
    }

    /// All best-cost improvements in chronological order.
    pub fn improvements(&self) -> &[Improvement] {
        &self.improvements
    }

    /// The best scalar cost known at `elapsed` time since start (i.e. the
    /// last improvement at or before that time).
    pub fn best_scalar_at_time(&self, elapsed: Duration) -> Option<f64> {
        self.improvements
            .iter()
            .take_while(|i| i.elapsed <= elapsed)
            .last()
            .map(|i| i.scalar_cost)
    }

    /// The best scalar cost known after `evaluation` evaluations.
    pub fn best_scalar_at_evaluation(&self, evaluation: u64) -> Option<f64> {
        self.improvements
            .iter()
            .take_while(|i| i.evaluation <= evaluation)
            .last()
            .map(|i| i.scalar_cost)
    }

    /// Records one evaluated configuration; `valid` is whether the cost
    /// measurement succeeded.
    pub fn record_evaluation(&mut self, valid: bool) {
        self.evaluations += 1;
        if valid {
            self.valid_evaluations += 1;
            self.consecutive_failures = 0;
        } else {
            self.failed_evaluations += 1;
            self.consecutive_failures += 1;
        }
    }

    /// Classifies the most recent failed evaluation (call right after
    /// `record_evaluation(false)`).
    pub fn record_failure_kind(&mut self, kind: FailureKind) {
        self.failures_by_kind[kind.index()] += 1;
    }

    /// Records a new best scalar cost (call only when it improves).
    pub fn record_improvement(&mut self, scalar_cost: f64) {
        self.record_improvement_at(scalar_cost, self.elapsed());
    }

    /// Records a new best scalar cost stamped with an explicit elapsed
    /// time — the report's *arrival* time, which the journal preserves, so
    /// a replayed history carries the original stamps instead of the
    /// replay's (near-zero) clock. Stamps are clamped monotone so
    /// [`best_scalar_at_time`](Self::best_scalar_at_time) stays a prefix
    /// scan even when reports arrived out of ticket order.
    pub fn record_improvement_at(&mut self, scalar_cost: f64, elapsed: Duration) {
        let elapsed = self
            .improvements
            .last()
            .map_or(elapsed, |prev| elapsed.max(prev.elapsed));
        let imp = Improvement {
            elapsed,
            evaluation: self.evaluations,
            scalar_cost,
        };
        debug_assert!(
            self.improvements
                .last()
                .is_none_or(|prev| scalar_cost < prev.scalar_cost),
            "improvement must lower the cost"
        );
        self.improvements.push(imp);
    }

    /// A copy of this status with `in_flight` additional evaluations counted
    /// as already performed. Abort conditions are checked against this
    /// projection before handing out another configuration under parallel
    /// evaluation, so a budget of N evaluations issues exactly N tickets
    /// instead of overshooting by the window size.
    pub fn projecting(&self, in_flight: u64) -> TuningStatus {
        let mut s = self.clone();
        s.evaluations += in_flight;
        s
    }

    /// Overrides the elapsed clock — for deterministic tests of time-based
    /// abort conditions only.
    #[doc(hidden)]
    pub fn set_elapsed_for_test(&mut self, elapsed: Duration) {
        self.elapsed_override = Some(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let mut s = TuningStatus::new(100);
        s.record_evaluation(true);
        s.record_evaluation(false);
        s.record_evaluation(true);
        assert_eq!(s.evaluations(), 3);
        assert_eq!(s.valid_evaluations(), 2);
        assert_eq!(s.failed_evaluations(), 1);
        assert_eq!(s.space_size(), 100);
    }

    #[test]
    fn improvement_history() {
        let mut s = TuningStatus::new(10);
        s.set_elapsed_for_test(Duration::from_secs(1));
        s.record_evaluation(true);
        s.record_improvement(10.0);
        s.set_elapsed_for_test(Duration::from_secs(5));
        s.record_evaluation(true);
        s.record_improvement(4.0);
        assert_eq!(s.best_scalar_cost(), Some(4.0));
        assert_eq!(s.best_scalar_at_time(Duration::from_secs(2)), Some(10.0));
        assert_eq!(s.best_scalar_at_time(Duration::from_millis(500)), None);
        assert_eq!(s.best_scalar_at_evaluation(1), Some(10.0));
        assert_eq!(s.best_scalar_at_evaluation(2), Some(4.0));
    }

    #[test]
    fn failure_kind_counts_and_streaks() {
        let mut s = TuningStatus::new(10);
        s.record_evaluation(false);
        s.record_failure_kind(FailureKind::Timeout);
        s.record_evaluation(false);
        s.record_failure_kind(FailureKind::Timeout);
        s.record_evaluation(false);
        s.record_failure_kind(FailureKind::RunCrash);
        assert_eq!(s.consecutive_failures(), 3);
        assert_eq!(s.failures_of_kind(FailureKind::Timeout), 2);
        assert_eq!(s.failures_of_kind(FailureKind::RunCrash), 1);
        assert_eq!(s.failures_of_kind(FailureKind::BadOutput), 0);
        assert_eq!(
            s.failure_counts(),
            vec![(FailureKind::Timeout, 2), (FailureKind::RunCrash, 1)]
        );
        s.record_evaluation(true);
        assert_eq!(s.consecutive_failures(), 0);
        assert_eq!(s.failed_evaluations(), 3);
    }

    #[test]
    fn elapsed_offset_accumulates_across_resumes() {
        let mut s = TuningStatus::new(1);
        s.raise_elapsed_offset(Duration::from_secs(10));
        assert!(s.elapsed() >= Duration::from_secs(10));
        s.raise_elapsed_offset(Duration::from_secs(5));
        assert_eq!(s.elapsed_offset(), Duration::from_secs(10), "never lowers");
    }

    #[test]
    fn improvement_stamps_are_clamped_monotone() {
        let mut s = TuningStatus::new(10);
        s.record_evaluation(true);
        s.record_improvement_at(10.0, Duration::from_secs(5));
        s.record_evaluation(true);
        // An improvement applied later but *reported* earlier (out-of-order
        // arrival under a parallel window) must not break the prefix scan.
        s.record_improvement_at(4.0, Duration::from_secs(3));
        assert_eq!(s.improvements()[1].elapsed, Duration::from_secs(5));
        assert_eq!(s.best_scalar_at_time(Duration::from_secs(5)), Some(4.0));
        assert_eq!(s.best_scalar_at_time(Duration::from_secs(4)), None);
    }

    #[test]
    fn elapsed_override() {
        let mut s = TuningStatus::new(1);
        s.set_elapsed_for_test(Duration::from_secs(42));
        assert_eq!(s.elapsed(), Duration::from_secs(42));
    }
}
