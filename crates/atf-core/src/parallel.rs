//! Worker-pool driver for parallel batched evaluation: several threads pull
//! tickets from one [`TuningSession`] and report outcomes as they finish.
//!
//! The session is the single source of truth — it hands out up to `workers`
//! simultaneously pending configurations (its window) and applies reports in
//! ticket order, so the search trajectory of a seeded technique is identical
//! across runs regardless of which worker finishes first (see the
//! [`crate::session`] module docs). The pool is a scoped-thread loop around
//! that state machine:
//!
//! 1. lock the session, ask [`next_ticket`](TuningSession::next_ticket);
//! 2. on [`Handout::Next`] unlock and evaluate — the expensive part runs
//!    outside the lock, concurrently with the other workers;
//! 3. on [`Handout::Wait`] block on a condvar until some worker reports;
//! 4. on [`Handout::Done`] wake everyone and exit.
//!
//! Each worker owns a private cost-function instance
//! ([`CostFunction::evaluate`] takes `&mut self`; a process-spawning cost
//! function holds per-run scratch state), built by the caller per worker
//! index.

use crate::cost::CostFunction;
use crate::metrics::MetricsRegistry;
use crate::session::{Handout, Ticket, TuningSession};
use crate::trace::{TraceEvent, TraceSink};
use std::collections::HashSet;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Drives `session` until [`Handout::Done`], evaluating with one thread per
/// element of `cost_functions`.
///
/// The session's pending window caps the achievable parallelism: drive a
/// session built with [`max_pending(n)`](TuningSession::max_pending) with
/// `n` cost functions. Tickets already in flight when the pool starts — a
/// resumed session can hold handouts whose reports never made the dead
/// process's journal — are adopted and evaluated like fresh ones. A
/// panicking evaluation propagates out of the pool after the remaining
/// workers drain.
pub fn drive_session<CF>(session: &mut TuningSession<CF::Cost>, cost_functions: Vec<CF>)
where
    CF: CostFunction + Send,
{
    if cost_functions.is_empty() {
        return;
    }
    // Telemetry rides along from the session: workers emit busy/idle
    // transitions to its trace sink and busy time to its registry, which
    // is what makes the utilization % in `--metrics` meaningful.
    let trace = session.trace_sink();
    let metrics = Arc::clone(session.metrics());
    metrics.set_workers(cost_functions.len());
    let pool = Pool {
        state: Mutex::new(PoolState {
            session,
            claimed: HashSet::new(),
        }),
        wake: Condvar::new(),
    };
    let pool = &pool;
    std::thread::scope(|scope| {
        for (index, cf) in cost_functions.into_iter().enumerate() {
            let trace = Arc::clone(&trace);
            let metrics = Arc::clone(&metrics);
            scope.spawn(move || worker(pool, index, cf, trace, metrics));
        }
    });
}

struct PoolState<'a, C: crate::cost::CostValue> {
    session: &'a mut TuningSession<C>,
    /// Tickets some worker is currently evaluating. Unreported tickets NOT
    /// in this set are orphans (handed out before the pool started, e.g.
    /// by a crashed run this session resumed) and are up for adoption.
    claimed: HashSet<Ticket>,
}

struct Pool<'a, C: crate::cost::CostValue> {
    state: Mutex<PoolState<'a, C>>,
    wake: Condvar,
}

fn worker<CF>(
    pool: &Pool<'_, CF::Cost>,
    index: usize,
    mut cf: CF,
    trace: Arc<dyn TraceSink>,
    metrics: Arc<MetricsRegistry>,
) where
    CF: CostFunction,
{
    loop {
        let (ticket, config) = {
            let mut state = pool.state.lock().expect("pool lock");
            loop {
                // Adopt an orphaned in-flight ticket before asking for a
                // new one: nobody else will evaluate it, and it blocks the
                // window (leaving it would deadlock the pool).
                let orphan = {
                    let PoolState { session, claimed } = &mut *state;
                    session.unreported_tickets().find(|t| !claimed.contains(t))
                };
                if let Some(ticket) = orphan {
                    let config = state
                        .session
                        .pending_config_for(ticket)
                        .expect("an unreported ticket is pending")
                        .clone();
                    state.claimed.insert(ticket);
                    break (ticket, config);
                }
                match state.session.next_ticket() {
                    Handout::Next(ticket, config) => {
                        state.claimed.insert(ticket);
                        break (ticket, config);
                    }
                    // Wait implies another worker holds an unreported
                    // ticket (everything unreported is claimed, or we
                    // would have adopted it); its report will notify us.
                    // Waiting re-takes the guard, so no wakeup slips past.
                    Handout::Wait => state = pool.wake.wait(state).expect("pool lock"),
                    Handout::Done => {
                        pool.wake.notify_all();
                        return;
                    }
                }
            }
        };
        trace.emit(&TraceEvent::worker_busy(index, ticket));
        metrics.worker_busy();
        let started = Instant::now();
        let outcome = cf.evaluate(&config);
        let busy = started.elapsed();
        metrics.worker_idle(busy);
        trace.emit(&TraceEvent::worker_idle(
            index,
            u64::try_from(busy.as_micros()).unwrap_or(u64::MAX),
        ));
        let mut state = pool.state.lock().expect("pool lock");
        state.claimed.remove(&ticket);
        state
            .session
            .report_ticket(ticket, outcome)
            .expect("ticket was handed out to this worker");
        pool.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abort;
    use crate::config::Config;
    use crate::constraint::divides;
    use crate::cost::{try_cost_fn, CostError};
    use crate::expr::{cst, param};
    use crate::param::{tp_c, ParamGroup};
    use crate::range::Range;
    use crate::search::Exhaustive;
    use crate::space::SearchSpace;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn space(n: u64) -> SearchSpace {
        SearchSpace::generate(&[ParamGroup::new(vec![
            tp_c("WPT", Range::interval(1, n), divides(cst(n))),
            tp_c("LS", Range::interval(1, n), divides(cst(n) / param("WPT"))),
        ])])
    }

    fn measure(c: &Config) -> Result<f64, CostError> {
        let wpt = c.get_u64("WPT") as f64;
        let ls = c.get_u64("LS") as f64;
        Ok((wpt - 8.0).powi(2) + (ls - 4.0).powi(2))
    }

    #[test]
    fn pool_explores_the_whole_space() {
        let mut session: TuningSession<f64> =
            TuningSession::new(space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .max_pending(4);
        let cfs: Vec<_> = (0..4).map(|_| try_cost_fn(measure)).collect();
        drive_session(&mut session, cfs);
        assert!(session.is_done());
        let r = session.finish().unwrap();
        assert_eq!(r.evaluations as u128, r.space_size);
        assert_eq!(r.best_config.get_u64("WPT"), 8);
        assert_eq!(r.best_config.get_u64("LS"), 4);
    }

    #[test]
    fn workers_evaluate_concurrently() {
        // With a window of 4 and 4 workers, at some instant more than one
        // evaluation must be running at once.
        static IN_FLIGHT: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        let cfs: Vec<_> = (0..4)
            .map(|_| {
                try_cost_fn(|c: &Config| {
                    let now = IN_FLIGHT.fetch_add(1, Ordering::SeqCst) + 1;
                    PEAK.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    IN_FLIGHT.fetch_sub(1, Ordering::SeqCst);
                    measure(c)
                })
            })
            .collect();
        let mut session: TuningSession<f64> =
            TuningSession::new(space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .abort_condition(abort::evaluations(16))
                .max_pending(4);
        drive_session(&mut session, cfs);
        let r = session.finish().unwrap();
        assert_eq!(r.evaluations, 16);
        assert!(
            PEAK.load(Ordering::SeqCst) >= 2,
            "peak concurrency {} — workers never overlapped",
            PEAK.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn pool_evaluates_each_configuration_once() {
        // Every handed-out configuration is evaluated exactly once across
        // the pool, whichever worker picks it up.
        use std::sync::Mutex as StdMutex;
        let seen = StdMutex::new(Vec::new());
        let cfs: Vec<_> = (0..3)
            .map(|_| {
                try_cost_fn(|c: &Config| {
                    seen.lock()
                        .unwrap()
                        .push((c.get_u64("WPT"), c.get_u64("LS")));
                    measure(c)
                })
            })
            .collect();
        let mut session: TuningSession<f64> =
            TuningSession::new(space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .max_pending(3);
        drive_session(&mut session, cfs);
        let r = session.finish().unwrap();
        let seen = seen.into_inner().unwrap();
        let unique: HashSet<_> = seen.iter().copied().collect();
        assert_eq!(seen.len() as u64, r.evaluations);
        assert_eq!(unique.len(), seen.len(), "a configuration was re-evaluated");
    }

    #[test]
    fn pool_adopts_in_flight_tickets_after_resume() {
        // A crashed run held tickets 1..=3 but only ticket 3's report made
        // the journal. The resumed session therefore starts with tickets 1
        // and 2 in flight and unreported — the pool must adopt and
        // evaluate them, or the full window would deadlock every worker.
        let path =
            std::env::temp_dir().join(format!("atf-pool-adopt-{}.ndjson", std::process::id()));
        let mut crashed: TuningSession<f64> =
            TuningSession::new(space(8), Box::new(Exhaustive::new()))
                .unwrap()
                .max_pending(3)
                .journal_to(&path)
                .unwrap();
        let mut handed = Vec::new();
        for _ in 0..3 {
            match crashed.next_ticket() {
                crate::session::Handout::Next(t, c) => handed.push((t, c)),
                other => panic!("expected a handout, got {other:?}"),
            }
        }
        let (t3, c3) = handed.pop().unwrap();
        crashed.report_ticket(t3, measure(&c3)).unwrap();
        drop(crashed); // crash: tickets 1 and 2 never reported

        let mut resumed: TuningSession<f64> =
            TuningSession::new(space(8), Box::new(Exhaustive::new())).unwrap();
        resumed.resume_from_journal(&path).unwrap();
        assert_eq!(resumed.unreported_tickets().collect::<Vec<_>>(), [1, 2]);

        let cfs: Vec<_> = (0..3).map(|_| try_cost_fn(measure)).collect();
        drive_session(&mut resumed, cfs);
        let r = resumed.finish().unwrap();
        assert_eq!(r.evaluations as u128, r.space_size);
        assert_eq!(r.best_config.get_u64("WPT"), 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_worker_pool_matches_serial_drive() {
        let run = |workers: usize| {
            let mut session: TuningSession<f64> =
                TuningSession::new(space(64), Box::new(Exhaustive::new()))
                    .unwrap()
                    .max_pending(workers);
            let cfs: Vec<_> = (0..workers).map(|_| try_cost_fn(measure)).collect();
            drive_session(&mut session, cfs);
            session.finish().unwrap()
        };
        let serial = {
            let mut s: TuningSession<f64> =
                TuningSession::new(space(64), Box::new(Exhaustive::new())).unwrap();
            while let Some(cfg) = s.next_config() {
                s.report(measure(&cfg)).unwrap();
            }
            s.finish().unwrap()
        };
        let pooled = run(1);
        assert_eq!(pooled.best_config, serial.best_config);
        assert_eq!(pooled.evaluations, serial.evaluations);
    }
}
