//! Arithmetic expressions over tuning parameters and constants.
//!
//! The paper stresses (Section III) that ATF lets the user express OpenCL
//! global/local sizes — and constraint operands — "as common arithmetic
//! expressions containing tuning parameters", e.g. `N / WPT`, which CLTune
//! cannot. This module provides that expression language: [`Expr`] supports
//! `+ - * / %`, `min`/`max`, ceiling division and round-up-to-multiple, and
//! evaluates against a [`Config`].
//!
//! Integer operands use exact 128-bit arithmetic (C-style truncating
//! division); an expression falls back to `f64` only if a float is involved.

use crate::config::Config;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Errors produced when evaluating an [`Expr`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExprError {
    /// The expression references a parameter not present in the configuration.
    UnknownParam(String),
    /// Division or modulo by zero.
    DivisionByZero(String),
    /// A non-numeric (symbolic) value was used in arithmetic.
    NonNumeric(String),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownParam(p) => write!(f, "unknown parameter `{p}` in expression"),
            ExprError::DivisionByZero(e) => write!(f, "division by zero in `{e}`"),
            ExprError::NonNumeric(p) => {
                write!(f, "non-numeric value for `{p}` used in arithmetic")
            }
        }
    }
}

impl std::error::Error for ExprError {}

/// A numeric result: exact integer when possible, float otherwise.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Num {
    /// Exact integer value.
    Int(i128),
    /// Floating-point value.
    Float(f64),
}

impl Num {
    /// The value as `f64` (possibly lossy for huge integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Num::Int(i) => i as f64,
            Num::Float(f) => f,
        }
    }

    /// The value as `u64`, if non-negative, integral, and in range.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Num::Int(i) => u64::try_from(i).ok(),
            Num::Float(f) => {
                if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 {
                    Some(f as u64)
                } else {
                    None
                }
            }
        }
    }

    fn to_value(self) -> Value {
        match self {
            Num::Int(i) => {
                if let Ok(u) = u64::try_from(i) {
                    Value::UInt(u)
                } else if let Ok(s) = i64::try_from(i) {
                    Value::Int(s)
                } else {
                    Value::Float(i as f64)
                }
            }
            Num::Float(f) => Value::Float(f),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    /// `ceil(a / b)` — CLBlast's `CeilDiv`, used for padded global sizes.
    CeilDiv,
    /// Smallest multiple of `b` that is `>= a` — CLBlast's `Ceil(a, b)`.
    RoundUp,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::CeilDiv => "ceil_div",
            BinOp::RoundUp => "round_up",
        }
    }
}

enum Node {
    Const(Value),
    Param(Arc<str>),
    Binary(BinOp, Expr, Expr),
    Neg(Expr),
}

/// An arithmetic expression over tuning parameters and constants.
///
/// Build with [`param`], [`cst`], and the standard operators:
///
/// ```
/// use atf_core::expr::{param, cst};
/// use atf_core::config::Config;
///
/// let n = cst(1024u64);
/// let global = n / param("WPT"); // N / WPT work-items
/// let cfg = Config::from_pairs([("WPT", 4u64)]);
/// assert_eq!(global.eval_u64(&cfg).unwrap(), 256);
/// ```
#[derive(Clone)]
pub struct Expr(Arc<Node>);

/// An expression referencing a tuning parameter by name.
pub fn param(name: impl Into<Arc<str>>) -> Expr {
    Expr(Arc::new(Node::Param(name.into())))
}

/// A constant expression.
pub fn cst(v: impl Into<Value>) -> Expr {
    Expr(Arc::new(Node::Const(v.into())))
}

impl Expr {
    fn binary(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr(Arc::new(Node::Binary(op, a, b)))
    }

    /// `min(self, other)`.
    pub fn min(self, other: impl IntoExpr) -> Expr {
        Expr::binary(BinOp::Min, self, other.into_expr())
    }

    /// `max(self, other)`.
    pub fn max(self, other: impl IntoExpr) -> Expr {
        Expr::binary(BinOp::Max, self, other.into_expr())
    }

    /// `ceil(self / other)` with integer semantics — CLBlast's `CeilDiv`.
    pub fn ceil_div(self, other: impl IntoExpr) -> Expr {
        Expr::binary(BinOp::CeilDiv, self, other.into_expr())
    }

    /// The smallest multiple of `other` that is `>= self` — CLBlast's
    /// `Ceil(a, b)`, used to pad global sizes to a multiple of the local
    /// size (the arithmetic CLTune cannot express; Section VI-A).
    pub fn round_up_to_multiple_of(self, other: impl IntoExpr) -> Expr {
        Expr::binary(BinOp::RoundUp, self, other.into_expr())
    }

    /// Evaluates the expression against a configuration.
    pub fn eval(&self, config: &Config) -> Result<Value, ExprError> {
        self.eval_num(config).map(Num::to_value)
    }

    /// Evaluates and converts to `u64`; errors are mapped like
    /// [`Expr::eval`], plus `NonNumeric` when the result is negative or
    /// fractional.
    pub fn eval_u64(&self, config: &Config) -> Result<u64, ExprError> {
        let n = self.eval_num(config)?;
        n.as_u64()
            .ok_or_else(|| ExprError::NonNumeric(format!("{self:?} = {n:?}")))
    }

    /// Evaluates to `f64`.
    pub fn eval_f64(&self, config: &Config) -> Result<f64, ExprError> {
        Ok(self.eval_num(config)?.as_f64())
    }

    /// Collects the names of all tuning parameters the expression
    /// references (used for automatic dependency detection — the paper
    /// notes ATF "cannot automatically determine dependencies between
    /// parameters"; expression introspection makes it possible).
    pub fn referenced_params(&self) -> Vec<Arc<str>> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params(&self, out: &mut Vec<Arc<str>>) {
        match &*self.0 {
            Node::Const(_) => {}
            Node::Param(name) => {
                if !out.iter().any(|n| n == name) {
                    out.push(name.clone());
                }
            }
            Node::Neg(e) => e.collect_params(out),
            Node::Binary(_, a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
        }
    }

    fn eval_num(&self, config: &Config) -> Result<Num, ExprError> {
        match &*self.0 {
            Node::Const(v) => value_to_num(v, "<const>"),
            Node::Param(name) => {
                let v = config
                    .get(name)
                    .ok_or_else(|| ExprError::UnknownParam(name.to_string()))?;
                value_to_num(v, name)
            }
            Node::Neg(e) => Ok(match e.eval_num(config)? {
                Num::Int(i) => Num::Int(-i),
                Num::Float(f) => Num::Float(-f),
            }),
            Node::Binary(op, a, b) => {
                let a = a.eval_num(config)?;
                let b = b.eval_num(config)?;
                apply(*op, a, b, || format!("{self:?}"))
            }
        }
    }
}

fn value_to_num(v: &Value, name: &str) -> Result<Num, ExprError> {
    match v {
        Value::Bool(b) => Ok(Num::Int(*b as i128)),
        Value::Int(i) => Ok(Num::Int(*i as i128)),
        Value::UInt(u) => Ok(Num::Int(*u as i128)),
        Value::Float(f) => Ok(Num::Float(*f)),
        Value::Symbol(_) => Err(ExprError::NonNumeric(name.to_string())),
    }
}

fn apply(op: BinOp, a: Num, b: Num, expr: impl Fn() -> String) -> Result<Num, ExprError> {
    use BinOp::*;
    match (a, b) {
        (Num::Int(a), Num::Int(b)) => match op {
            Add => Ok(Num::Int(a + b)),
            Sub => Ok(Num::Int(a - b)),
            Mul => Ok(Num::Int(a * b)),
            Div => {
                if b == 0 {
                    Err(ExprError::DivisionByZero(expr()))
                } else {
                    Ok(Num::Int(a / b))
                }
            }
            Rem => {
                if b == 0 {
                    Err(ExprError::DivisionByZero(expr()))
                } else {
                    Ok(Num::Int(a % b))
                }
            }
            Min => Ok(Num::Int(a.min(b))),
            Max => Ok(Num::Int(a.max(b))),
            CeilDiv => {
                if b == 0 {
                    Err(ExprError::DivisionByZero(expr()))
                } else {
                    Ok(Num::Int(div_ceil_i128(a, b)))
                }
            }
            RoundUp => {
                if b == 0 {
                    Err(ExprError::DivisionByZero(expr()))
                } else {
                    Ok(Num::Int(div_ceil_i128(a, b) * b))
                }
            }
        },
        _ => {
            let (a, b) = (a.as_f64(), b.as_f64());
            let r = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(ExprError::DivisionByZero(expr()));
                    }
                    a / b
                }
                Rem => {
                    if b == 0.0 {
                        return Err(ExprError::DivisionByZero(expr()));
                    }
                    a % b
                }
                Min => a.min(b),
                Max => a.max(b),
                CeilDiv => {
                    if b == 0.0 {
                        return Err(ExprError::DivisionByZero(expr()));
                    }
                    (a / b).ceil()
                }
                RoundUp => {
                    if b == 0.0 {
                        return Err(ExprError::DivisionByZero(expr()));
                    }
                    (a / b).ceil() * b
                }
            };
            Ok(Num::Float(r))
        }
    }
}

fn div_ceil_i128(a: i128, b: i128) -> i128 {
    let d = a / b;
    let r = a % b;
    if r != 0 && ((r > 0) == (b > 0)) {
        d + 1
    } else {
        d
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.0 {
            Node::Const(v) => write!(f, "{v}"),
            Node::Param(p) => write!(f, "{p}"),
            Node::Neg(e) => write!(f, "-({e:?})"),
            Node::Binary(op, a, b) => match op {
                BinOp::Min | BinOp::Max | BinOp::CeilDiv | BinOp::RoundUp => {
                    write!(f, "{}({a:?}, {b:?})", op.symbol())
                }
                _ => write!(f, "({a:?} {} {b:?})", op.symbol()),
            },
        }
    }
}

/// Conversion of operands into expressions: expressions pass through; numeric
/// values and `&str` parameter-like constants become constants.
pub trait IntoExpr {
    /// Converts `self` into an [`Expr`].
    fn into_expr(self) -> Expr;
}

impl IntoExpr for Expr {
    fn into_expr(self) -> Expr {
        self
    }
}

impl IntoExpr for &Expr {
    fn into_expr(self) -> Expr {
        self.clone()
    }
}

macro_rules! impl_into_expr_num {
    ($($t:ty),*) => {$(
        impl IntoExpr for $t {
            fn into_expr(self) -> Expr { cst(self) }
        }
    )*};
}
impl_into_expr_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<R: IntoExpr> std::ops::$trait<R> for Expr {
            type Output = Expr;
            fn $method(self, rhs: R) -> Expr {
                Expr::binary($op, self, rhs.into_expr())
            }
        }
        impl<R: IntoExpr> std::ops::$trait<R> for &Expr {
            type Output = Expr;
            fn $method(self, rhs: R) -> Expr {
                Expr::binary($op, self.clone(), rhs.into_expr())
            }
        }
    };
}

impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(Div, div, BinOp::Div);
impl_binop!(Rem, rem, BinOp::Rem);

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr(Arc::new(Node::Neg(self)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::from_pairs([("WPT", 4u64), ("LS", 32u64), ("N", 1024u64)])
    }

    #[test]
    fn basic_arithmetic() {
        let c = cfg();
        assert_eq!((param("N") / param("WPT")).eval_u64(&c).unwrap(), 256);
        assert_eq!((param("WPT") * param("LS")).eval_u64(&c).unwrap(), 128);
        assert_eq!((param("N") % cst(1000u64)).eval_u64(&c).unwrap(), 24);
        assert_eq!((cst(10u64) - cst(3u64)).eval_u64(&c).unwrap(), 7);
    }

    #[test]
    fn integer_division_truncates() {
        let c = Config::from_pairs([("A", 7u64), ("B", 2u64)]);
        assert_eq!((param("A") / param("B")).eval_u64(&c).unwrap(), 3);
        assert_eq!(param("A").ceil_div(param("B")).eval_u64(&c).unwrap(), 4);
    }

    #[test]
    fn round_up_to_multiple() {
        let c = Config::from_pairs([("M", 20u64), ("WGD", 8u64)]);
        // CLBlast pads the 20-row result matrix to 24 rows for WGD = 8.
        let padded = param("M").round_up_to_multiple_of(param("WGD"));
        assert_eq!(padded.eval_u64(&c).unwrap(), 24);
        let exact = cst(16u64).round_up_to_multiple_of(param("WGD"));
        assert_eq!(exact.eval_u64(&c).unwrap(), 16);
    }

    #[test]
    fn unknown_param_error() {
        let e = param("NOPE") + 1u64;
        assert_eq!(
            e.eval(&cfg()),
            Err(ExprError::UnknownParam("NOPE".to_string()))
        );
    }

    #[test]
    fn division_by_zero_error() {
        let c = Config::from_pairs([("Z", 0u64)]);
        assert!(matches!(
            (cst(1u64) / param("Z")).eval(&c),
            Err(ExprError::DivisionByZero(_))
        ));
        assert!(matches!(
            (cst(1u64) % param("Z")).eval(&c),
            Err(ExprError::DivisionByZero(_))
        ));
    }

    #[test]
    fn float_propagation() {
        let c = Config::from_pairs([("X", Value::Float(1.5))]);
        let e = param("X") * 2u64;
        assert_eq!(e.eval_f64(&c).unwrap(), 3.0);
        assert!(e.eval_u64(&c).is_ok()); // 3.0 is integral
        let e2 = param("X") + 1u64;
        assert!(e2.eval_u64(&c).is_err()); // 2.5 is not
    }

    #[test]
    fn symbol_in_arithmetic_errors() {
        let c = Config::from_pairs([("T", Value::from("vec4"))]);
        assert!(matches!(
            (param("T") + 1u64).eval(&c),
            Err(ExprError::NonNumeric(_))
        ));
    }

    #[test]
    fn min_max() {
        let c = cfg();
        assert_eq!(param("WPT").min(param("LS")).eval_u64(&c).unwrap(), 4);
        assert_eq!(param("WPT").max(param("LS")).eval_u64(&c).unwrap(), 32);
    }

    #[test]
    fn neg_and_mixed() {
        let c = cfg();
        let e = -(param("WPT").into_expr()) + 10u64;
        assert_eq!(e.eval(&c).unwrap(), Value::UInt(6));
    }

    #[test]
    fn big_integers_exact() {
        let c = Config::from_pairs([("A", u64::MAX)]);
        let e = param("A") - 1u64;
        assert_eq!(e.eval_u64(&c).unwrap(), u64::MAX - 1);
    }

    #[test]
    fn debug_rendering() {
        let e = (param("N") / param("WPT")) % param("LS");
        assert_eq!(format!("{e:?}"), "((N / WPT) % LS)");
    }

    #[test]
    fn bools_as_integers() {
        let c = Config::from_pairs([("PAD", true)]);
        assert_eq!((param("PAD") + 1u64).eval_u64(&c).unwrap(), 2);
    }
}
