//! Fault-tolerance policy for cost evaluations: per-evaluation deadlines,
//! bounded retries with exponential backoff + jitter, and a
//! consecutive-failure circuit breaker.
//!
//! The paper's generic cost function runs *arbitrary* user programs
//! (Section II, Step 2) — exactly where real tuning runs hang, crash, or
//! flake. [`EvalPolicy`] is the one knob bundle for surviving that:
//!
//! * the **timeout** is enforced by [`crate::process::ProcessCostFunction`]
//!   (spawn + wait-with-deadline + hard kill);
//! * **retries** are applied by [`RetryCostFunction`], which re-evaluates a
//!   configuration after a [`FailureKind::Transient`] failure, sleeping an
//!   exponentially growing, jittered backoff between attempts;
//! * the **circuit breaker** lives in
//!   [`crate::session::TuningSession`]: too many consecutive failures abort
//!   the run with a structured
//!   [`TuningError::CircuitBroken`](crate::tuner::TuningError) instead of
//!   burning the remaining budget on a broken device.

use crate::config::Config;
use crate::cost::{CostError, CostFunction, CostValue};
use crate::metrics::MetricsRegistry;
use crate::trace::{TraceEvent, TraceSink};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Duration;

/// How evaluations are guarded against hangs, flakes, and dead devices.
#[derive(Clone, Debug)]
pub struct EvalPolicy {
    /// Wall-clock deadline per evaluation attempt; the process cost
    /// function kills the child when exceeded (`None` = no deadline).
    pub timeout: Option<Duration>,
    /// Extra attempts after a transient failure (0 = no retries).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base: Duration,
    /// Multiplier per further retry.
    pub backoff_factor: f64,
    /// Upper bound on any single backoff sleep.
    pub backoff_max: Duration,
    /// Trip the circuit breaker after this many *consecutive* failed
    /// evaluations (`None` = never).
    pub max_consecutive_failures: Option<u32>,
}

impl Default for EvalPolicy {
    fn default() -> Self {
        EvalPolicy {
            timeout: None,
            max_retries: 0,
            backoff_base: Duration::from_millis(100),
            backoff_factor: 2.0,
            backoff_max: Duration::from_secs(5),
            max_consecutive_failures: None,
        }
    }
}

impl EvalPolicy {
    /// Builder: sets the per-evaluation timeout.
    pub fn timeout(mut self, t: Duration) -> Self {
        self.timeout = Some(t);
        self
    }

    /// Builder: sets the retry budget for transient failures.
    pub fn retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Builder: sets the circuit-breaker threshold.
    pub fn circuit_breaker(mut self, consecutive_failures: u32) -> Self {
        self.max_consecutive_failures = Some(consecutive_failures);
        self
    }

    /// The backoff before retry attempt `attempt` (0-based), jittered by
    /// ±25 % from `rng` so a fleet of tuners does not retry in lockstep.
    pub fn backoff_delay<R: Rng + ?Sized>(&self, attempt: u32, rng: &mut R) -> Duration {
        let exp = self.backoff_factor.powi(attempt.min(24) as i32);
        let raw = self.backoff_base.as_secs_f64() * exp;
        let capped = raw.min(self.backoff_max.as_secs_f64());
        let jitter = rng.gen_range(0.75..1.25);
        Duration::from_secs_f64(capped * jitter)
    }
}

/// Wraps any cost function with the policy's retry loop: transient
/// failures are retried (with backoff) up to the budget; every other
/// failure kind passes straight through — a compile error will not fix
/// itself on attempt three.
pub struct RetryCostFunction<F> {
    inner: F,
    policy: EvalPolicy,
    rng: ChaCha8Rng,
    /// Sleeper, swappable so tests don't actually block.
    sleep: fn(Duration),
    retries_performed: u64,
    /// Emits a `retry` trace event per backoff, when attached.
    trace: Option<Arc<dyn TraceSink>>,
    /// Counts retries in the run's registry, when attached.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<F: CostFunction> RetryCostFunction<F> {
    /// Wraps `inner` under `policy` with a deterministic jitter seed.
    pub fn new(inner: F, policy: EvalPolicy, seed: u64) -> Self {
        RetryCostFunction {
            inner,
            policy,
            rng: ChaCha8Rng::seed_from_u64(seed),
            sleep: std::thread::sleep,
            retries_performed: 0,
            trace: None,
            metrics: None,
        }
    }

    /// Attaches a trace sink and metrics registry (builder-style): every
    /// backoff-and-retry is emitted as a `retry` event and counted.
    pub fn with_observability(
        mut self,
        trace: Arc<dyn TraceSink>,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        self.trace = Some(trace);
        self.metrics = Some(metrics);
        self
    }

    /// Total retry attempts performed so far (diagnostics).
    pub fn retries_performed(&self) -> u64 {
        self.retries_performed
    }

    /// The wrapped cost function.
    pub fn into_inner(self) -> F {
        self.inner
    }

    #[cfg(test)]
    pub(crate) fn without_sleep(mut self) -> Self {
        self.sleep = |_| {};
        self
    }
}

impl<F: CostFunction> CostFunction for RetryCostFunction<F> {
    type Cost = F::Cost;

    fn evaluate(&mut self, config: &Config) -> Result<F::Cost, CostError> {
        let mut attempt = 0u32;
        loop {
            match self.inner.evaluate(config) {
                Ok(cost) => return Ok(cost),
                Err(e) if e.kind().is_retryable() && attempt < self.policy.max_retries => {
                    let delay = self.policy.backoff_delay(attempt, &mut self.rng);
                    if let Some(trace) = &self.trace {
                        trace.emit(&TraceEvent::retry(
                            attempt + 1,
                            delay.as_millis() as u64,
                            e.kind().label(),
                        ));
                    }
                    if let Some(metrics) = &self.metrics {
                        metrics.retries.inc();
                    }
                    (self.sleep)(delay);
                    attempt += 1;
                    self.retries_performed += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Convenience: wraps a cost function when the policy actually retries,
/// returns it untouched otherwise (no behavioural change for
/// `max_retries == 0` — the wrapper would be pass-through anyway, this
/// just documents it).
pub fn with_policy<C: CostValue, F: CostFunction<Cost = C> + 'static>(
    inner: F,
    policy: &EvalPolicy,
    seed: u64,
) -> Box<dyn CostFunction<Cost = C>> {
    if policy.max_retries == 0 {
        Box::new(inner)
    } else {
        Box::new(RetryCostFunction::new(inner, policy.clone(), seed))
    }
}

/// [`with_policy`] with a `Send` box, for handing the wrapped function to
/// worker threads ([`crate::parallel::drive_session`]).
pub fn with_policy_send<C: CostValue, F: CostFunction<Cost = C> + Send + 'static>(
    inner: F,
    policy: &EvalPolicy,
    seed: u64,
) -> Box<dyn CostFunction<Cost = C> + Send> {
    if policy.max_retries == 0 {
        Box::new(inner)
    } else {
        Box::new(RetryCostFunction::new(inner, policy.clone(), seed))
    }
}

/// [`with_policy_send`] with observability attached: retries are emitted
/// to `trace` and counted in `metrics` (both unused when the policy does
/// not retry).
pub fn with_policy_send_observed<C: CostValue, F: CostFunction<Cost = C> + Send + 'static>(
    inner: F,
    policy: &EvalPolicy,
    seed: u64,
    trace: Arc<dyn TraceSink>,
    metrics: Arc<MetricsRegistry>,
) -> Box<dyn CostFunction<Cost = C> + Send> {
    if policy.max_retries == 0 {
        Box::new(inner)
    } else {
        Box::new(
            RetryCostFunction::new(inner, policy.clone(), seed).with_observability(trace, metrics),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::try_cost_fn;

    #[test]
    fn defaults_are_conservative() {
        let p = EvalPolicy::default();
        assert_eq!(p.timeout, None);
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.max_consecutive_failures, None);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = EvalPolicy {
            backoff_base: Duration::from_millis(100),
            backoff_factor: 2.0,
            backoff_max: Duration::from_millis(500),
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d0 = p.backoff_delay(0, &mut rng);
        let d3 = p.backoff_delay(3, &mut rng);
        // Base 100ms, jitter ±25%.
        assert!(d0 >= Duration::from_millis(75) && d0 <= Duration::from_millis(125));
        // 100ms * 2^3 = 800ms capped at 500ms, jittered.
        assert!(d3 >= Duration::from_millis(375) && d3 <= Duration::from_millis(625));
    }

    #[test]
    fn transient_failures_are_retried_within_budget() {
        let mut calls = 0u32;
        let cf = try_cost_fn(move |_c: &Config| {
            calls += 1;
            if calls < 3 {
                Err(CostError::Transient("flaky".into()))
            } else {
                Ok(7.0f64)
            }
        });
        let mut retrying =
            RetryCostFunction::new(cf, EvalPolicy::default().retries(5), 42).without_sleep();
        let cost = retrying.evaluate(&Config::new()).unwrap();
        assert_eq!(cost, 7.0);
        assert_eq!(retrying.retries_performed(), 2);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let cf = try_cost_fn(|_c: &Config| -> Result<f64, CostError> {
            Err(CostError::Transient("always".into()))
        });
        let mut retrying =
            RetryCostFunction::new(cf, EvalPolicy::default().retries(2), 42).without_sleep();
        let err = retrying.evaluate(&Config::new()).unwrap_err();
        assert!(matches!(err, CostError::Transient(_)));
        assert_eq!(retrying.retries_performed(), 2);
    }

    #[test]
    fn retries_are_traced_and_counted() {
        use crate::metrics::MetricsRegistry;
        use crate::trace::MemorySink;
        let mut calls = 0u32;
        let cf = try_cost_fn(move |_c: &Config| {
            calls += 1;
            if calls < 3 {
                Err(CostError::Transient("flaky".into()))
            } else {
                Ok(1.0f64)
            }
        });
        let sink = Arc::new(MemorySink::new());
        let metrics = Arc::new(MetricsRegistry::new());
        let mut retrying = RetryCostFunction::new(cf, EvalPolicy::default().retries(5), 42)
            .with_observability(sink.clone(), metrics.clone())
            .without_sleep();
        retrying.evaluate(&Config::new()).unwrap();
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.event == "retry"));
        assert_eq!(events[0].attempt, Some(1));
        assert_eq!(events[1].attempt, Some(2));
        assert_eq!(events[0].failure.as_deref(), Some("transient"));
        assert_eq!(metrics.snapshot().retries, 2);
    }

    #[test]
    fn non_transient_failures_pass_straight_through() {
        let mut calls = 0u32;
        let cf = try_cost_fn(move |_c: &Config| -> Result<f64, CostError> {
            calls += 1;
            assert_eq!(calls, 1, "compile errors must not be retried");
            Err(CostError::CompileFailed("syntax".into()))
        });
        let mut retrying =
            RetryCostFunction::new(cf, EvalPolicy::default().retries(5), 42).without_sleep();
        assert!(matches!(
            retrying.evaluate(&Config::new()),
            Err(CostError::CompileFailed(_))
        ));
    }
}
