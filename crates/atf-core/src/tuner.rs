//! The tuning driver: generates the search space, drives the search
//! technique against the cost function, and enforces abort conditions.
//!
//! This is ATF's exploration loop (paper, Section IV): repeatedly take a
//! configuration from the search technique (`get_next_config`), determine
//! its cost with the user's cost function, and report the cost back to the
//! technique (`report_cost`), until the chosen abort condition is satisfied. If no abort condition is
//! passed, ATF uses `evaluations(S)` with `S` the search-space size.

use crate::abort::Abort;
use crate::config::Config;
use crate::cost::{CostFunction, CostValue};
use crate::param::ParamGroup;
use crate::search::{Point, SearchTechnique};
use crate::session::TuningSession;
use crate::space::SearchSpace;
use crate::status::Improvement;
use std::fmt;
use std::time::Duration;

/// Errors terminating a tuning run without a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TuningError {
    /// The generated search space contains no valid configuration (e.g.
    /// unsatisfiable constraints — CLBlast's WGD range limitation on the
    /// Caffe matrix sizes produces exactly this, Section VI-A).
    EmptySearchSpace,
    /// Exploration ended without any successfully measured configuration.
    NoValidConfiguration {
        /// Number of configurations that were tested (and failed).
        evaluations: u64,
    },
    /// A cost was reported to a [`crate::session::TuningSession`] that has
    /// no configuration awaiting measurement.
    NoPendingConfiguration,
    /// A cost was reported under a ticket that was never handed out, or
    /// whose outcome was already reported.
    UnknownTicket {
        /// The offending ticket.
        ticket: u64,
    },
    /// The circuit breaker tripped: too many consecutive failed
    /// evaluations — the measurement side is broken, not merely unlucky.
    CircuitBroken {
        /// The consecutive-failure streak that tripped the breaker.
        consecutive_failures: u64,
        /// Taxonomy class of the failure that tripped it.
        last_failure: crate::cost::FailureKind,
    },
    /// Reading or writing the run journal failed.
    Journal(String),
    /// A journal replay diverged from the search technique: the journal
    /// belongs to a different run (spec, seed, or technique changed).
    JournalDiverged {
        /// 1-based evaluation at which replay diverged.
        evaluation: u64,
    },
}

impl fmt::Display for TuningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuningError::EmptySearchSpace => {
                write!(f, "the search space contains no valid configuration")
            }
            TuningError::NoValidConfiguration { evaluations } => write!(
                f,
                "no configuration could be measured successfully ({evaluations} tested)"
            ),
            TuningError::NoPendingConfiguration => {
                write!(f, "no configuration is awaiting a cost report")
            }
            TuningError::UnknownTicket { ticket } => write!(
                f,
                "ticket {ticket} is not awaiting a cost report (never handed out, or \
                 already reported)"
            ),
            TuningError::CircuitBroken {
                consecutive_failures,
                last_failure,
            } => write!(
                f,
                "circuit breaker tripped after {consecutive_failures} consecutive failed \
                 evaluations (last failure: {last_failure})"
            ),
            TuningError::Journal(m) => write!(f, "run journal error: {m}"),
            TuningError::JournalDiverged { evaluation } => write!(
                f,
                "journal replay diverged at evaluation {evaluation} — the journal belongs \
                 to a different run (specification, technique, or seed changed)"
            ),
        }
    }
}

impl std::error::Error for TuningError {}

/// One evaluated configuration in the (optional) full tuning history.
#[derive(Clone, Debug)]
pub struct EvalRecord {
    /// 1-based evaluation number.
    pub evaluation: u64,
    /// Coordinates of the tested configuration in the valid space.
    pub point: Point,
    /// Scalar cost ([`crate::search::PENALTY_COST`] if the measurement
    /// failed).
    pub scalar_cost: f64,
    /// Whether the measurement succeeded.
    pub valid: bool,
    /// Taxonomy class of the failure, when the measurement failed.
    pub failure: Option<crate::cost::FailureKind>,
}

/// The outcome of a tuning run.
#[derive(Clone, Debug)]
pub struct TuningResult<C: CostValue> {
    /// The best configuration found (paper: `best_config`).
    pub best_config: Config,
    /// Its cost, in the cost function's own type (full multi-objective
    /// ordering, not the scalar projection).
    pub best_cost: C,
    /// Total tested configurations.
    pub evaluations: u64,
    /// Successfully measured configurations.
    pub valid_evaluations: u64,
    /// Failed measurements.
    pub failed_evaluations: u64,
    /// Size `S` of the valid search space.
    pub space_size: u128,
    /// Wall-clock exploration time.
    pub elapsed: Duration,
    /// Best-cost improvement events in chronological order.
    pub improvements: Vec<Improvement>,
    /// Full per-evaluation history (only if enabled on the [`Tuner`]).
    pub history: Vec<EvalRecord>,
}

/// ATF tuner: search technique + abort condition + options.
///
/// ```
/// use atf_core::prelude::*;
///
/// let n = 64u64;
/// let groups = vec![ParamGroup::new(vec![
///     tp_c("WPT", Range::interval(1, n), divides(cst(n))),
///     tp_c("LS", Range::interval(1, n), divides(cst(n) / param("WPT"))),
/// ])];
/// let mut cf = cost_fn(|c: &Config| {
///     // toy cost: prefer WPT=4, LS=16
///     (c.get_u64("WPT") as f64 - 4.0).abs() + (c.get_u64("LS") as f64 - 16.0).abs()
/// });
/// let result = Tuner::new()
///     .technique(Exhaustive::new())
///     .tune(&groups, &mut cf)
///     .unwrap();
/// assert_eq!(result.best_config.get_u64("WPT"), 4);
/// assert_eq!(result.best_config.get_u64("LS"), 16);
/// ```
pub struct Tuner {
    technique: Box<dyn SearchTechnique>,
    abort: Option<Abort>,
    parallel_generation: bool,
    record_history: bool,
}

impl Tuner {
    /// A tuner with the default technique (exhaustive search) and the
    /// default abort condition (`evaluations(S)`).
    pub fn new() -> Self {
        Tuner {
            technique: Box::new(crate::search::Exhaustive::new()),
            abort: None,
            parallel_generation: false,
            record_history: false,
        }
    }

    /// Sets the search technique.
    pub fn technique(mut self, t: impl SearchTechnique + 'static) -> Self {
        self.technique = Box::new(t);
        self
    }

    /// Sets the abort condition (default: `evaluations(S)`).
    pub fn abort_condition(mut self, a: Abort) -> Self {
        self.abort = Some(a);
        self
    }

    /// Generates the search space in parallel, one thread per parameter
    /// group (Section V of the paper).
    pub fn parallel_generation(mut self, on: bool) -> Self {
        self.parallel_generation = on;
        self
    }

    /// Records every evaluation in [`TuningResult::history`] (for
    /// convergence plots; off by default).
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Generates the valid space for `groups` and explores it.
    pub fn tune<CF: CostFunction>(
        mut self,
        groups: &[ParamGroup],
        cost_function: &mut CF,
    ) -> Result<TuningResult<CF::Cost>, TuningError> {
        let space = if self.parallel_generation {
            SearchSpace::generate_parallel(groups)
        } else {
            SearchSpace::generate(groups)
        };
        self.tune_space(&space, cost_function)
    }

    /// Tunes ungrouped parameters, detecting independent groups
    /// automatically from constraint references
    /// ([`crate::param::auto_group`]) — an extension beyond the paper,
    /// which requires explicit grouping.
    pub fn tune_auto<CF: CostFunction>(
        self,
        params: Vec<crate::param::Param>,
        cost_function: &mut CF,
    ) -> Result<TuningResult<CF::Cost>, TuningError> {
        let groups = crate::param::auto_group(params);
        self.tune(&groups, cost_function)
    }

    /// Explores an already-generated search space.
    ///
    /// This is a thin in-process loop over a
    /// [`TuningSession`](crate::session::TuningSession): open the session,
    /// measure each handed-out configuration with `cost_function`, report
    /// the outcome, finish. Driving a session step by step yields the
    /// identical result.
    pub fn tune_space<CF: CostFunction>(
        &mut self,
        space: &SearchSpace,
        cost_function: &mut CF,
    ) -> Result<TuningResult<CF::Cost>, TuningError> {
        if space.is_empty() {
            return Err(TuningError::EmptySearchSpace);
        }
        // Placeholder while the session owns the real technique; restored
        // from `finish_parts` below.
        let technique = std::mem::replace(
            &mut self.technique,
            Box::new(crate::search::Exhaustive::new()),
        );
        let mut session = TuningSession::<CF::Cost>::new(space.clone(), technique)?;
        let restore_abort = self.abort.is_some();
        if let Some(a) = self.abort.take() {
            session = session.abort_condition(a);
        }
        session = session.record_history(self.record_history);

        while let Some(config) = session.next_config() {
            let outcome = cost_function.evaluate(&config);
            session
                .report(outcome)
                .expect("a configuration is pending by construction");
        }

        let (result, technique, abort) = session.finish_parts();
        self.technique = technique;
        if restore_abort {
            self.abort = Some(abort);
        }
        result
    }

    /// Generates the valid space for `groups` and explores it with
    /// `workers` evaluation threads.
    ///
    /// `make_cost_function` builds one private cost-function instance per
    /// worker (called with the worker index 0..workers) — evaluation takes
    /// `&mut self`, and a process-spawning cost function holds per-run
    /// scratch state that must not be shared.
    ///
    /// The session hands out up to `workers` simultaneously pending
    /// configurations and applies reports in ticket order, so for a seeded
    /// technique the search trajectory is reproducible across runs and
    /// `tune_parallel` with `workers == 1` equals [`tune`](Self::tune)
    /// exactly (see the [`crate::session`] module docs).
    pub fn tune_parallel<CF>(
        mut self,
        groups: &[ParamGroup],
        make_cost_function: impl FnMut(usize) -> CF,
        workers: usize,
    ) -> Result<TuningResult<CF::Cost>, TuningError>
    where
        CF: CostFunction + Send,
    {
        let space = if self.parallel_generation {
            SearchSpace::generate_parallel(groups)
        } else {
            SearchSpace::generate(groups)
        };
        self.tune_space_parallel(&space, make_cost_function, workers)
    }

    /// Explores an already-generated search space with `workers` evaluation
    /// threads (see [`tune_parallel`](Self::tune_parallel)).
    pub fn tune_space_parallel<CF>(
        &mut self,
        space: &SearchSpace,
        mut make_cost_function: impl FnMut(usize) -> CF,
        workers: usize,
    ) -> Result<TuningResult<CF::Cost>, TuningError>
    where
        CF: CostFunction + Send,
    {
        if space.is_empty() {
            return Err(TuningError::EmptySearchSpace);
        }
        let workers = workers.max(1);
        let technique = std::mem::replace(
            &mut self.technique,
            Box::new(crate::search::Exhaustive::new()),
        );
        let mut session = TuningSession::<CF::Cost>::new(space.clone(), technique)?
            .max_pending(workers)
            .record_history(self.record_history);
        let restore_abort = self.abort.is_some();
        if let Some(a) = self.abort.take() {
            session = session.abort_condition(a);
        }

        let cost_functions: Vec<CF> = (0..workers).map(&mut make_cost_function).collect();
        crate::parallel::drive_session(&mut session, cost_functions);

        let (result, technique, abort) = session.finish_parts();
        self.technique = technique;
        if restore_abort {
            self.abort = Some(abort);
        }
        result
    }
}

impl Default for Tuner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abort;
    use crate::constraint::{divides, less_than};
    use crate::cost::{cost_fn, try_cost_fn, CostError};
    use crate::expr::{cst, param};
    use crate::param::{tp, tp_c};
    use crate::range::Range;
    use crate::search::{Ensemble, Exhaustive, RandomSearch, SimulatedAnnealing};

    fn saxpy_groups(n: u64) -> Vec<ParamGroup> {
        vec![ParamGroup::new(vec![
            tp_c("WPT", Range::interval(1, n), divides(cst(n))),
            tp_c("LS", Range::interval(1, n), divides(cst(n) / param("WPT"))),
        ])]
    }

    #[test]
    fn exhaustive_finds_provable_optimum() {
        let mut cf = cost_fn(|c: &Config| {
            let wpt = c.get_u64("WPT") as f64;
            let ls = c.get_u64("LS") as f64;
            (wpt - 8.0).powi(2) + (ls - 4.0).powi(2)
        });
        let r = Tuner::new()
            .technique(Exhaustive::new())
            .tune(&saxpy_groups(64), &mut cf)
            .unwrap();
        assert_eq!(r.best_config.get_u64("WPT"), 8);
        assert_eq!(r.best_config.get_u64("LS"), 4);
        assert_eq!(r.best_cost, 0.0);
        assert_eq!(r.evaluations as u128, r.space_size); // default evaluations(S)
    }

    #[test]
    fn empty_space_errors() {
        let groups = vec![ParamGroup::new(vec![tp_c(
            "X",
            Range::interval(1, 10),
            less_than(cst(0u64)),
        )])];
        let mut cf = cost_fn(|_: &Config| 1.0f64);
        let err = Tuner::new().tune(&groups, &mut cf).unwrap_err();
        assert_eq!(err, TuningError::EmptySearchSpace);
    }

    #[test]
    fn all_failures_error() {
        let groups = vec![ParamGroup::new(vec![tp("X", Range::interval(1, 5))])];
        let mut cf = try_cost_fn(|_: &Config| -> Result<f64, CostError> {
            Err(CostError::RunFailed("always".into()))
        });
        let err = Tuner::new().tune(&groups, &mut cf).unwrap_err();
        assert_eq!(err, TuningError::NoValidConfiguration { evaluations: 5 });
    }

    #[test]
    fn partial_failures_tolerated() {
        let groups = vec![ParamGroup::new(vec![tp("X", Range::interval(1, 10))])];
        let mut cf = try_cost_fn(|c: &Config| {
            let x = c.get_u64("X");
            if x.is_multiple_of(2) {
                Err(CostError::InvalidConfiguration("odd only".into()))
            } else {
                Ok(x as f64)
            }
        });
        let r = Tuner::new().tune(&groups, &mut cf).unwrap();
        assert_eq!(r.best_config.get_u64("X"), 1);
        assert_eq!(r.failed_evaluations, 5);
        assert_eq!(r.valid_evaluations, 5);
    }

    #[test]
    fn abort_by_evaluations() {
        let groups = vec![ParamGroup::new(vec![tp("X", Range::interval(1, 1000))])];
        let mut cf = cost_fn(|c: &Config| c.get_u64("X") as f64);
        let r = Tuner::new()
            .technique(RandomSearch::with_seed(1))
            .abort_condition(abort::evaluations(25))
            .tune(&groups, &mut cf)
            .unwrap();
        assert_eq!(r.evaluations, 25);
    }

    #[test]
    fn abort_by_cost() {
        let groups = vec![ParamGroup::new(vec![tp("X", Range::interval(1, 1000))])];
        let mut cf = cost_fn(|c: &Config| c.get_u64("X") as f64);
        let r = Tuner::new()
            .technique(Exhaustive::new())
            .abort_condition(abort::cost(3.0))
            .tune(&groups, &mut cf)
            .unwrap();
        // Exhaustive starts at X=1 → cost 1 ≤ 3 after the first evaluation.
        assert_eq!(r.evaluations, 1);
        assert_eq!(r.best_cost, 1.0);
    }

    #[test]
    fn annealing_on_saxpy_space() {
        let n = 4096;
        let mut cf = cost_fn(|c: &Config| {
            let wpt = c.get_u64("WPT") as f64;
            let ls = c.get_u64("LS") as f64;
            (wpt.log2() - 3.0).abs() + (ls.log2() - 6.0).abs()
        });
        let r = Tuner::new()
            .technique(SimulatedAnnealing::with_seed(3))
            .abort_condition(abort::evaluations(400))
            .tune(&saxpy_groups(n), &mut cf)
            .unwrap();
        assert!(r.best_cost < 2.0, "annealing best {:?}", r.best_cost);
    }

    #[test]
    fn ensemble_on_saxpy_space() {
        let n = 4096;
        let mut cf = cost_fn(|c: &Config| {
            let wpt = c.get_u64("WPT") as f64;
            let ls = c.get_u64("LS") as f64;
            (wpt.log2() - 2.0).abs() + (ls.log2() - 5.0).abs()
        });
        let r = Tuner::new()
            .technique(Ensemble::opentuner_default(9))
            .abort_condition(abort::evaluations(500))
            .tune(&saxpy_groups(n), &mut cf)
            .unwrap();
        assert!(r.best_cost < 2.0, "ensemble best {:?}", r.best_cost);
    }

    #[test]
    fn multi_objective_lexicographic_best() {
        // Two configs tie on runtime; the one with lower energy must win,
        // even though the scalar (primary) projection ties.
        let groups = vec![ParamGroup::new(vec![tp("X", Range::set([1u64, 2, 3]))])];
        let mut cf = cost_fn(|c: &Config| {
            match c.get_u64("X") {
                1 => (1.0f64, 50.0f64),
                2 => (1.0f64, 20.0f64), // same runtime, lower energy
                _ => (2.0f64, 1.0f64),
            }
        });
        let r = Tuner::new()
            .technique(Exhaustive::new())
            .tune(&groups, &mut cf)
            .unwrap();
        assert_eq!(r.best_config.get_u64("X"), 2);
        assert_eq!(r.best_cost, (1.0, 20.0));
    }

    #[test]
    fn history_recording() {
        let groups = vec![ParamGroup::new(vec![tp("X", Range::interval(1, 5))])];
        let mut cf = cost_fn(|c: &Config| c.get_u64("X") as f64);
        let r = Tuner::new()
            .technique(Exhaustive::new())
            .record_history(true)
            .tune(&groups, &mut cf)
            .unwrap();
        assert_eq!(r.history.len(), 5);
        assert_eq!(r.history[0].evaluation, 1);
        assert!(r.history.iter().all(|h| h.valid));
    }

    #[test]
    fn improvements_are_monotone() {
        let groups = vec![ParamGroup::new(vec![tp("X", Range::interval(1, 100))])];
        let mut cf = cost_fn(|c: &Config| 1000.0 / c.get_u64("X") as f64);
        let r = Tuner::new()
            .technique(RandomSearch::with_seed(5))
            .abort_condition(abort::evaluations(200))
            .tune(&groups, &mut cf)
            .unwrap();
        let costs: Vec<f64> = r.improvements.iter().map(|i| i.scalar_cost).collect();
        assert!(costs.windows(2).all(|w| w[1] < w[0]), "{costs:?}");
    }

    #[test]
    fn parallel_generation_equivalent() {
        let g1 = ParamGroup::new(vec![tp("A", Range::interval(1, 8))]);
        let g2 = ParamGroup::new(vec![tp("B", Range::interval(1, 8))]);
        let mut cf = cost_fn(|c: &Config| (c.get_u64("A") * 8 + c.get_u64("B")) as f64);
        let r = Tuner::new()
            .technique(Exhaustive::new())
            .parallel_generation(true)
            .tune(&[g1, g2], &mut cf)
            .unwrap();
        assert_eq!(r.best_config.get_u64("A"), 1);
        assert_eq!(r.best_config.get_u64("B"), 1);
        assert_eq!(r.space_size, 64);
    }
}
