//! Crash-safe run journal: an append-only NDJSON write-ahead log of
//! evaluation outcomes, replayable into a fresh
//! [`TuningSession`](crate::session::TuningSession) so an interrupted
//! multi-hour tuning run resumes instead of starting over.
//!
//! Layout: the first line is a [`JournalHeader`] describing the run
//! (technique, space size); every following line is one [`JournalEntry`]
//! recording the evaluated point's coordinates and outcome. Entries are
//! written *before* the session state advances, flushed per entry, and
//! fsynced in batches ([`JournalWriter::SYNC_EVERY`]) plus on close — a
//! crash loses at most the last unsynced batch, and a torn final line is
//! skipped on load rather than poisoning the whole journal.

use crate::cost::FailureKind;
use crate::search::Point;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Current journal format version, written into every header. Version 2
/// added per-entry `ticket` and the header `window` (parallel evaluation);
/// version 3 added per-entry `elapsed_ms` so time-based abort conditions
/// survive a resume. Older journals load fine — a missing ticket defaults
/// to the evaluation number (serial runs hand out tickets in order), a
/// missing window to 1, and a missing `elapsed_ms` to `None` (the resumed
/// clock then restarts, the pre-v3 behaviour).
pub const JOURNAL_VERSION: u32 = 3;

fn default_window() -> usize {
    1
}

/// First line of a journal: identifies the run shape so a resume against a
/// different specification is rejected instead of silently corrupting the
/// search.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Journal format version.
    pub version: u32,
    /// Name of the search technique driving the run.
    pub technique: String,
    /// Search-space size (stringified `u128`).
    pub space_size: String,
    /// Maximum number of simultaneously pending configurations the run was
    /// driven with. Replay must use the same window to hand out tickets in
    /// the same order.
    #[serde(default = "default_window")]
    pub window: usize,
}

/// One evaluation outcome. `costs` holds the full (possibly
/// multi-objective) cost vector of a successful measurement; a failed one
/// records its taxonomy class in `failure` instead.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JournalEntry {
    /// 1-based arrival number: entries are written in the order reports
    /// *arrived*, which under parallel evaluation may differ from the order
    /// configurations were handed out.
    pub evaluation: u64,
    /// Ticket of the handed-out configuration this entry reports on
    /// (`None` in version-1 journals, where it equals `evaluation`).
    #[serde(default)]
    pub ticket: Option<u64>,
    /// Coordinates of the evaluated configuration in the valid space.
    pub point: Point,
    /// Measured cost vector (`None` when the measurement failed).
    #[serde(default)]
    pub costs: Option<Vec<f64>>,
    /// Failure class label ([`FailureKind::label`]) when the measurement
    /// failed.
    #[serde(default)]
    pub failure: Option<String>,
    /// Cumulative wall-clock milliseconds since the run (not the process)
    /// started, stamped when the report arrived. Replay restores the run
    /// clock from these, so `duration`/`speedup(s, t)` aborts fire at the
    /// same total budget across resumes (`None` in pre-v3 journals).
    #[serde(default)]
    pub elapsed_ms: Option<u64>,
}

impl JournalEntry {
    /// The entry's failure kind, if it records a failure.
    pub fn failure_kind(&self) -> Option<FailureKind> {
        self.failure.as_deref().and_then(FailureKind::from_label)
    }
}

/// Journal I/O and consistency errors.
#[derive(Debug)]
pub enum JournalError {
    /// Reading or writing the journal file failed.
    Io(std::io::Error),
    /// The journal file does not start with a valid header line.
    BadHeader(String),
    /// The journal belongs to a different run shape (technique or space
    /// size differ).
    Mismatch {
        /// What the journal recorded.
        journal: String,
        /// What the current run expected.
        expected: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadHeader(m) => write!(f, "bad journal header: {m}"),
            JournalError::Mismatch { journal, expected } => write!(
                f,
                "journal belongs to a different run ({journal}, expected {expected})"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Append-only journal writer with fsync batching.
pub struct JournalWriter {
    path: PathBuf,
    file: BufWriter<File>,
    unsynced: usize,
}

impl JournalWriter {
    /// Entries between fsyncs: small enough that a crash loses seconds of
    /// work, large enough that the fsync cost disappears next to a real
    /// program evaluation.
    pub const SYNC_EVERY: usize = 8;

    /// Creates (truncates) a journal at `path` and writes the header.
    pub fn create(path: impl Into<PathBuf>, header: &JournalHeader) -> Result<Self, JournalError> {
        let path = path.into();
        let file = File::create(&path)?;
        let mut writer = JournalWriter {
            path,
            file: BufWriter::new(file),
            unsynced: 0,
        };
        writer.write_line(&serde_json::to_string(header).map_err(io_invalid)?)?;
        writer.sync()?;
        Ok(writer)
    }

    /// Reopens an existing journal for appending (after a replay).
    pub fn append_to(path: impl Into<PathBuf>) -> Result<Self, JournalError> {
        let path = path.into();
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(JournalWriter {
            path,
            file: BufWriter::new(file),
            unsynced: 0,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one entry; flushed immediately, fsynced every
    /// [`SYNC_EVERY`](Self::SYNC_EVERY) entries.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), JournalError> {
        self.write_line(&serde_json::to_string(entry).map_err(io_invalid)?)?;
        self.unsynced += 1;
        if self.unsynced >= Self::SYNC_EVERY {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes and fsyncs everything written so far.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    fn write_line(&mut self, line: &str) -> Result<(), JournalError> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        Ok(())
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

fn io_invalid(e: impl std::fmt::Display) -> JournalError {
    JournalError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        e.to_string(),
    ))
}

/// A fully loaded journal: header plus every intact entry.
#[derive(Clone, Debug)]
pub struct LoadedJournal {
    /// The run-identifying header.
    pub header: JournalHeader,
    /// All intact entries, in write order.
    pub entries: Vec<JournalEntry>,
}

impl LoadedJournal {
    /// Loads a journal, tolerating a torn (crash-truncated) final line:
    /// entries after the first undecodable line are dropped.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let file = File::open(path.as_ref())?;
        let mut lines = BufReader::new(file).lines();
        let header_line = lines
            .next()
            .ok_or_else(|| JournalError::BadHeader("journal file is empty".into()))??;
        let header: JournalHeader = serde_json::from_str(&header_line)
            .map_err(|e| JournalError::BadHeader(e.to_string()))?;
        let mut entries = Vec::new();
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<JournalEntry>(&line) {
                Ok(entry) => entries.push(entry),
                // A torn tail from a crash mid-write: everything before it
                // is intact, so stop here and resume from that prefix.
                Err(_) => break,
            }
        }
        Ok(LoadedJournal { header, entries })
    }

    /// Verifies the header matches the current run's shape.
    pub fn check_matches(&self, technique: &str, space_size: u128) -> Result<(), JournalError> {
        let expected = format!("technique={technique} space={space_size}");
        let journal = format!(
            "technique={} space={}",
            self.header.technique, self.header.space_size
        );
        if self.header.technique != technique || self.header.space_size != space_size.to_string() {
            return Err(JournalError::Mismatch { journal, expected });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("atf-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join("run.ndjson")
    }

    fn header() -> JournalHeader {
        JournalHeader {
            version: JOURNAL_VERSION,
            technique: "exhaustive".into(),
            space_size: "64".into(),
            window: 1,
        }
    }

    fn ok_entry(n: u64) -> JournalEntry {
        JournalEntry {
            evaluation: n,
            ticket: Some(n),
            point: vec![n, n + 1],
            costs: Some(vec![n as f64 * 0.5]),
            failure: None,
            elapsed_ms: Some(n * 100),
        }
    }

    #[test]
    fn write_and_load_round_trip() {
        let path = tmp("rt");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append(&ok_entry(1)).unwrap();
        w.append(&JournalEntry {
            evaluation: 2,
            ticket: Some(2),
            point: vec![0, 3],
            costs: None,
            failure: Some(FailureKind::Timeout.label().to_string()),
            elapsed_ms: Some(250),
        })
        .unwrap();
        drop(w);

        let loaded = LoadedJournal::load(&path).unwrap();
        assert_eq!(loaded.header, header());
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.entries[0].costs, Some(vec![0.5]));
        assert_eq!(loaded.entries[1].failure_kind(), Some(FailureKind::Timeout));
        loaded.check_matches("exhaustive", 64).unwrap();
        assert!(loaded.check_matches("annealing", 64).is_err());
        assert!(loaded.check_matches("exhaustive", 65).is_err());
    }

    #[test]
    fn append_continues_an_existing_journal() {
        let path = tmp("append");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append(&ok_entry(1)).unwrap();
        drop(w);
        let mut w = JournalWriter::append_to(&path).unwrap();
        w.append(&ok_entry(2)).unwrap();
        drop(w);
        let loaded = LoadedJournal::load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.entries[1].evaluation, 2);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = tmp("torn");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append(&ok_entry(1)).unwrap();
        w.append(&ok_entry(2)).unwrap();
        drop(w);
        // Simulate a crash mid-write: append half a JSON line.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"evaluation\":3,\"point\":[1").unwrap();
        drop(f);
        let loaded = LoadedJournal::load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 2);
    }

    #[test]
    fn version_1_journals_load_with_defaults() {
        // A journal written before tickets/window existed must still load:
        // window defaults to 1 and tickets to None (= the evaluation number).
        let path = tmp("v1");
        std::fs::write(
            &path,
            concat!(
                "{\"version\":1,\"technique\":\"exhaustive\",\"space_size\":\"64\"}\n",
                "{\"evaluation\":1,\"point\":[0,1],\"costs\":[1.0]}\n",
            ),
        )
        .unwrap();
        let loaded = LoadedJournal::load(&path).unwrap();
        assert_eq!(loaded.header.window, 1);
        assert_eq!(loaded.entries.len(), 1);
        assert_eq!(loaded.entries[0].ticket, None);
        assert_eq!(loaded.entries[0].elapsed_ms, None);
    }

    #[test]
    fn version_2_journals_load_without_elapsed() {
        // Version-2 journals (tickets + window, no timestamps) must still
        // load; their entries carry no elapsed time, so a resume keeps the
        // old restart-the-clock behaviour instead of failing.
        let path = tmp("v2");
        std::fs::write(
            &path,
            concat!(
                "{\"version\":2,\"technique\":\"exhaustive\",\"space_size\":\"64\",\"window\":2}\n",
                "{\"evaluation\":1,\"ticket\":2,\"point\":[0,1],\"costs\":[1.0]}\n",
            ),
        )
        .unwrap();
        let loaded = LoadedJournal::load(&path).unwrap();
        assert_eq!(loaded.header.window, 2);
        assert_eq!(loaded.entries[0].ticket, Some(2));
        assert_eq!(loaded.entries[0].elapsed_ms, None);
    }

    #[test]
    fn empty_or_garbled_header_rejected() {
        let path = tmp("bad");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            LoadedJournal::load(&path),
            Err(JournalError::BadHeader(_))
        ));
        std::fs::write(&path, "not json\n").unwrap();
        assert!(matches!(
            LoadedJournal::load(&path),
            Err(JournalError::BadHeader(_))
        ));
    }
}
