//! Crash-safe run journal: an append-only NDJSON write-ahead log of
//! evaluation outcomes, replayable into a fresh
//! [`TuningSession`](crate::session::TuningSession) so an interrupted
//! multi-hour tuning run resumes instead of starting over.
//!
//! Layout: the first line is a [`JournalHeader`] describing the run
//! (technique, space size); every following line is one [`JournalEntry`]
//! recording the evaluated point's coordinates and outcome. Entries are
//! written *before* the session state advances, flushed per entry, and
//! fsynced in batches ([`JournalWriter::SYNC_EVERY`]) plus on close — a
//! crash loses at most the last unsynced batch, and a torn final line is
//! skipped on load rather than poisoning the whole journal.
//!
//! Since version 4 every entry line is wrapped with a checksum
//! (`{"crc":"<fnv1a-64 hex>","entry":{...}}`) so silent storage corruption
//! is detected and treated like a torn tail, and the journal can be
//! periodically compacted into a checkpoint file
//! ([`checkpoint_path`]) written atomically (tmp + fsync + rename).
//! [`LoadedJournal::load_with_checkpoint`] replays the checkpoint first and
//! then the live tail, deduplicating by arrival number, so a kill at any
//! point of the compaction sequence resumes to the same state.

use crate::cost::FailureKind;
use crate::search::Point;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Current journal format version, written into every header. Version 2
/// added per-entry `ticket` and the header `window` (parallel evaluation);
/// version 3 added per-entry `elapsed_ms` so time-based abort conditions
/// survive a resume; version 4 wraps every entry line in a checksum and
/// introduces checkpoint compaction. Older journals load fine — a missing
/// ticket defaults to the evaluation number (serial runs hand out tickets
/// in order), a missing window to 1, a missing `elapsed_ms` to `None` (the
/// resumed clock then restarts, the pre-v3 behaviour), and bare
/// (unchecksummed) entry lines are accepted as written by v1–v3.
pub const JOURNAL_VERSION: u32 = 4;

fn default_window() -> usize {
    1
}

/// First line of a journal: identifies the run shape so a resume against a
/// different specification is rejected instead of silently corrupting the
/// search.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Journal format version.
    pub version: u32,
    /// Name of the search technique driving the run.
    pub technique: String,
    /// Search-space size (stringified `u128`).
    pub space_size: String,
    /// Maximum number of simultaneously pending configurations the run was
    /// driven with. Replay must use the same window to hand out tickets in
    /// the same order.
    #[serde(default = "default_window")]
    pub window: usize,
}

/// One evaluation outcome. `costs` holds the full (possibly
/// multi-objective) cost vector of a successful measurement; a failed one
/// records its taxonomy class in `failure` instead.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// 1-based arrival number: entries are written in the order reports
    /// *arrived*, which under parallel evaluation may differ from the order
    /// configurations were handed out.
    pub evaluation: u64,
    /// Ticket of the handed-out configuration this entry reports on
    /// (`None` in version-1 journals, where it equals `evaluation`).
    #[serde(default)]
    pub ticket: Option<u64>,
    /// Coordinates of the evaluated configuration in the valid space.
    pub point: Point,
    /// Measured cost vector (`None` when the measurement failed).
    #[serde(default)]
    pub costs: Option<Vec<f64>>,
    /// Failure class label ([`FailureKind::label`]) when the measurement
    /// failed.
    #[serde(default)]
    pub failure: Option<String>,
    /// Cumulative wall-clock milliseconds since the run (not the process)
    /// started, stamped when the report arrived. Replay restores the run
    /// clock from these, so `duration`/`speedup(s, t)` aborts fire at the
    /// same total budget across resumes (`None` in pre-v3 journals).
    #[serde(default)]
    pub elapsed_ms: Option<u64>,
}

impl JournalEntry {
    /// The entry's failure kind, if it records a failure.
    pub fn failure_kind(&self) -> Option<FailureKind> {
        self.failure.as_deref().and_then(FailureKind::from_label)
    }
}

/// A version-4 entry line: the entry plus an FNV-1a 64 checksum (hex) of
/// its canonical JSON serialization. A line whose checksum does not match
/// is treated exactly like a torn tail: everything before it is intact.
#[derive(Deserialize)]
struct ChecksummedLine {
    crc: String,
    entry: JournalEntry,
}

/// FNV-1a 64-bit: tiny, dependency-free, and plenty to catch bit rot and
/// torn or overwritten sectors (this is corruption *detection*, not
/// cryptographic integrity).
fn fnv1a64(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a 64 hash of arbitrary text, rendered as 16 hex digits — the same
/// hash the checksummed entry lines use. Other write-ahead logs (the
/// campaign journal) key resumable state by a content hash of their source
/// file through this, so a resume against an edited file is rejected
/// instead of silently diverging.
pub fn content_hash(text: &str) -> String {
    format!("{:016x}", fnv1a64(text))
}

/// Wraps any serializable entry in the version-4 checksummed-line format
/// (`{"crc":"<fnv1a-64 hex>","entry":{...}}`), making the corruption
/// detection of run journals reusable by other append-only logs.
pub fn checksummed_json_line<T: Serialize>(entry: &T) -> Result<String, JournalError> {
    let body = serde_json::to_string(entry).map_err(io_invalid)?;
    let crc = format!("{:016x}", fnv1a64(&body));
    Ok(format!("{{\"crc\":\"{crc}\",\"entry\":{body}}}"))
}

/// Parses a [`checksummed_json_line`]; `None` when the line is torn,
/// corrupt, or not checksummed at all. Verification re-serializes the
/// parsed entry (same serializer, field order and float formatting), so a
/// mismatch means the bytes changed on disk.
pub fn parse_checksummed_json_line<T: Serialize + Deserialize>(line: &str) -> Option<T> {
    let value: serde::Value = serde_json::from_str(line).ok()?;
    let crc = value.get("crc")?.as_str()?.to_string();
    let entry = T::from_value(value.get("entry")?).ok()?;
    let body = serde_json::to_string(&entry).ok()?;
    (format!("{:016x}", fnv1a64(&body)) == crc).then_some(entry)
}

fn checksummed_line(entry: &JournalEntry) -> Result<String, JournalError> {
    checksummed_json_line(entry)
}

/// Parses one entry line: a v4 checksummed wrapper (verified) or a bare
/// v1–v3 entry. `None` means the line is torn or corrupt.
fn parse_entry_line(line: &str) -> Option<JournalEntry> {
    if let Ok(wrapped) = serde_json::from_str::<ChecksummedLine>(line) {
        // Re-serializing the parsed entry reproduces the exact bytes the
        // writer checksummed (same serializer, field order and float
        // formatting), so a mismatch means the line changed on disk.
        let body = serde_json::to_string(&wrapped.entry).ok()?;
        let crc = format!("{:016x}", fnv1a64(&body));
        return (crc == wrapped.crc).then_some(wrapped.entry);
    }
    serde_json::from_str::<JournalEntry>(line).ok()
}

/// Path of the checkpoint a journal at `path` compacts into.
pub fn checkpoint_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".ckpt");
    PathBuf::from(name)
}

pub(crate) fn checkpoint_tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".ckpt.tmp");
    PathBuf::from(name)
}

/// Best-effort parent-directory fsync after a rename, so the new directory
/// entry itself is durable. Opening a directory read-only works on the
/// platforms we target; anywhere it does not, skipping the sync only
/// weakens durability back to pre-checkpoint semantics.
pub(crate) fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// Journal I/O and consistency errors.
#[derive(Debug)]
pub enum JournalError {
    /// Reading or writing the journal file failed.
    Io(std::io::Error),
    /// The journal file does not start with a valid header line.
    BadHeader(String),
    /// The journal belongs to a different run shape (technique or space
    /// size differ).
    Mismatch {
        /// What the journal recorded.
        journal: String,
        /// What the current run expected.
        expected: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadHeader(m) => write!(f, "bad journal header: {m}"),
            JournalError::Mismatch { journal, expected } => write!(
                f,
                "journal belongs to a different run ({journal}, expected {expected})"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Append-only journal writer with fsync batching and optional checkpoint
/// compaction.
pub struct JournalWriter {
    path: PathBuf,
    file: BufWriter<File>,
    unsynced: usize,
    checkpoint_every: Option<usize>,
    since_checkpoint: usize,
    fail_appends: u64,
}

impl JournalWriter {
    /// Entries between fsyncs: small enough that a crash loses seconds of
    /// work, large enough that the fsync cost disappears next to a real
    /// program evaluation.
    pub const SYNC_EVERY: usize = 8;

    /// Creates (truncates) a journal at `path` and writes the header. Any
    /// checkpoint left over from a previous run at the same path is
    /// removed — a fresh run must not inherit stale history.
    pub fn create(path: impl Into<PathBuf>, header: &JournalHeader) -> Result<Self, JournalError> {
        let path = path.into();
        let _ = std::fs::remove_file(checkpoint_path(&path));
        let _ = std::fs::remove_file(checkpoint_tmp_path(&path));
        Self::create_tail(path, header)
    }

    /// Creates (truncates) just the live tail file, leaving any checkpoint
    /// in place. Used on resume to repair a tail torn at the header (e.g. a
    /// kill between checkpoint rename and tail rewrite).
    pub fn create_tail(
        path: impl Into<PathBuf>,
        header: &JournalHeader,
    ) -> Result<Self, JournalError> {
        let path = path.into();
        let file = File::create(&path)?;
        let mut writer = JournalWriter {
            path,
            file: BufWriter::new(file),
            unsynced: 0,
            checkpoint_every: None,
            since_checkpoint: 0,
            fail_appends: 0,
        };
        writer.write_line(&serde_json::to_string(header).map_err(io_invalid)?)?;
        writer.sync()?;
        Ok(writer)
    }

    /// Reopens an existing journal for appending (after a replay).
    pub fn append_to(path: impl Into<PathBuf>) -> Result<Self, JournalError> {
        let path = path.into();
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(JournalWriter {
            path,
            file: BufWriter::new(file),
            unsynced: 0,
            checkpoint_every: None,
            since_checkpoint: 0,
            fail_appends: 0,
        })
    }

    /// Reopens a journal for appending after truncating it to its intact
    /// prefix (`intact_len` bytes, as reported by [`LoadedJournal`]). This
    /// discards a torn final line so the next append starts a fresh line
    /// instead of gluing itself onto the torn one — which would make the
    /// loader drop every entry from the torn line onward on the *next*
    /// resume.
    pub fn append_from(path: impl Into<PathBuf>, intact_len: u64) -> Result<Self, JournalError> {
        let path = path.into();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.set_len(intact_len)?;
        file.seek(SeekFrom::End(0))?;
        // If the intact prefix does not end with a newline (a final line
        // that parsed fine but was never terminated), terminate it now.
        if intact_len > 0 {
            file.seek(SeekFrom::Start(intact_len - 1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            if last[0] != b'\n' {
                file.write_all(b"\n")?;
            }
        }
        file.sync_data()?;
        Ok(JournalWriter {
            path,
            file: BufWriter::new(file),
            unsynced: 0,
            checkpoint_every: None,
            since_checkpoint: 0,
            fail_appends: 0,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Enables (or disables, with `None`) checkpoint compaction every
    /// `every` appended entries.
    pub fn set_checkpoint_every(&mut self, every: Option<usize>) {
        self.checkpoint_every = every.filter(|n| *n > 0);
    }

    /// Makes the next `n` appends fail with a simulated out-of-space I/O
    /// error. Chaos hook for exercising the degrade-don't-die path without
    /// an actual full disk.
    pub fn fail_next_appends(&mut self, n: u64) {
        self.fail_appends = n;
    }

    /// Appends one entry; flushed immediately, fsynced every
    /// [`SYNC_EVERY`](Self::SYNC_EVERY) entries, compacted into the
    /// checkpoint when the configured interval is reached.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), JournalError> {
        if self.fail_appends > 0 {
            self.fail_appends -= 1;
            return Err(JournalError::Io(std::io::Error::other(
                "injected write failure (simulated full disk)",
            )));
        }
        self.write_line(&checksummed_line(entry)?)?;
        self.unsynced += 1;
        if self.unsynced >= Self::SYNC_EVERY {
            self.sync()?;
        }
        self.since_checkpoint += 1;
        if let Some(every) = self.checkpoint_every {
            if self.since_checkpoint >= every {
                self.compact()?;
            }
        }
        Ok(())
    }

    /// Compacts the journal: merges the existing checkpoint (if any) with
    /// the live tail into a new checkpoint file, written to a temporary
    /// sibling, fsynced, and atomically renamed into place; the live tail
    /// is then rewritten as just a header. A kill at any point leaves a
    /// loadable state: before the rename the old checkpoint + full tail
    /// are untouched; after it the new checkpoint holds everything and the
    /// (possibly still unrewritten) tail only contributes entries newer
    /// than the checkpoint.
    pub fn compact(&mut self) -> Result<(), JournalError> {
        self.sync()?;
        let merged = LoadedJournal::load_with_checkpoint(&self.path)?;
        let header = JournalHeader {
            version: JOURNAL_VERSION,
            ..merged.header.clone()
        };
        let header_line = serde_json::to_string(&header).map_err(io_invalid)?;
        let ckpt = checkpoint_path(&self.path);
        let tmp = checkpoint_tmp_path(&self.path);
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            w.write_all(header_line.as_bytes())?;
            w.write_all(b"\n")?;
            for entry in &merged.entries {
                w.write_all(checksummed_line(entry)?.as_bytes())?;
                w.write_all(b"\n")?;
            }
            w.flush()?;
            w.get_ref().sync_data()?;
        }
        std::fs::rename(&tmp, &ckpt)?;
        sync_parent_dir(&self.path);
        // From here on the checkpoint carries the history; restart the tail.
        self.file = BufWriter::new(File::create(&self.path)?);
        self.unsynced = 0;
        self.write_line(&header_line)?;
        self.file.get_ref().sync_data()?;
        self.since_checkpoint = 0;
        Ok(())
    }

    /// Flushes and fsyncs everything written so far.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    fn write_line(&mut self, line: &str) -> Result<(), JournalError> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        Ok(())
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

fn io_invalid(e: impl std::fmt::Display) -> JournalError {
    JournalError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        e.to_string(),
    ))
}

/// A fully loaded journal: header plus every intact entry.
#[derive(Clone, Debug)]
pub struct LoadedJournal {
    /// The run-identifying header.
    pub header: JournalHeader,
    /// All intact entries, in write order.
    pub entries: Vec<JournalEntry>,
    /// Byte length of the intact prefix of the live journal file (header
    /// plus every line that decoded cleanly). `None` when the live tail
    /// itself is unusable and only a checkpoint carried the run — the tail
    /// must then be recreated before appending. Appending beyond a torn
    /// line without truncating to this prefix first would merge the new
    /// entry into the torn line and lose both.
    pub tail_intact_len: Option<u64>,
}

impl LoadedJournal {
    /// Loads a single journal file, tolerating a torn (crash-truncated) or
    /// corrupt (checksum-mismatching) final line: entries from the first
    /// undecodable line onward are dropped.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let file = File::open(path.as_ref())?;
        let mut reader = BufReader::new(file);
        let mut buf = String::new();
        let n = reader.read_line(&mut buf)?;
        if n == 0 {
            return Err(JournalError::BadHeader("journal file is empty".into()));
        }
        let header: JournalHeader = serde_json::from_str(buf.trim_end())
            .map_err(|e| JournalError::BadHeader(e.to_string()))?;
        let mut intact = n as u64;
        let mut entries = Vec::new();
        loop {
            buf.clear();
            let n = reader.read_line(&mut buf)?;
            if n == 0 {
                break;
            }
            let line = buf.trim();
            if line.is_empty() {
                intact += n as u64;
                continue;
            }
            match parse_entry_line(line) {
                Some(entry) => {
                    entries.push(entry);
                    intact += n as u64;
                }
                // A torn or corrupt line: everything before it is intact,
                // so stop here and resume from that prefix.
                None => break,
            }
        }
        Ok(LoadedJournal {
            header,
            entries,
            tail_intact_len: Some(intact),
        })
    }

    /// Loads a journal together with its checkpoint: checkpoint entries
    /// first, then live-tail entries newer than the checkpoint's last
    /// arrival number. The deduplication makes every crash window of
    /// [`JournalWriter::compact`] safe — a tail that still holds
    /// checkpointed entries (kill after rename, before the tail rewrite)
    /// contributes nothing twice, and a tail torn at the header falls back
    /// to the checkpoint alone.
    pub fn load_with_checkpoint(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let path = path.as_ref();
        let ckpt_path = checkpoint_path(path);
        let ckpt = if ckpt_path.exists() {
            LoadedJournal::load(&ckpt_path).ok()
        } else {
            None
        };
        let Some(ckpt) = ckpt else {
            return Self::load(path);
        };
        match Self::load(path) {
            Ok(tail) => {
                if tail.header.technique != ckpt.header.technique
                    || tail.header.space_size != ckpt.header.space_size
                {
                    // The checkpoint belongs to some other run that once
                    // used this path; trust the live journal.
                    return Ok(tail);
                }
                let last = ckpt.entries.last().map(|e| e.evaluation).unwrap_or(0);
                let tail_intact_len = tail.tail_intact_len;
                let mut entries = ckpt.entries;
                entries.extend(tail.entries.into_iter().filter(|e| e.evaluation > last));
                Ok(LoadedJournal {
                    header: tail.header,
                    entries,
                    tail_intact_len,
                })
            }
            // A kill between the checkpoint rename and the tail rewrite can
            // leave the tail empty or headerless; the checkpoint alone
            // carries the run.
            Err(JournalError::BadHeader(_)) => Ok(LoadedJournal {
                header: ckpt.header,
                entries: ckpt.entries,
                tail_intact_len: None,
            }),
            Err(JournalError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                Ok(LoadedJournal {
                    header: ckpt.header,
                    entries: ckpt.entries,
                    tail_intact_len: None,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Verifies the header matches the current run's shape.
    pub fn check_matches(&self, technique: &str, space_size: u128) -> Result<(), JournalError> {
        let expected = format!("technique={technique} space={space_size}");
        let journal = format!(
            "technique={} space={}",
            self.header.technique, self.header.space_size
        );
        if self.header.technique != technique || self.header.space_size != space_size.to_string() {
            return Err(JournalError::Mismatch { journal, expected });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("atf-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join("run.ndjson")
    }

    fn header() -> JournalHeader {
        JournalHeader {
            version: JOURNAL_VERSION,
            technique: "exhaustive".into(),
            space_size: "64".into(),
            window: 1,
        }
    }

    fn ok_entry(n: u64) -> JournalEntry {
        JournalEntry {
            evaluation: n,
            ticket: Some(n),
            point: vec![n, n + 1],
            costs: Some(vec![n as f64 * 0.5]),
            failure: None,
            elapsed_ms: Some(n * 100),
        }
    }

    #[test]
    fn write_and_load_round_trip() {
        let path = tmp("rt");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append(&ok_entry(1)).unwrap();
        w.append(&JournalEntry {
            evaluation: 2,
            ticket: Some(2),
            point: vec![0, 3],
            costs: None,
            failure: Some(FailureKind::Timeout.label().to_string()),
            elapsed_ms: Some(250),
        })
        .unwrap();
        drop(w);

        let loaded = LoadedJournal::load(&path).unwrap();
        assert_eq!(loaded.header, header());
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.entries[0].costs, Some(vec![0.5]));
        assert_eq!(loaded.entries[1].failure_kind(), Some(FailureKind::Timeout));
        loaded.check_matches("exhaustive", 64).unwrap();
        assert!(loaded.check_matches("annealing", 64).is_err());
        assert!(loaded.check_matches("exhaustive", 65).is_err());
    }

    #[test]
    fn append_continues_an_existing_journal() {
        let path = tmp("append");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append(&ok_entry(1)).unwrap();
        drop(w);
        let mut w = JournalWriter::append_to(&path).unwrap();
        w.append(&ok_entry(2)).unwrap();
        drop(w);
        let loaded = LoadedJournal::load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.entries[1].evaluation, 2);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = tmp("torn");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append(&ok_entry(1)).unwrap();
        w.append(&ok_entry(2)).unwrap();
        drop(w);
        // Simulate a crash mid-write: append half a JSON line.
        use std::io::Write as _;
        let intact = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"evaluation\":3,\"point\":[1").unwrap();
        drop(f);
        let loaded = LoadedJournal::load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.tail_intact_len, Some(intact));
    }

    #[test]
    fn append_from_truncates_the_torn_tail_first() {
        // Appending after a torn line must not glue the new entry onto it:
        // the loader would drop both on the next resume.
        let path = tmp("torn-append");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append(&ok_entry(1)).unwrap();
        drop(w);
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"evaluation\":2,\"point\":[9").unwrap();
        drop(f);
        let loaded = LoadedJournal::load(&path).unwrap();
        let mut w = JournalWriter::append_from(&path, loaded.tail_intact_len.unwrap()).unwrap();
        w.append(&ok_entry(2)).unwrap();
        drop(w);
        let loaded = LoadedJournal::load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.entries[1], ok_entry(2));
    }

    #[test]
    fn corrupt_entry_line_is_detected_by_checksum() {
        let path = tmp("crc");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append(&ok_entry(1)).unwrap();
        w.append(&ok_entry(2)).unwrap();
        w.append(&ok_entry(3)).unwrap();
        drop(w);
        // Flip one digit inside the middle entry's payload: still valid
        // JSON, but the checksum no longer matches, so loading stops there.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        assert!(lines[2].contains("\"evaluation\":2"));
        lines[2] = lines[2].replace("\"evaluation\":2", "\"evaluation\":7");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let loaded = LoadedJournal::load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 1);
        assert_eq!(loaded.entries[0].evaluation, 1);
    }

    #[test]
    fn version_1_journals_load_with_defaults() {
        // A journal written before tickets/window existed must still load:
        // window defaults to 1 and tickets to None (= the evaluation number).
        let path = tmp("v1");
        std::fs::write(
            &path,
            concat!(
                "{\"version\":1,\"technique\":\"exhaustive\",\"space_size\":\"64\"}\n",
                "{\"evaluation\":1,\"point\":[0,1],\"costs\":[1.0]}\n",
            ),
        )
        .unwrap();
        let loaded = LoadedJournal::load(&path).unwrap();
        assert_eq!(loaded.header.window, 1);
        assert_eq!(loaded.entries.len(), 1);
        assert_eq!(loaded.entries[0].ticket, None);
        assert_eq!(loaded.entries[0].elapsed_ms, None);
    }

    #[test]
    fn version_2_journals_load_without_elapsed() {
        // Version-2 journals (tickets + window, no timestamps) must still
        // load; their entries carry no elapsed time, so a resume keeps the
        // old restart-the-clock behaviour instead of failing.
        let path = tmp("v2");
        std::fs::write(
            &path,
            concat!(
                "{\"version\":2,\"technique\":\"exhaustive\",\"space_size\":\"64\",\"window\":2}\n",
                "{\"evaluation\":1,\"ticket\":2,\"point\":[0,1],\"costs\":[1.0]}\n",
            ),
        )
        .unwrap();
        let loaded = LoadedJournal::load(&path).unwrap();
        assert_eq!(loaded.header.window, 2);
        assert_eq!(loaded.entries[0].ticket, Some(2));
        assert_eq!(loaded.entries[0].elapsed_ms, None);
    }

    #[test]
    fn checkpoint_compaction_round_trip() {
        let path = tmp("ckpt");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.set_checkpoint_every(Some(3));
        for n in 1..=8 {
            w.append(&ok_entry(n)).unwrap();
        }
        drop(w);
        assert!(checkpoint_path(&path).exists());
        // The live tail holds only the entries since the last compaction.
        let tail = LoadedJournal::load(&path).unwrap();
        assert!(tail.entries.len() < 8);
        // Checkpoint + tail replays the full history, in order.
        let merged = LoadedJournal::load_with_checkpoint(&path).unwrap();
        let expected: Vec<JournalEntry> = (1..=8).map(ok_entry).collect();
        assert_eq!(merged.entries, expected);
    }

    #[test]
    fn kill_after_rename_before_tail_rewrite_deduplicates() {
        // Simulate the compaction crash window where the checkpoint is in
        // place but the tail still holds everything it checkpointed.
        let path = tmp("ckpt-dup");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        for n in 1..=5 {
            w.append(&ok_entry(n)).unwrap();
        }
        drop(w);
        let full = std::fs::read(&path).unwrap();
        let mut w = JournalWriter::append_to(&path).unwrap();
        w.set_checkpoint_every(Some(1));
        w.append(&ok_entry(6)).unwrap(); // compacts: ckpt = 1..=6, tail = header only
        drop(w);
        // Restore the pre-compaction tail as if the rewrite never happened,
        // then add one post-checkpoint entry.
        std::fs::write(&path, full).unwrap();
        let mut w = JournalWriter::append_to(&path).unwrap();
        w.append(&ok_entry(7)).unwrap();
        drop(w);
        let merged = LoadedJournal::load_with_checkpoint(&path).unwrap();
        let mut expected: Vec<JournalEntry> = (1..=6).map(ok_entry).collect();
        expected.push(ok_entry(7));
        assert_eq!(merged.entries, expected);
    }

    #[test]
    fn tail_torn_at_header_falls_back_to_checkpoint() {
        let path = tmp("ckpt-torn-head");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.set_checkpoint_every(Some(2));
        for n in 1..=4 {
            w.append(&ok_entry(n)).unwrap();
        }
        drop(w);
        // Kill between File::create(tail) and the header write: empty tail.
        std::fs::write(&path, "").unwrap();
        let merged = LoadedJournal::load_with_checkpoint(&path).unwrap();
        assert_eq!(merged.entries, (1..=4).map(ok_entry).collect::<Vec<_>>());
        assert_eq!(merged.tail_intact_len, None);
    }

    #[test]
    fn lingering_tmp_checkpoint_is_ignored_and_fresh_create_clears_state() {
        let path = tmp("ckpt-tmp");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.set_checkpoint_every(Some(1));
        w.append(&ok_entry(1)).unwrap();
        drop(w);
        // A kill before the rename leaves only the tmp file behind; the
        // loader never reads it.
        std::fs::write(checkpoint_tmp_path(&path), "garbage\n").unwrap();
        let merged = LoadedJournal::load_with_checkpoint(&path).unwrap();
        assert_eq!(merged.entries.len(), 1);
        // A fresh create() must clear both checkpoint artifacts, or a new
        // run would inherit the old run's history on resume.
        let w = JournalWriter::create(&path, &header()).unwrap();
        drop(w);
        assert!(!checkpoint_path(&path).exists());
        assert!(!checkpoint_tmp_path(&path).exists());
        let merged = LoadedJournal::load_with_checkpoint(&path).unwrap();
        assert!(merged.entries.is_empty());
    }

    #[test]
    fn injected_write_failure_surfaces_as_io_error() {
        let path = tmp("enospc");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append(&ok_entry(1)).unwrap();
        w.fail_next_appends(1);
        assert!(matches!(w.append(&ok_entry(2)), Err(JournalError::Io(_))));
        // The failure consumed the injection; later appends succeed again.
        w.append(&ok_entry(2)).unwrap();
        drop(w);
        assert_eq!(LoadedJournal::load(&path).unwrap().entries.len(), 2);
    }

    #[test]
    fn empty_or_garbled_header_rejected() {
        let path = tmp("bad");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            LoadedJournal::load(&path),
            Err(JournalError::BadHeader(_))
        ));
        std::fs::write(&path, "not json\n").unwrap();
        assert!(matches!(
            LoadedJournal::load(&path),
            Err(JournalError::BadHeader(_))
        ));
    }
}
