//! Tuning-parameter ranges: intervals (with step size and generator) and sets.
//!
//! Mirrors `atf::interval<T>(begin, end, step_size, generator)` and
//! `atf::set(v1, ..., vn)` from the paper (Section II, Step 1). Intervals are
//! *lazy*: elements are computed on demand, so a range of size 2^24 costs no
//! memory — this is part of what lets ATF handle "substantially larger
//! parameter ranges" than CLTune.

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A generator function mapping the interval index value to a domain-specific
/// value, e.g. `|i| 2u64.pow(i as u32)` for powers of two.
pub type Generator = Arc<dyn Fn(Value) -> Value + Send + Sync>;

/// The range of valid values of a tuning parameter, before constraints.
#[derive(Clone)]
pub enum Range {
    /// `begin..=end` in steps of `step`, over signed integers.
    IntInterval {
        begin: i64,
        end: i64,
        step: i64,
        generator: Option<Generator>,
    },
    /// `begin..=end` in steps of `step`, over unsigned integers.
    UIntInterval {
        begin: u64,
        end: u64,
        step: u64,
        generator: Option<Generator>,
    },
    /// `begin..=end` in steps of `step`, over floats.
    FloatInterval {
        begin: f64,
        end: f64,
        step: f64,
        generator: Option<Generator>,
    },
    /// An explicitly enumerated set of values.
    Set(Arc<[Value]>),
}

impl Range {
    /// An inclusive unsigned interval `[begin, end]` with step 1 —
    /// `atf::interval<size_t>(begin, end)`.
    pub fn interval(begin: u64, end: u64) -> Self {
        Range::UIntInterval {
            begin,
            end,
            step: 1,
            generator: None,
        }
    }

    /// An inclusive unsigned interval with an explicit step size.
    pub fn interval_step(begin: u64, end: u64, step: u64) -> Self {
        assert!(step > 0, "interval step size must be positive");
        Range::UIntInterval {
            begin,
            end,
            step,
            generator: None,
        }
    }

    /// An inclusive unsigned interval whose elements are
    /// `generator(begin), generator(begin+step), ...` — e.g.
    /// `Range::interval_gen(1, 10, |i| ...)` for the first ten powers of two.
    pub fn interval_gen<F, T>(begin: u64, end: u64, generator: F) -> Self
    where
        F: Fn(u64) -> T + Send + Sync + 'static,
        T: Into<Value>,
    {
        Range::UIntInterval {
            begin,
            end,
            step: 1,
            generator: Some(Arc::new(move |v: Value| {
                generator(v.as_u64().expect("uint interval index")).into()
            })),
        }
    }

    /// An inclusive signed interval `[begin, end]` with step 1.
    pub fn int_interval(begin: i64, end: i64) -> Self {
        Range::IntInterval {
            begin,
            end,
            step: 1,
            generator: None,
        }
    }

    /// An inclusive signed interval with an explicit step size.
    pub fn int_interval_step(begin: i64, end: i64, step: i64) -> Self {
        assert!(step > 0, "interval step size must be positive");
        Range::IntInterval {
            begin,
            end,
            step,
            generator: None,
        }
    }

    /// An inclusive float interval `[begin, end]` in steps of `step`.
    pub fn float_interval(begin: f64, end: f64, step: f64) -> Self {
        assert!(step > 0.0, "interval step size must be positive");
        assert!(
            begin.is_finite() && end.is_finite() && step.is_finite(),
            "float interval bounds must be finite"
        );
        Range::FloatInterval {
            begin,
            end,
            step,
            generator: None,
        }
    }

    /// An explicitly enumerated set — `atf::set(v1, ..., vn)`.
    pub fn set<I, T>(values: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Value>,
    {
        Range::Set(values.into_iter().map(Into::into).collect())
    }

    /// The set `{true, false}` (CLBlast's PADA/PADB style parameters).
    pub fn boolean() -> Self {
        Range::set([true, false])
    }

    /// Number of elements in the range.
    pub fn len(&self) -> u64 {
        match self {
            Range::IntInterval {
                begin, end, step, ..
            } => {
                if begin > end {
                    0
                } else {
                    (end.wrapping_sub(*begin) as u64) / (*step as u64) + 1
                }
            }
            Range::UIntInterval {
                begin, end, step, ..
            } => {
                if begin > end {
                    0
                } else {
                    (end - begin) / step + 1
                }
            }
            Range::FloatInterval {
                begin, end, step, ..
            } => {
                if begin > end {
                    0
                } else {
                    // Count of begin + k*step <= end (+ epsilon tolerance for
                    // accumulated rounding).
                    (((end - begin) / step) + 1e-9).floor() as u64 + 1
                }
            }
            Range::Set(v) => v.len() as u64,
        }
    }

    /// `true` if the range has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th element of the range (after generator application).
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: u64) -> Value {
        assert!(i < self.len(), "range index {i} out of bounds");
        match self {
            Range::IntInterval {
                begin,
                step,
                generator,
                ..
            } => apply(generator, Value::Int(begin + (i as i64) * step)),
            Range::UIntInterval {
                begin,
                step,
                generator,
                ..
            } => apply(generator, Value::UInt(begin + i * step)),
            Range::FloatInterval {
                begin,
                step,
                generator,
                ..
            } => apply(generator, Value::Float(begin + (i as f64) * step)),
            Range::Set(v) => v[i as usize].clone(),
        }
    }

    /// Iterates over the elements of the range.
    pub fn iter(&self) -> RangeIter<'_> {
        RangeIter {
            range: self,
            next: 0,
            len: self.len(),
        }
    }

    /// Returns `true` if the range contains `value` (by equality after
    /// generator application; O(len) for generated intervals and sets,
    /// O(1) for plain intervals).
    pub fn contains(&self, value: &Value) -> bool {
        match self {
            Range::UIntInterval {
                begin,
                end,
                step,
                generator: None,
            } => match value.as_u64() {
                Some(v) => v >= *begin && v <= *end && (v - begin) % step == 0,
                None => false,
            },
            Range::IntInterval {
                begin,
                end,
                step,
                generator: None,
            } => match value.as_i64() {
                Some(v) => v >= *begin && v <= *end && (v - begin) % step == 0,
                None => false,
            },
            _ => self.iter().any(|v| v == *value),
        }
    }
}

fn apply(generator: &Option<Generator>, v: Value) -> Value {
    match generator {
        Some(g) => g(v),
        None => v,
    }
}

impl fmt::Debug for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Range::IntInterval {
                begin,
                end,
                step,
                generator,
            } => write!(
                f,
                "interval<i64>[{begin}, {end}; step {step}{}]",
                if generator.is_some() { "; gen" } else { "" }
            ),
            Range::UIntInterval {
                begin,
                end,
                step,
                generator,
            } => write!(
                f,
                "interval<u64>[{begin}, {end}; step {step}{}]",
                if generator.is_some() { "; gen" } else { "" }
            ),
            Range::FloatInterval {
                begin,
                end,
                step,
                generator,
            } => write!(
                f,
                "interval<f64>[{begin}, {end}; step {step}{}]",
                if generator.is_some() { "; gen" } else { "" }
            ),
            Range::Set(v) => {
                write!(f, "set{{")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Iterator over a [`Range`]'s elements.
pub struct RangeIter<'a> {
    range: &'a Range,
    next: u64,
    len: u64,
}

impl Iterator for RangeIter<'_> {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        if self.next >= self.len {
            None
        } else {
            let v = self.range.get(self.next);
            self.next += 1;
            Some(v)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.len - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RangeIter<'_> {}

impl<'a> IntoIterator for &'a Range {
    type Item = Value;
    type IntoIter = RangeIter<'a>;

    fn into_iter(self) -> RangeIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_interval_basics() {
        let r = Range::interval(1, 10);
        assert_eq!(r.len(), 10);
        assert_eq!(r.get(0), Value::from(1u64));
        assert_eq!(r.get(9), Value::from(10u64));
        let all: Vec<_> = r.iter().collect();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn stepped_interval() {
        let r = Range::interval_step(2, 11, 3); // 2, 5, 8, 11
        assert_eq!(r.len(), 4);
        assert_eq!(
            r.iter().collect::<Vec<_>>(),
            vec![2u64.into(), 5u64.into(), 8u64.into(), 11u64.into()]
        );
        let r = Range::interval_step(2, 10, 3); // 2, 5, 8
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(2), Value::from(8u64));
    }

    #[test]
    fn empty_interval() {
        let r = Range::interval(5, 4);
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn generator_powers_of_two() {
        // The paper's example: the first ten powers of 2.
        let r = Range::interval_gen(1, 10, |i| 2u64.pow(i as u32));
        assert_eq!(r.len(), 10);
        assert_eq!(r.get(0), Value::from(2u64));
        assert_eq!(r.get(9), Value::from(1024u64));
    }

    #[test]
    fn int_interval_negative() {
        let r = Range::int_interval(-3, 3);
        assert_eq!(r.len(), 7);
        assert_eq!(r.get(0), Value::from(-3i64));
        assert_eq!(r.get(6), Value::from(3i64));
    }

    #[test]
    fn float_interval() {
        let r = Range::float_interval(0.0, 1.0, 0.25);
        assert_eq!(r.len(), 5);
        assert_eq!(r.get(4), Value::from(1.0f64));
    }

    #[test]
    fn float_interval_rounding_tolerance() {
        let r = Range::float_interval(0.0, 0.3, 0.1);
        assert_eq!(r.len(), 4); // 0.0 0.1 0.2 0.3 despite binary rounding
    }

    #[test]
    fn set_of_mixed() {
        let r = Range::set([1u64, 2, 4, 8]);
        assert_eq!(r.len(), 4);
        assert!(r.contains(&Value::from(4u64)));
        assert!(!r.contains(&Value::from(3u64)));
    }

    #[test]
    fn symbol_set() {
        let r = Range::set(["scalar", "vec2", "vec4"]);
        assert_eq!(r.get(1), Value::from("vec2"));
    }

    #[test]
    fn boolean_range() {
        let r = Range::boolean();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Value::from(true)));
    }

    #[test]
    fn contains_fast_path_with_step() {
        let r = Range::interval_step(4, 64, 4);
        assert!(r.contains(&Value::from(4u64)));
        assert!(r.contains(&Value::from(64u64)));
        assert!(!r.contains(&Value::from(6u64)));
        assert!(!r.contains(&Value::from(68u64)));
    }

    #[test]
    fn lazy_interval_is_cheap() {
        // 2^40 elements, no memory: len/get only.
        let r = Range::interval(1, 1 << 40);
        assert_eq!(r.len(), 1 << 40);
        assert_eq!(r.get((1 << 40) - 1), Value::from(1u64 << 40));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Range::interval(1, 3).get(3);
    }
}
