//! Deterministic fault injection for cost functions: wraps any inner cost
//! function with a seeded schedule of hangs (timeouts), crashes, flaky
//! transients, and slow evaluations, so the fault-tolerance machinery —
//! retry policy, failure taxonomy, circuit breaker, journal replay — can be
//! proven against every search technique without a flaky real device.
//!
//! The schedule is a pure function of the seed and the call sequence:
//! two runs with the same seed, technique, and reporting order inject the
//! exact same faults, which keeps killed-and-resumed equivalence tests
//! deterministic.

use crate::config::Config;
use crate::cost::{CostError, CostFunction};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// Injection rates (each in `[0, 1]`; drawn in the listed order from one
/// uniform sample, so their sum must be ≤ 1).
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// RNG seed: the entire schedule derives from it.
    pub seed: u64,
    /// Fraction of evaluations that "hang" and are reported as
    /// [`CostError::Timeout`] (a simulated deadline kill).
    pub timeout_rate: f64,
    /// Fraction of evaluations that crash
    /// ([`CostError::Crashed`] with a SIGSEGV-style signal).
    pub crash_rate: f64,
    /// Fraction of evaluations that fail transiently
    /// ([`CostError::Transient`]); an immediate re-evaluation of the same
    /// configuration (a retry) succeeds.
    pub transient_rate: f64,
    /// Fraction of evaluations that are slowed by [`FaultPlan::slow_by`]
    /// before succeeding.
    pub slow_rate: f64,
    /// Added latency for "slow" evaluations.
    pub slow_by: Duration,
}

impl FaultPlan {
    /// A plan with the given seed and all rates zero.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            timeout_rate: 0.0,
            crash_rate: 0.0,
            transient_rate: 0.0,
            slow_rate: 0.0,
            slow_by: Duration::ZERO,
        }
    }

    /// The stress plan used by the fault-injection test suite: ~10 %
    /// hangs, ~10 % crashes, ~20 % flaky transients.
    pub fn stressful(seed: u64) -> Self {
        FaultPlan {
            seed,
            timeout_rate: 0.1,
            crash_rate: 0.1,
            transient_rate: 0.2,
            slow_rate: 0.0,
            slow_by: Duration::ZERO,
        }
    }

    fn check(&self) {
        let sum = self.timeout_rate + self.crash_rate + self.transient_rate + self.slow_rate;
        assert!(
            (0.0..=1.0).contains(&sum),
            "fault rates must sum to at most 1 (got {sum})"
        );
    }
}

/// A cost function that injects scheduled faults around `inner`.
pub struct FaultyCostFunction<F> {
    inner: F,
    plan: FaultPlan,
    rng: ChaCha8Rng,
    /// The configuration whose last evaluation failed transiently — an
    /// immediate retry of it succeeds (that is what "transient" means).
    healing: Option<Config>,
    injected: [u64; 4],
}

impl<F: CostFunction> FaultyCostFunction<F> {
    /// Wraps `inner` under `plan`.
    ///
    /// # Panics
    /// Panics if the plan's rates sum to more than 1.
    pub fn new(inner: F, plan: FaultPlan) -> Self {
        plan.check();
        FaultyCostFunction {
            inner,
            rng: ChaCha8Rng::seed_from_u64(plan.seed),
            plan,
            healing: None,
            injected: [0; 4],
        }
    }

    /// `(timeouts, crashes, transients, slowdowns)` injected so far.
    pub fn injected(&self) -> (u64, u64, u64, u64) {
        let [t, c, f, s] = self.injected;
        (t, c, f, s)
    }

    /// The wrapped cost function.
    pub fn into_inner(self) -> F {
        self.inner
    }
}

impl<F: CostFunction> CostFunction for FaultyCostFunction<F> {
    type Cost = F::Cost;

    fn evaluate(&mut self, config: &Config) -> Result<F::Cost, CostError> {
        // A retry of the transiently failed configuration heals.
        if self.healing.as_ref() == Some(config) {
            self.healing = None;
            return self.inner.evaluate(config);
        }
        self.healing = None;
        let draw: f64 = self.rng.gen_range(0.0..1.0);
        let p = &self.plan;
        if draw < p.timeout_rate {
            self.injected[0] += 1;
            return Err(CostError::Timeout {
                limit: Duration::from_secs(1),
            });
        }
        if draw < p.timeout_rate + p.crash_rate {
            self.injected[1] += 1;
            return Err(CostError::Crashed {
                signal: Some(11),
                exit: None,
                stderr: "injected segfault".into(),
            });
        }
        if draw < p.timeout_rate + p.crash_rate + p.transient_rate {
            self.injected[2] += 1;
            self.healing = Some(config.clone());
            return Err(CostError::Transient("injected flake".into()));
        }
        if draw < p.timeout_rate + p.crash_rate + p.transient_rate + p.slow_rate {
            self.injected[3] += 1;
            std::thread::sleep(p.slow_by);
        }
        self.inner.evaluate(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::cost_fn;

    fn base() -> impl CostFunction<Cost = f64> {
        cost_fn(|c: &Config| c.get_u64("X") as f64)
    }

    fn cfg(x: u64) -> Config {
        Config::from_pairs([("X", x)])
    }

    #[test]
    fn zero_rates_are_transparent() {
        let mut cf = FaultyCostFunction::new(base(), FaultPlan::new(7));
        for x in 1..=20 {
            assert_eq!(cf.evaluate(&cfg(x)).unwrap(), x as f64);
        }
        assert_eq!(cf.injected(), (0, 0, 0, 0));
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut cf = FaultyCostFunction::new(base(), FaultPlan::stressful(seed));
            (1..=50)
                .map(|x| cf.evaluate(&cfg(x)).map_err(|e| e.kind()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds give different schedules");
    }

    #[test]
    fn injects_every_failure_kind() {
        let mut cf = FaultyCostFunction::new(base(), FaultPlan::stressful(1));
        let mut kinds = std::collections::BTreeSet::new();
        for x in 1..=200 {
            if let Err(e) = cf.evaluate(&cfg(x)) {
                kinds.insert(e.kind());
            }
        }
        let (t, c, f, _) = cf.injected();
        assert!(t > 0 && c > 0 && f > 0, "injected: {:?}", cf.injected());
        assert_eq!(kinds.len(), 3);
    }

    #[test]
    fn transient_heals_on_immediate_retry() {
        let mut cf = FaultyCostFunction::new(
            base(),
            FaultPlan {
                transient_rate: 1.0,
                ..FaultPlan::new(5)
            },
        );
        let err = cf.evaluate(&cfg(3)).unwrap_err();
        assert!(matches!(err, CostError::Transient(_)));
        assert_eq!(cf.evaluate(&cfg(3)).unwrap(), 3.0);
        // A different configuration does not heal the next draw.
        assert!(cf.evaluate(&cfg(4)).is_err());
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn overfull_rates_rejected() {
        FaultyCostFunction::new(
            base(),
            FaultPlan {
                timeout_rate: 0.7,
                crash_rate: 0.7,
                ..FaultPlan::new(0)
            },
        );
    }
}
