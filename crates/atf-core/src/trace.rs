//! Structured event trace: an NDJSON stream of typed events describing
//! everything a tuning run does — space generation, handouts, report
//! arrivals, evaluation latencies, retries, breaker trips, worker
//! busy/idle transitions, and which abort condition ended the run.
//!
//! Events flow through a [`TraceSink`], a cheap `Send + Sync` trait with a
//! no-op default ([`NullSink`]) so instrumented code paths cost one virtual
//! call and no allocation when tracing is off. [`FileSink`] appends one
//! JSON object per line (the `--trace FILE` stream of `atf-tune run`);
//! [`MemorySink`] collects events in memory for tests.
//!
//! Every line carries an `event` field naming its kind (see
//! [`EVENT_KINDS`]); all other fields are optional and kind-specific, and
//! absent fields are omitted from the serialized line rather than written
//! as `null`. Timing fields (`micros`) are wall-clock measurements and
//! therefore *not* deterministic across runs; everything else in a seeded
//! run is.

use crate::search::Point;
use serde::Deserialize;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Every event kind a session or its drivers can emit. CI validates trace
/// streams against this list.
pub const EVENT_KINDS: &[&str] = &[
    "space_gen",
    "space_chunk",
    "space_cache",
    "handout",
    "report",
    "eval",
    "retry",
    "breaker",
    "abort",
    "worker_busy",
    "worker_idle",
    "proc",
    "journal",
    "admission",
    "shed",
    "drain",
    "db_compact",
    "reactor",
    "campaign_node",
    "campaign_budget",
    "campaign_skip",
];

/// One trace event. `event` names the kind; the remaining fields are
/// kind-specific payload (unused ones stay `None` and are omitted from the
/// NDJSON line). Flat rather than an enum so the wire shape matches the
/// service protocol envelopes and new kinds never break old readers.
#[derive(Clone, Debug, Default, PartialEq, Deserialize)]
pub struct TraceEvent {
    /// Event kind, one of [`EVENT_KINDS`].
    pub event: String,
    /// `space_gen`, `space_chunk`: index of the parameter group.
    pub group: Option<usize>,
    /// `space_gen`: number of tuning parameters in the group.
    pub params: Option<usize>,
    /// `space_chunk`: index of the leading-parameter chunk within the group.
    pub chunk: Option<usize>,
    /// `space_gen`, `space_chunk`: number of valid configurations generated.
    pub size: Option<u64>,
    /// `space_cache`: the spec hash key that was probed.
    pub key: Option<String>,
    /// Wall-clock duration of the measured step, in microseconds
    /// (`space_gen`, `eval`, `proc`, `worker_idle` busy time).
    pub micros: Option<u64>,
    /// Ticket of the handout this event concerns.
    pub ticket: Option<u64>,
    /// `handout`: coordinates of the configuration the technique chose.
    pub point: Option<Point>,
    /// `report`: 1-based arrival number (journal numbering).
    pub arrival: Option<u64>,
    /// Whether the measurement succeeded (`report`, `eval`, `proc`).
    pub ok: Option<bool>,
    /// Failure taxonomy label when the measurement failed
    /// ([`crate::cost::FailureKind::label`]).
    pub failure: Option<String>,
    /// `retry`: 1-based attempt number that just failed.
    pub attempt: Option<u32>,
    /// `retry`: backoff delay before the next attempt, in milliseconds.
    pub delay_ms: Option<u64>,
    /// `breaker`: consecutive failures when the circuit breaker tripped.
    pub consecutive: Option<u64>,
    /// `abort`: description of the abort condition that fired, or
    /// `"technique exhausted"`.
    pub condition: Option<String>,
    /// `abort`: applied evaluations when the run stopped.
    pub evaluations: Option<u64>,
    /// `abort`: elapsed wall clock (cumulative across resumes) in ms.
    pub elapsed_ms: Option<u64>,
    /// Worker index (`worker_busy`, `worker_idle`).
    pub worker: Option<usize>,
    /// `proc`: which script ran (`"compile"` or `"run"`).
    pub phase: Option<String>,
    /// `journal`: why journaling degraded (the underlying I/O error).
    /// `shed`: what was shed and why; `drain`: drain outcome detail.
    pub message: Option<String>,
    /// `admission`, `shed`: tenant the decision concerned.
    pub tenant: Option<String>,
    /// `reactor`: poll-loop threads owning the connection sockets.
    pub io_threads: Option<usize>,
    /// `reactor`: handler threads behind the ready queue.
    pub handlers: Option<usize>,
    /// `campaign_node`, `campaign_budget`, `campaign_skip`: the campaign
    /// node the event concerns.
    pub node: Option<String>,
}

// Hand-written so `None` fields are omitted from the line entirely; the
// vendored derive would serialize them as `null` and triple the stream.
impl serde::Serialize for TraceEvent {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![(
            "event".to_string(),
            serde::Value::String(self.event.clone()),
        )];
        fn push<T: serde::Serialize>(
            fields: &mut Vec<(String, serde::Value)>,
            key: &str,
            v: &Option<T>,
        ) {
            if let Some(v) = v {
                fields.push((key.to_string(), v.to_value()));
            }
        }
        push(&mut fields, "group", &self.group);
        push(&mut fields, "params", &self.params);
        push(&mut fields, "chunk", &self.chunk);
        push(&mut fields, "size", &self.size);
        push(&mut fields, "key", &self.key);
        push(&mut fields, "micros", &self.micros);
        push(&mut fields, "ticket", &self.ticket);
        push(&mut fields, "point", &self.point);
        push(&mut fields, "arrival", &self.arrival);
        push(&mut fields, "ok", &self.ok);
        push(&mut fields, "failure", &self.failure);
        push(&mut fields, "attempt", &self.attempt);
        push(&mut fields, "delay_ms", &self.delay_ms);
        push(&mut fields, "consecutive", &self.consecutive);
        push(&mut fields, "condition", &self.condition);
        push(&mut fields, "evaluations", &self.evaluations);
        push(&mut fields, "elapsed_ms", &self.elapsed_ms);
        push(&mut fields, "worker", &self.worker);
        push(&mut fields, "phase", &self.phase);
        push(&mut fields, "message", &self.message);
        push(&mut fields, "tenant", &self.tenant);
        push(&mut fields, "io_threads", &self.io_threads);
        push(&mut fields, "handlers", &self.handlers);
        push(&mut fields, "node", &self.node);
        serde::Value::Object(fields)
    }
}

impl TraceEvent {
    fn kind(event: &str) -> Self {
        TraceEvent {
            event: event.to_string(),
            ..TraceEvent::default()
        }
    }

    /// One parameter group's portion of search-space generation finished.
    pub fn space_gen(group: usize, params: usize, size: u64, micros: u64) -> Self {
        TraceEvent {
            group: Some(group),
            params: Some(params),
            size: Some(size),
            micros: Some(micros),
            ..Self::kind("space_gen")
        }
    }

    /// One leading-parameter chunk of a group's parallel generation
    /// finished (events arrive in completion order, not chunk order).
    pub fn space_chunk(group: usize, chunk: usize, size: u64, micros: u64) -> Self {
        TraceEvent {
            group: Some(group),
            chunk: Some(chunk),
            size: Some(size),
            micros: Some(micros),
            ..Self::kind("space_chunk")
        }
    }

    /// The persistent space cache was probed for `key`; `hit` says whether
    /// a valid entry was loaded (a miss is followed by generation + store).
    pub fn space_cache(key: &str, hit: bool) -> Self {
        TraceEvent {
            key: Some(key.to_string()),
            ok: Some(hit),
            ..Self::kind("space_cache")
        }
    }

    /// The technique chose `point` and the session handed it out as `ticket`.
    pub fn handout(ticket: u64, point: Point) -> Self {
        TraceEvent {
            ticket: Some(ticket),
            point: Some(point),
            ..Self::kind("handout")
        }
    }

    /// A report on `ticket` arrived (the `arrival`-th arrival overall).
    pub fn report(ticket: u64, arrival: u64, failure: Option<&str>) -> Self {
        TraceEvent {
            ticket: Some(ticket),
            arrival: Some(arrival),
            ok: Some(failure.is_none()),
            failure: failure.map(str::to_string),
            ..Self::kind("report")
        }
    }

    /// One evaluation completed: handout-to-report latency plus outcome.
    pub fn eval(ticket: u64, micros: u64, failure: Option<&str>) -> Self {
        TraceEvent {
            ticket: Some(ticket),
            micros: Some(micros),
            ok: Some(failure.is_none()),
            failure: failure.map(str::to_string),
            ..Self::kind("eval")
        }
    }

    /// A retryable failure triggered a backoff-and-retry.
    pub fn retry(attempt: u32, delay_ms: u64, failure: &str) -> Self {
        TraceEvent {
            attempt: Some(attempt),
            delay_ms: Some(delay_ms),
            failure: Some(failure.to_string()),
            ..Self::kind("retry")
        }
    }

    /// The circuit breaker tripped.
    pub fn breaker(consecutive: u64, failure: &str) -> Self {
        TraceEvent {
            consecutive: Some(consecutive),
            failure: Some(failure.to_string()),
            ..Self::kind("breaker")
        }
    }

    /// Exploration stopped; `condition` says which abort condition fired.
    pub fn abort(condition: &str, evaluations: u64, elapsed_ms: u64) -> Self {
        TraceEvent {
            condition: Some(condition.to_string()),
            evaluations: Some(evaluations),
            elapsed_ms: Some(elapsed_ms),
            ..Self::kind("abort")
        }
    }

    /// Worker `worker` started evaluating `ticket`.
    pub fn worker_busy(worker: usize, ticket: u64) -> Self {
        TraceEvent {
            worker: Some(worker),
            ticket: Some(ticket),
            ..Self::kind("worker_busy")
        }
    }

    /// Worker `worker` finished an evaluation that took `micros`.
    pub fn worker_idle(worker: usize, micros: u64) -> Self {
        TraceEvent {
            worker: Some(worker),
            micros: Some(micros),
            ..Self::kind("worker_idle")
        }
    }

    /// The run journal degraded: an append or checkpoint failed (ENOSPC,
    /// I/O error) and the session continues in-memory without it.
    pub fn journal_degraded(message: &str) -> Self {
        TraceEvent {
            ok: Some(false),
            message: Some(message.to_string()),
            ..Self::kind("journal")
        }
    }

    /// The admission controller admitted a session open for `tenant`;
    /// `evaluations` carries the tenant's live-session count afterwards.
    pub fn admission(tenant: &str, tenant_sessions: u64) -> Self {
        TraceEvent {
            tenant: Some(tenant.to_string()),
            ok: Some(true),
            evaluations: Some(tenant_sessions),
            ..Self::kind("admission")
        }
    }

    /// The service shed a request for `tenant`: `message` says which limit
    /// fired, `delay_ms` the retry-after hint sent to the client.
    pub fn shed(tenant: &str, reason: &str, retry_after_ms: u64) -> Self {
        TraceEvent {
            tenant: Some(tenant.to_string()),
            ok: Some(false),
            message: Some(reason.to_string()),
            delay_ms: Some(retry_after_ms),
            ..Self::kind("shed")
        }
    }

    /// A graceful drain finished: `size` sessions checkpointed in `micros`,
    /// `ok` whether every connection exited within the deadline.
    pub fn drain(sessions: u64, micros: u64, within_deadline: bool) -> Self {
        TraceEvent {
            size: Some(sessions),
            micros: Some(micros),
            ok: Some(within_deadline),
            ..Self::kind("drain")
        }
    }

    /// The tuning-database log was compacted into a fresh checkpoint:
    /// `size` records written in `micros`.
    pub fn db_compact(records: u64, micros: u64) -> Self {
        TraceEvent {
            size: Some(records),
            micros: Some(micros),
            ok: Some(true),
            ..Self::kind("db_compact")
        }
    }

    /// The event-driven server started its reactor: `io_threads` poll
    /// loops own the connection sockets, `handlers` threads serve the
    /// parsed requests.
    pub fn reactor(io_threads: usize, handlers: usize) -> Self {
        TraceEvent {
            io_threads: Some(io_threads),
            handlers: Some(handlers),
            ..Self::kind("reactor")
        }
    }

    /// A campaign node reached a terminal state: `message` carries the
    /// outcome label, `evaluations` the node's evaluation count, `attempt`
    /// the attempts it consumed.
    pub fn campaign_node(node: &str, outcome: &str, evaluations: u64, attempt: u32) -> Self {
        TraceEvent {
            node: Some(node.to_string()),
            message: Some(outcome.to_string()),
            evaluations: Some(evaluations),
            attempt: Some(attempt),
            ok: Some(outcome == "completed"),
            ..Self::kind("campaign_node")
        }
    }

    /// The shared campaign budget denied or cut `node`; `evaluations`
    /// carries the campaign-wide spend when the budget fired.
    pub fn campaign_budget(node: &str, spent: u64) -> Self {
        TraceEvent {
            node: Some(node.to_string()),
            evaluations: Some(spent),
            ok: Some(false),
            ..Self::kind("campaign_budget")
        }
    }

    /// A campaign node was skipped without running; `message` says why
    /// (failed dependency, campaign abort).
    pub fn campaign_skip(node: &str, reason: &str) -> Self {
        TraceEvent {
            node: Some(node.to_string()),
            message: Some(reason.to_string()),
            ok: Some(false),
            ..Self::kind("campaign_skip")
        }
    }

    /// A process cost function ran one script (`phase` = compile or run).
    pub fn proc(phase: &str, micros: u64, failure: Option<&str>) -> Self {
        TraceEvent {
            phase: Some(phase.to_string()),
            micros: Some(micros),
            ok: Some(failure.is_none()),
            failure: failure.map(str::to_string),
            ..Self::kind("proc")
        }
    }
}

/// Destination for trace events. Implementations must be cheap when idle
/// and must never panic — telemetry is best-effort and may not take a
/// tuning run down with it.
pub trait TraceSink: Send + Sync {
    /// Records one event. I/O errors are swallowed by implementations.
    fn emit(&self, event: &TraceEvent);

    /// Flushes any buffered events (no-op by default).
    fn flush(&self) {}
}

/// The no-op sink: tracing off.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _event: &TraceEvent) {}
}

/// Appends events as NDJSON lines to a file. Write errors are ignored
/// after creation — a full disk degrades the trace, not the run.
pub struct FileSink {
    path: PathBuf,
    out: Mutex<BufWriter<File>>,
}

impl FileSink {
    /// Creates (truncates) the trace file at `path`.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = File::create(&path)?;
        Ok(FileSink {
            path,
            out: Mutex::new(BufWriter::new(file)),
        })
    }

    /// The trace file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TraceSink for FileSink {
    fn emit(&self, event: &TraceEvent) {
        if let Ok(line) = serde_json::to_string(event) {
            let mut out = self.out.lock().expect("trace sink lock");
            let _ = out.write_all(line.as_bytes());
            let _ = out.write_all(b"\n");
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("trace sink lock").flush();
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Collects events in memory, for tests and introspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every event recorded so far, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace sink lock").clone()
    }

    /// Drains and returns every recorded event.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace sink lock"))
    }
}

impl TraceSink for MemorySink {
    fn emit(&self, event: &TraceEvent) {
        self.events
            .lock()
            .expect("trace sink lock")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_fields_are_omitted_from_the_line() {
        let line = serde_json::to_string(&TraceEvent::handout(3, vec![1, 2])).unwrap();
        assert!(line.contains("\"event\":\"handout\""), "{line}");
        assert!(line.contains("\"ticket\":3"), "{line}");
        assert!(!line.contains("null"), "{line}");
        assert!(!line.contains("failure"), "{line}");
    }

    #[test]
    fn events_round_trip_through_ndjson() {
        let events = vec![
            TraceEvent::space_gen(0, 2, 64, 1234),
            TraceEvent::space_chunk(0, 3, 16, 250),
            TraceEvent::space_cache("00ff00ff00ff00ff00ff00ff00ff00ff", true),
            TraceEvent::report(7, 1, Some("timeout")),
            TraceEvent::abort("evaluations(5)", 5, 99),
            TraceEvent::admission("acme", 3),
            TraceEvent::shed("acme", "session quota exhausted", 500),
            TraceEvent::drain(2, 1500, true),
            TraceEvent::reactor(2, 8),
        ];
        for e in &events {
            let line = serde_json::to_string(e).unwrap();
            let back: TraceEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, e);
            assert!(EVENT_KINDS.contains(&back.event.as_str()));
        }
    }

    #[test]
    fn file_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join(format!("atf-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ndjson");
        let sink = FileSink::create(&path).unwrap();
        sink.emit(&TraceEvent::eval(1, 500, None));
        sink.emit(&TraceEvent::eval(2, 700, Some("crash")));
        sink.flush();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let e: TraceEvent = serde_json::from_str(line).unwrap();
            assert_eq!(e.event, "eval");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        sink.emit(&TraceEvent::worker_busy(0, 1));
        sink.emit(&TraceEvent::worker_idle(0, 42));
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event, "worker_busy");
        assert_eq!(events[1].event, "worker_idle");
        assert!(sink.events().is_empty());
    }
}
